//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace uses (see `vendor/README.md`).
//!
//! Same API shape — [`Criterion::benchmark_group`], `bench_with_input`,
//! [`Throughput`], [`criterion_group!`]/[`criterion_main!`], [`black_box`]
//! — but a far simpler measurement loop: each benchmark warms up briefly,
//! then runs timed batches until a wall-clock budget is spent, and prints
//! the per-iteration mean and min to stdout. No statistics, plots, or
//! saved baselines; comparisons are made by reading the printed table
//! before and after a change.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one iteration performs, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Names one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{param}", name.into()),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Wall-clock budget for the measurement phase.
    budget: Duration,
    /// (mean, min) per-iteration time, filled by [`Bencher::iter`].
    measured: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches until
    /// the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow until one batch takes >= 1 ms.
        let mut batch = 1u64;
        let batch_time = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break dt;
            }
            batch *= 2;
        };
        let _ = batch_time;
        let deadline = Instant::now() + self.budget;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut min = Duration::MAX;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            total += dt;
            iters += batch;
            min = min.min(dt / batch as u32);
            if Instant::now() >= deadline {
                break;
            }
        }
        self.measured = Some((total / iters.max(1) as u32, min));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, measured: Option<(Duration, Duration)>, throughput: Option<Throughput>) {
    let Some((mean, min)) = measured else {
        println!("{name:<40} (no measurement: closure never called iter)");
        return;
    };
    let mut line = format!(
        "{name:<40} mean {:>12}  min {:>12}",
        fmt_duration(mean),
        fmt_duration(min)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / mean.as_secs_f64();
        line.push_str(&format!("  {:.3e} {unit}", rate));
    }
    println!("{line}");
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_BUDGET_MS shortens runs in CI without code changes.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.budget,
            measured: None,
        };
        f(&mut b);
        report(name, b.measured, None);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by
    /// wall-clock budget instead of sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the work-per-iteration used to derive rates.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            budget: self.criterion.budget,
            measured: None,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.measured,
            self.throughput,
        );
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            budget: self.criterion.budget,
            measured: None,
        };
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.measured,
            self.throughput,
        );
        self
    }

    /// Ends the group (a no-op here; groups are purely namespacing).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`, filters); this
            // minimal harness runs everything and ignores them.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("spin");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(smoke, spin);

    #[test]
    fn harness_measures_something() {
        std::env::set_var("CRITERION_BUDGET_MS", "10");
        let mut c = Criterion::default();
        smoke(&mut c);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("matmul", 64).id, "matmul/64");
    }
}
