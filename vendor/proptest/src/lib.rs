//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses (see `vendor/README.md` for why vendoring is needed).
//!
//! Provided: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), range and `collection::vec` strategies,
//! `prop_map`, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Inputs are drawn from a deterministic RNG seeded by the test's
//! module path and name, so failures reproduce run to run.
//!
//! Deliberately omitted relative to upstream: shrinking (a failing case
//! reports the raw inputs via the assertion message), persistence files,
//! and `fork`. Rejection via `prop_assume!` skips the case without
//! counting it, with a global cap to catch over-restrictive filters.

/// Strategies: how to generate values of a type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Samples values for one `proptest!` input.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Post-processes samples with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform draw from `[0, span)` without modulo bias (Lemire).
    pub(crate) fn below(rng: &mut StdRng, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let v = rng.next_u64();
            let hi = ((u128::from(v) * u128::from(span)) >> 64) as u64;
            if v.wrapping_mul(span) >= span.wrapping_neg() % span {
                return hi;
            }
        }
    }

    fn unit_f64(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.abs_diff(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = f64::from(self.start);
                    let hi = f64::from(self.end);
                    (lo + unit_f64(rng) * (hi - lo)) as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{below, Strategy};
    use rand::rngs::StdRng;

    /// An inclusive length range for generated collections.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    below(rng, span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` samples with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-case execution: configuration and outcome types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs; draw a fresh case.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing outcome with `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the test's full name.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(64).saturating_add(1024),
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, cfg.cases,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed on case {}: {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Filters the current case: if the condition is false, the inputs are
/// redrawn and the case does not count toward the total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for("bounds");
        for _ in 0..1000 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-4.0f32..4.0).sample(&mut rng);
            assert!((-4.0..4.0).contains(&f));
            let n = (-5i32..-1).sample(&mut rng);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::test_runner::rng_for("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f32..1.0, 2..6).sample(&mut rng);
            assert!((2..=5).contains(&v.len()));
            let w = crate::collection::vec(0u32..9, 4..=4).sample(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::rng_for("map");
        let doubled = (1u32..10).prop_map(|x| x * 2).sample(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, assume, assert forms.
        #[test]
        fn macro_round_trip(a in 0u64..100, b in 1usize..8, v in crate::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100, "a = {a}");
            prop_assert_eq!(v.len().min(8), v.len());
            prop_assert!(b >= 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("same");
        let mut b = crate::test_runner::rng_for("same");
        let s = 0u64..u64::MAX;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
