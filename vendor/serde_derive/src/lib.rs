//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` facade (see `vendor/README.md`).
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the token stream directly. Supported
//! shapes — exactly what this workspace derives on:
//!
//! * structs with named fields,
//! * unit structs,
//! * enums whose variants are unit, single-field tuple, or named-field.
//!
//! Generics and `#[serde(...)]` attributes are not supported and abort
//! with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Single-element tuple.
    Newtype,
    /// No payload.
    Unit,
}

struct Input {
    name: String,
    /// `None` for structs; variant list for enums.
    variants: Option<Vec<(String, Fields)>>,
    /// Struct fields (empty `Named` list means a unit struct).
    fields: Fields,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported — `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                variants: None,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input {
                name,
                variants: None,
                fields: Fields::Unit,
            },
            _ => panic!("serde_derive (vendored): tuple structs are not supported — `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                variants: Some(parse_variants(g.stream())),
                fields: Fields::Unit,
            },
            _ => panic!("serde_derive: malformed enum `{name}`"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `field: Type, ...` returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                if arity != 1 {
                    panic!(
                        "serde_derive (vendored): tuple variants with more than one field are not supported — `{variant}`"
                    );
                }
                Fields::Newtype
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((variant, fields));
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.variants {
        None => match &input.fields {
            Fields::Named(fields) => {
                let mut entries = String::new();
                for f in fields {
                    entries.push_str(&format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    ));
                }
                format!("::serde::Value::Map(::std::vec![{entries}])")
            }
            Fields::Unit => "::serde::Value::Null".to_string(),
            Fields::Newtype => unreachable!("tuple structs rejected at parse time"),
        },
        Some(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )),
                    Fields::Newtype => arms.push_str(&format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(x0))]),"
                    )),
                    Fields::Named(fs) => {
                        let pat: Vec<&str> = fs.iter().map(|s| s.as_str()).collect();
                        let mut entries = String::new();
                        for f in fs {
                            entries.push_str(&format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(::std::vec![{entries}]))]),",
                            pat.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.variants {
        None => match &input.fields {
            Fields::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!("{f}: ::serde::field(m, \"{f}\")?,"));
                }
                format!(
                    "let m = ::serde::expect_map(v, \"{name}\")?;\n ::std::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Fields::Unit => format!("let _ = v; ::std::result::Result::Ok({name})"),
            Fields::Newtype => unreachable!("tuple structs rejected at parse time"),
        },
        Some(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),")),
                    Fields::Newtype => payload_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Named(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            inits.push_str(&format!("{f}: ::serde::field(pm, \"{f}\")?,"));
                        }
                        payload_arms.push_str(&format!(
                            "\"{v}\" => {{ let pm = ::serde::expect_map(payload, \"{name}::{v}\")?; ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)) }},\n\
                   ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                     match tag.as_str() {{ {payload_arms} other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)) }}\n\
                   }},\n\
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
    )
}
