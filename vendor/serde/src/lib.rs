//! Minimal, dependency-free stand-in for the subset of `serde` this
//! workspace uses.
//!
//! The build environment has no crates.io access (see `vendor/README.md`),
//! so this facade replaces serde's visitor architecture with a simple
//! value tree: [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] rebuilds it, and the vendored `serde_json` prints and
//! parses that tree as JSON. The derive macros (`features = ["derive"]`)
//! generate these impls for named-field structs and simple enums.
//!
//! Integer fidelity: `u64`/`i64` survive round trips exactly (they are
//! kept out of `f64`), which matters for the workspace's RNG seeds.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the interchange format between [`Serialize`],
/// [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers (kept exact; not routed through `f64`).
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] if the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The substitute when a map field is absent entirely (only `Option`
    /// has one: `None`).
    fn missing() -> Option<Self> {
        None
    }
}

/// A deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Error for a shape mismatch.
    pub fn expected(what: &str) -> Self {
        DeError {
            msg: format!("expected {what}"),
        }
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(enum_name: &str, tag: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{tag}` of enum {enum_name}"),
        }
    }

    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------

/// Asserts `v` is a map, returning its entries.
///
/// # Errors
///
/// Returns a [`DeError`] naming `type_name` otherwise.
pub fn expect_map<'v>(v: &'v Value, type_name: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Map(entries) => Ok(entries),
        _ => Err(DeError::expected(&format!("map for {type_name}"))),
    }
}

/// Looks up and deserializes field `name`, falling back to
/// [`Deserialize::missing`] when absent.
///
/// # Errors
///
/// Returns a [`DeError`] if the field is absent with no fallback or its
/// value has the wrong shape.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::missing().ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

// Reflexive impls: a `Value` field passes through untouched, so types can
// carry schema-free payloads (e.g. the sweep journal's per-point records).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

fn de_u64(v: &Value) -> Result<u64, DeError> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        _ => Err(DeError::expected("unsigned integer")),
    }
}

fn de_i64(v: &Value) -> Result<i64, DeError> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
            Ok(*f as i64)
        }
        _ => Err(DeError::expected("signed integer")),
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = de_u64(v)?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = de_i64(v)?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected {N}-element array, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::expected("2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(DeError::expected("3-element array")),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::expected("object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        let big: u64 = u64::MAX - 7;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        let neg: i64 = -42;
        assert_eq!(i64::from_value(&neg.to_value()).unwrap(), neg);
    }

    #[test]
    fn option_fields_default_to_none() {
        let got: Option<u32> = field(&[], "absent").unwrap();
        assert_eq!(got, None);
        let err: Result<u32, _> = field(&[], "absent");
        assert!(err.is_err());
    }

    #[test]
    fn f32_survives_f64_round_trip() {
        for x in [0.1f32, -3.75, f32::MIN_POSITIVE, 1e30] {
            assert_eq!(f32::from_value(&x.to_value()).unwrap(), x);
        }
    }
}
