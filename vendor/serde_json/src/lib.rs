//! Minimal, dependency-free stand-in for the subset of `serde_json` this
//! workspace uses: [`to_string`] and [`from_str`] over the vendored
//! `serde` value tree (see `vendor/README.md`).
//!
//! The emitted JSON is standard (RFC 8259): floats are printed via Rust's
//! shortest-round-trip formatter so `f64` values survive a round trip
//! bit-for-bit; non-finite floats serialize as `null` (matching upstream
//! serde_json). The parser is a recursive-descent parser accepting
//! arbitrary whitespace, escape sequences, and scientific notation.

use serde::{DeError, Deserialize, Serialize, Value};

/// Errors from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value tree this facade produces; the `Result`
/// mirrors upstream's signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same f64; force a fractional/exponent part
                // so the value reads back as a float.
                let s = format!("{f:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let mut chars = std::str::from_utf8(rest)
                .map_err(|_| Error::new("invalid UTF-8 in string"))?
                .chars();
            match chars.next() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_value_tree() {
        let v = Value::Map(vec![
            ("seed".to_string(), Value::U64(u64::MAX - 3)),
            ("neg".to_string(), Value::I64(-12)),
            ("pi".to_string(), Value::F64(core::f64::consts::PI)),
            ("name".to_string(), Value::Str("a\"b\\c\nd".to_string())),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::F64(-0.5)]),
            ),
            ("empty".to_string(), Value::Map(vec![])),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text);
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
        assert_eq!(p.pos, text.len());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1e-300, 1e300, -2.5e-7, 123456789.12345679] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn whole_floats_read_back_as_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\u0041\" , \"\\t\" ] ").unwrap();
        assert_eq!(v, vec!["aA".to_string(), "\t".to_string()]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
    }
}
