//! Minimal, dependency-free stand-in for the subset of `rand` 0.8 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the external APIs it consumes (see `vendor/README.md`). The
//! pieces provided here:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<T>()` for the primitive types the
//!   workspace samples (`u32`, `u64`, `f32`, `f64`, `bool`);
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 expansion. The *stream* differs from upstream `rand`'s
//!   ChaCha12-based `StdRng`, which is acceptable because upstream makes
//!   no cross-version stream guarantee for `StdRng` and nothing in this
//!   workspace pins absolute draws — only determinism for equal seeds;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates with a rejection-free
//!   bounded sampler.
//!
//! Floating-point conversion matches upstream's `Standard` distribution:
//! `f32` in `[0, 1)` from 24 high bits, `f64` in `[0, 1)` from 53.

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] under the standard distribution.
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 significand bits => uniform on the [0, 1) grid of width 2^-24.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one standard-distribution sample of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a uniform sample from `[low, high)`.
    ///
    /// Only the `usize` range form is provided — the single shape the
    /// workspace (and the vendored shuffle) needs.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + bounded_u64(self, span) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Debiased bounded sampling (Lemire's method with rejection).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let v = rng.next_u64();
        let hi = ((u128::from(v) * u128::from(span)) >> 64) as u64;
        let lo = v.wrapping_mul(span);
        // Accept unless `lo` falls in the biased low zone.
        if lo >= span.wrapping_neg() % span {
            return hi;
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by SplitMix64 expansion of a `u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for exact checkpoint/resume
        /// of a stream mid-flight (see `ams_tensor::rng::RngState`).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator positioned exactly where [`StdRng::state`]
        /// was captured: the next draw continues the original stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna): the ++ scrambler over the
            // xoshiro256 linear engine.
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Random slice operations (the `shuffle` subset).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn state_round_trip_resumes_mid_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let saved = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(saved);
        let replay: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, replay, "restored stream must continue bit-exactly");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
