//! Minimal, std-backed stand-in for the subset of `parking_lot` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors dependency-free implementations of the external APIs it
//! consumes (see `vendor/README.md`). This crate wraps `std::sync`
//! primitives behind `parking_lot`'s poison-free interface: `lock()` /
//! `read()` / `write()` return guards directly, and a poisoned std lock
//! (a panicked holder) is treated as still usable, matching
//! `parking_lot`'s semantics of not poisoning.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s poison-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
