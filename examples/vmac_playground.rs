//! Per-VMAC simulation playground: the paper's Section 4 error-reduction
//! proposals, measured on actual chunked dot products.
//!
//! ```text
//! cargo run --release --example vmac_playground
//! ```
//!
//! Compares, for the same dot product:
//! * plain per-chunk ADC quantization vs the paper's lumped Gaussian model,
//! * first-order ΔΣ error recycling,
//! * ADC reference scaling,
//! * multiplication partitioning (error and energy).

use ams_repro::core::partition::PartitionedVmac;
use ams_repro::core::vmac::Vmac;
use ams_repro::core::vmac_sim::{AdcBehavior, VmacSimulator};

fn main() {
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let n_tot = 512;
    let trials = 300;
    println!(
        "cell {vmac}, N_tot = {n_tot} ({} conversions/output)\n",
        vmac.conversions_per_output(n_tot)
    );

    // 1. Does the lumped Gaussian model (Eq. 2) match reality?
    let quantizing = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
    let empirical = quantizing.empirical_rms_error(n_tot, trials, 1);
    let model = vmac.total_error_sigma(n_tot);
    println!(
        "lumped model check: predicted sigma {model:.5}, measured RMS {empirical:.5} (ratio {:.3})",
        empirical / model
    );

    // 2. Delta-sigma error recycling: only the final (higher-resolution)
    //    conversion's error survives.
    for extra in [0.0, 1.0, 2.0, 4.0] {
        let ds = VmacSimulator::new(
            vmac,
            AdcBehavior::DeltaSigma {
                final_extra_bits: extra,
            },
        );
        let rms = ds.empirical_rms_error(n_tot, trials, 2);
        println!(
            "delta-sigma (+{extra} final bits): RMS {rms:.6} ({:.0}x better than plain)",
            empirical / rms
        );
    }

    // 3. Reference scaling: finer LSB vs clipping of large partial sums.
    println!();
    for alpha in [1.0, 0.5, 0.25, 0.1, 0.05] {
        let rs = VmacSimulator::new(vmac, AdcBehavior::RefScaled { alpha });
        println!(
            "reference x{alpha:<4}: RMS {:.5}, clip fraction {:.3}%",
            rs.empirical_rms_error(n_tot, trials, 3),
            rs.clip_fraction(n_tot, 50, 4) * 100.0
        );
    }

    // 4. Multiplication partitioning: split 9b x 9b into slices with
    //    cheaper ADCs (error referred to the full product).
    println!();
    let base = Vmac::new(9, 9, 8, 14.0);
    println!(
        "unpartitioned 14b reference: {:.1} fJ/MAC",
        ams_repro::core::energy::mac_energy_fj(14.0, 8)
    );
    for (nw, nx, slice_enob) in [
        (1u32, 1u32, 14.0f64),
        (2, 2, 12.0),
        (2, 2, 11.0),
        (4, 4, 9.0),
    ] {
        let p =
            PartitionedVmac::new(base, nw, nx, slice_enob).expect("clean 8-bit-magnitude splits");
        println!(
            "split {nw}x{nx} @ {slice_enob:>4.1}b slices: equivalent ENOB {:.2}, {:.1} fJ/MAC, saves energy: {}",
            p.equivalent_enob(n_tot),
            p.energy_per_mac_fj(),
            p.saves_energy_vs(14.0)
        );
    }
}
