//! Quickstart: the AMS VMAC error and energy models in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's modeling chain end to end: configure a VMAC cell,
//! inspect its precision budget (Fig. 2), compute the injected error
//! (Eq. 1–2), price the conversion (Eq. 3–4), and inject the error into an
//! activation tensor exactly as the network layers do.

use ams_repro::core::energy::{adc_energy_pj, mac_energy_fj};
use ams_repro::core::inject::GaussianInjector;
use ams_repro::core::vmac::Vmac;
use ams_repro::tensor::Tensor;

fn main() {
    // An AMS vector multiply-accumulate cell: 8-bit sign-magnitude
    // operands, 8 products summed in the analog domain, digitized with 10
    // effective bits (paper Fig. 1).
    let vmac = Vmac::new(8, 8, 8, 10.0);
    println!("cell: {vmac}");

    // Fig. 2: how many bits of the ideal dot product survive?
    let budget = vmac.precision_budget();
    println!(
        "precision budget: ideal {:.1} bits (1 sign + {} product + {:.1} accumulation), \
         recovered {:.1}, lost {:.1}",
        budget.ideal_bits(),
        budget.product_magnitude_bits(),
        budget.accumulation_bits(),
        budget.recovered_bits(),
        budget.lost_bits()
    );

    // Eq. 1–2: the additive error for a ResNet-50-style 3x3x512
    // convolution (N_tot = 4608 multiplies per output activation).
    let n_tot = 4608;
    println!(
        "error model: per-conversion sigma {:.5}, lumped per-output sigma {:.5} \
         ({} conversions per output)",
        vmac.error_variance().sqrt(),
        vmac.total_error_sigma(n_tot),
        vmac.conversions_per_output(n_tot)
    );

    // Eq. 3–4: what does the conversion cost?
    println!(
        "energy model: E_ADC({:.1}b) = {:.3} pJ, E_MAC = {:.1} fJ/MAC at N_mult = {}",
        vmac.enob,
        adc_energy_pj(vmac.enob),
        mac_energy_fj(vmac.enob, vmac.n_mult),
        vmac.n_mult
    );

    // The paper's headline design point: ENOB 12 at N_mult 8 is the
    // cheapest hardware with < 0.4 % accuracy loss on ResNet-50.
    println!(
        "paper headline: ENOB 12 @ N_mult 8 costs {:.0} fJ/MAC (paper: ~313 fJ/MAC)",
        mac_energy_fj(12.0, 8)
    );

    // Inject the modeled error into a (batch of) activations, exactly as
    // the quantized network layers do in their forward pass.
    let mut activations = Tensor::zeros(&[1, 4, 4, 4]);
    let mut injector = GaussianInjector::new(42);
    injector.inject(&mut activations, &vmac, n_tot);
    println!(
        "injected AMS error into a zero tensor: mean {:+.5}, max |e| {:.5}",
        activations.mean(),
        activations.max_abs()
    );
}
