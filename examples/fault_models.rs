//! Beyond additive noise: the paper's §4 refinements, exercised on a real
//! network — fine-grained per-VMAC quantization, static device mismatch,
//! and batch-norm folding for deployment.
//!
//! ```text
//! cargo run --release --example fault_models
//! ```

use ams_repro::core::mismatch::MismatchModel;
use ams_repro::core::vmac::Vmac;
use ams_repro::data::{Batcher, SynthConfig};
use ams_repro::exp::{eval_accuracy, train_scheduled};
use ams_repro::models::{fold_bn_into_conv, HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_repro::nn::{BatchNorm2d, Checkpoint, Conv2d, Layer, Mode};
use ams_repro::quant::QuantConfig;
use ams_repro::tensor::{rng, ExecCtx};

fn main() {
    // Use every core; results are bit-identical to a serial run.
    let ctx = ExecCtx::auto();
    // A small trained network to perturb.
    let data = SynthConfig {
        classes: 4,
        ..SynthConfig::tiny()
    }
    .generate();
    let arch = ResNetMiniConfig::tiny();
    let mut fp32 = ResNetMini::new(&arch, &HardwareConfig::fp32());
    println!("pretraining a tiny FP32 network ...");
    let out = train_scheduled(
        &ctx,
        &mut fp32,
        &data.train,
        &data.val,
        10,
        0.08,
        16,
        0,
        &[7],
    );
    println!("  best val accuracy: {:.4}\n", out.best_val_acc);
    let fp32_ckpt = Checkpoint::from_layer(&mut fp32);
    let quant = QuantConfig::w8a8();

    // DoReFa's tanh/max-normalization rescales layers, so surgery alone
    // degrades accuracy; briefly retrain the quantized network (as the
    // paper always does) and use *its* checkpoint below.
    let mut qnet = ResNetMini::new(&arch, &HardwareConfig::quantized(quant));
    fp32_ckpt.load_into(&mut qnet).expect("same architecture");
    let out = train_scheduled(&ctx, &mut qnet, &data.train, &data.val, 6, 0.01, 16, 1, &[]);
    println!(
        "quantized (8b/8b) after retraining: {:.4}\n",
        out.best_val_acc
    );
    let ckpt = Checkpoint::from_layer(&mut qnet);

    // 1. Lumped Gaussian vs per-VMAC chunked quantization at the same ENOB.
    let enob = 5.0;
    let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
    let mut lumped = ResNetMini::new(&arch, &HardwareConfig::ams_eval_only(quant, vmac));
    ckpt.load_into(&mut lumped).expect("same architecture");
    let mut per_vmac = ResNetMini::new(
        &arch,
        &HardwareConfig::ams_eval_only(quant, vmac).with_per_vmac_eval(),
    );
    ckpt.load_into(&mut per_vmac).expect("same architecture");
    println!("error realization at ENOB {enob} (N_mult 8):");
    println!(
        "  lumped Gaussian (Eq. 2):       {:.4}",
        eval_accuracy(&ctx, &mut lumped, &data.val, 16)
    );
    println!(
        "  per-VMAC chunked quantization: {:.4}",
        eval_accuracy(&ctx, &mut per_vmac, &data.val, 16)
    );

    // 2. Static device mismatch: a per-chip, data-dependent fault.
    println!("\nstatic device mismatch (quantized network):");
    for sigma in [0.0f64, 0.02, 0.05, 0.1, 0.2] {
        let mut hw = HardwareConfig::quantized(quant);
        if sigma > 0.0 {
            hw = hw.with_mismatch(MismatchModel::new(sigma, 7));
        }
        let mut net = ResNetMini::new(&arch, &hw);
        ckpt.load_into(&mut net).expect("same architecture");
        println!(
            "  {:>4.0}% devices: accuracy {:.4}",
            sigma * 100.0,
            eval_accuracy(&ctx, &mut net, &data.val, 16)
        );
    }

    // 3. Batch-norm folding: the deployment transform the paper's §2
    //    relies on ("weights can be folded into the convolutional layer").
    println!("\nbatch-norm folding identity check:");
    let mut r = rng::seeded(5);
    let mut conv = Conv2d::new("demo", 3, 4, 3, 1, 1, false, &mut r);
    let mut bn = BatchNorm2d::new("demo_bn", 4);
    // Accumulate realistic running statistics.
    for (images, _) in Batcher::sequential(&data.train, 16).take(8) {
        let y = conv.forward(&ctx, &images, Mode::Train);
        bn.forward(&ctx, &y, Mode::Train);
    }
    let (images, _) = Batcher::sequential(&data.val, 16).next().expect("nonempty");
    let reference = bn.forward(&ctx, &conv.forward(&ctx, &images, Mode::Eval), Mode::Eval);
    let (folded_w, folded_b) = fold_bn_into_conv(&conv.weight().value, &bn);
    let wmat = folded_w.reshaped(&[4, 27]);
    let (folded_y, _) = ams_repro::nn::functional::conv2d_forward(
        &ctx,
        &images,
        &wmat,
        ams_repro::tensor::Density::Sample,
        Some(&folded_b),
        3,
        3,
        1,
        1,
        false,
    );
    let max_err = reference.sub(&folded_y).max_abs();
    println!("  max |conv+BN − folded conv| over a validation batch: {max_err:.2e}");
}
