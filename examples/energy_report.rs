//! Pricing a whole network on AMS hardware: the paper's Eq. 3–4 energy
//! model applied layer by layer (§4's "lookup table" at network
//! granularity), plus the composite multiplier/ADC budget split.
//!
//! ```text
//! cargo run --release --example energy_report
//! ```

use ams_repro::core::composite::CompositeError;
use ams_repro::core::vmac::Vmac;
use ams_repro::models::{HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_repro::quant::QuantConfig;
use ams_repro::tensor::ExecCtx;

fn main() {
    let arch = ResNetMiniConfig::quick();
    let image_size = 16;

    println!(
        "network: ResNet-mini ({} conv layers + fc), {image_size}x{image_size} input\n",
        arch.conv_layer_count()
    );
    println!(
        "{:<14} {:>10} {:>7} {:>12}",
        "layer", "MACs", "N_tot", "energy [pJ]"
    );

    // Price the network at the paper's headline design point.
    let vmac = Vmac::new(8, 8, 8, 12.0);
    let hw = HardwareConfig::ams(QuantConfig::w8a8(), vmac);
    let mut net = ResNetMini::new(&arch, &hw);
    let report = net.energy_report(&ExecCtx::serial(), image_size);
    for layer in &report.layers {
        println!(
            "{:<14} {:>10} {:>7} {:>12.2}",
            layer.name, layer.macs, layer.n_tot, layer.energy_pj
        );
    }
    println!(
        "\ntotal: {} MACs, {:.1} pJ per inference, {:.0} fJ/MAC (paper's design point: ~313 fJ/MAC)",
        report.total_macs(),
        report.total_pj(),
        report.fj_per_mac().expect("network has MACs")
    );

    // How does the price move across the design space?
    println!("\nsweep (same network):");
    for (enob, n_mult) in [
        (10.0, 8usize),
        (11.0, 16),
        (12.0, 8),
        (12.0, 64),
        (14.0, 64),
    ] {
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, n_mult, enob));
        let mut net = ResNetMini::new(&arch, &hw);
        let r = net.energy_report(&ExecCtx::serial(), image_size);
        println!(
            "  ENOB {enob:>4.1}, N_mult {n_mult:>3}: {:>8.1} pJ/inference ({:>6.0} fJ/MAC)",
            r.total_pj(),
            r.fj_per_mac().expect("network has MACs")
        );
    }

    // Split the budget: how clean must the multipliers be before the ADC
    // dominates? (§4: modeling multiplier and ADC error separately.)
    println!("\ncomposite error budget at ADC ENOB 12, N_mult 8:");
    for mult_sigma in [0.0, 1e-4, 1e-3, 5e-3] {
        let model = CompositeError::new(vmac, mult_sigma);
        println!(
            "  multiplier RMS {mult_sigma:>7.0e} -> effective ENOB {:.2}",
            model.effective_enob()
        );
    }
    if let Some(budget) = CompositeError::multiplier_budget_for(vmac, 11.5) {
        println!("  keeping an effective 11.5 b allows multiplier RMS up to {budget:.2e}");
    }
}
