//! The paper's core experiment, end to end at test scale: pretrain an FP32
//! ResNet-mini, then compare
//!
//! 1. AMS error injected at **evaluation only** against
//! 2. **retraining with AMS error in the loop** (Fig. 4's two series),
//!
//! demonstrating the accuracy recovery the paper attributes to batch norm.
//!
//! ```text
//! cargo run --release --example retrain_with_ams
//! ```

use ams_repro::core::vmac::Vmac;
use ams_repro::data::SynthConfig;
use ams_repro::exp::{eval_passes, train_scheduled, train_with_eval};
use ams_repro::models::{HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_repro::nn::{Checkpoint, Layer};
use ams_repro::quant::QuantConfig;
use ams_repro::tensor::ExecCtx;

fn main() {
    // Use every core; results are bit-identical to a serial run.
    let ctx = ExecCtx::auto();
    // A small-but-nontrivial instance so the example finishes in ~a minute.
    let data = SynthConfig {
        classes: 8,
        train_per_class: 64,
        val_per_class: 32,
        ..SynthConfig::quick()
    }
    .generate();
    let arch = ResNetMiniConfig {
        classes: 8,
        ..ResNetMiniConfig::quick()
    };
    let (batch, passes) = (32, 3);

    // 1. Pretrain the FP32 baseline.
    println!("pretraining FP32 baseline ...");
    let mut fp32 = ResNetMini::new(&arch, &HardwareConfig::fp32());
    let out = train_scheduled(
        &ctx,
        &mut fp32,
        &data.train,
        &data.val,
        16,
        0.05,
        batch,
        0,
        &[10, 14],
    );
    println!(
        "  FP32 best val accuracy: {:.4} (epoch {})",
        out.best_val_acc, out.best_epoch
    );
    let fp32_ckpt = Checkpoint::from_layer(&mut fp32);

    // A noisy VMAC: low ENOB so the error clearly hurts.
    let quant = QuantConfig::w8a8();
    let vmac = Vmac::new(quant.bw, quant.bx, 8, 6.0);
    println!("VMAC under test: {vmac}");

    // 2a. Eval-only: drop the FP32 weights into AMS hardware untouched.
    let mut eval_only = ResNetMini::new(&arch, &HardwareConfig::ams_eval_only(quant, vmac));
    fp32_ckpt
        .load_into(&mut eval_only)
        .expect("same architecture");
    let acc_eval_only = eval_passes(&ctx, &mut eval_only, &data.val, passes, batch, true, 100);
    println!("  eval-only accuracy under AMS error:  {acc_eval_only}");

    // 2b. Retrain with the error in the loop (last layer excluded during
    //     training, per the paper's Section 2 rule).
    println!("retraining with AMS error in the loop ...");
    let mut retrained = ResNetMini::new(&arch, &HardwareConfig::ams(quant, vmac));
    fp32_ckpt
        .load_into(&mut retrained)
        .expect("same architecture");
    let out = train_with_eval(
        &ctx,
        &mut retrained,
        &data.train,
        &data.val,
        5,
        0.01,
        batch,
        1,
    );
    let acc_retrained = eval_passes(&ctx, &mut retrained, &data.val, passes, batch, true, 200);
    println!(
        "  retrained accuracy under AMS error:  {acc_retrained} (best epoch {})",
        out.best_epoch
    );

    let recovered = acc_retrained.mean - acc_eval_only.mean;
    println!(
        "\nretraining recovered {:+.4} top-1 ({})",
        recovered,
        if recovered > 0.0 {
            "accuracy recovery, as in the paper's Fig. 4"
        } else {
            "no recovery at this ENOB"
        }
    );

    // Where did the recovery come from? Inspect the batch-norm shifts the
    // paper credits (Fig. 6): mean |beta| grows when retraining with noise.
    let mut beta_fp = 0.0f32;
    let mut beta_ams = 0.0f32;
    let mut count = 0usize;
    fp32.for_each_param(&mut |p| {
        if p.name().ends_with(".beta") {
            beta_fp += p.value.map(f32::abs).sum();
            count += p.value.len();
        }
    });
    retrained.for_each_param(&mut |p| {
        if p.name().ends_with(".beta") {
            beta_ams += p.value.map(f32::abs).sum();
        }
    });
    println!(
        "mean |batch-norm beta|: FP32 {:.4} -> AMS-retrained {:.4} ({} params)",
        beta_fp / count as f32,
        beta_ams / count as f32,
        count
    );
}
