//! Using the Fig. 8 machinery as a hardware-design lookup table.
//!
//! "This plot can be used as a lookup table by circuit designers to
//! evaluate the network-level impact of circuit-level design choices, or
//! by system designers to choose hardware based on accuracy or energy
//! specifications." — paper §4.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use ams_repro::core::energy::mac_energy_fj;
use ams_repro::core::tradeoff::{equivalent_enob, AccuracyCurve, TradeoffGrid};

fn main() {
    // A measured accuracy-loss curve at the reference N_mult = 8. (These
    // are the paper's approximate Fig. 4 retrained numbers; regenerate
    // your own with `cargo run --release -p ams-exp --bin fig4`.)
    let curve = AccuracyCurve::new(
        8,
        vec![
            (9.0, 0.055),
            (9.5, 0.040),
            (10.0, 0.027),
            (10.5, 0.018),
            (11.0, 0.0095),
            (11.5, 0.006),
            (12.0, 0.0035),
            (12.5, 0.001),
            (13.0, 0.000),
        ],
    )
    .expect("valid curve");

    // Sweep the design space.
    let enobs: Vec<f64> = (0..17).map(|i| 9.0 + 0.25 * i as f64).collect();
    let n_mults = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let grid = TradeoffGrid::evaluate(&curve, &enobs, &n_mults);

    // Question 1 (system designer): the cheapest hardware meeting an
    // accuracy budget.
    for target in [0.02, 0.01, 0.004] {
        match grid.min_energy_for_loss(target) {
            Some(p) => println!(
                "< {:.1}% loss: cheapest design is ENOB {:.2}, N_mult {} at {:.0} fJ/MAC",
                target * 100.0,
                p.enob,
                p.n_mult,
                p.mac_energy_fj
            ),
            None => println!(
                "< {:.1}% loss: nothing on this grid qualifies",
                target * 100.0
            ),
        }
    }

    // Question 2 (circuit designer): I can double N_mult — what ENOB do I
    // need to keep the same accuracy, and what happens to energy?
    let (enob, n_mult) = (11.0, 8usize);
    let loss = curve.loss_at_design(enob, n_mult);
    let doubled = 2 * n_mult;
    // Same loss requires the equivalent ENOB to stay fixed:
    let enob_needed = enob + 0.5; // +0.5 bit per doubling (Eq. 2)
    assert!((curve.loss_at_design(enob_needed, doubled) - loss).abs() < 1e-9);
    println!(
        "\ntrade: ({enob} b, x{n_mult}) -> ({enob_needed} b, x{doubled}) keeps loss {:.3}%;",
        loss * 100.0
    );
    println!(
        "energy: {:.0} fJ/MAC -> {:.0} fJ/MAC (parallel level curves: no free lunch)",
        mac_energy_fj(enob, n_mult),
        mac_energy_fj(enob_needed, doubled)
    );

    // Question 3: how does an arbitrary design point map back to the
    // measured curve?
    let (e, n) = (12.5, 64usize);
    println!(
        "\n(ENOB {e}, N_mult {n}) injects the same error as (ENOB {:.2}, N_mult 8): predicted loss {:.3}%",
        equivalent_enob(e, n, 8),
        curve.loss_at_design(e, n) * 100.0
    );
}
