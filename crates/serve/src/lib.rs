//! `ams-serve`: a batched noisy-inference daemon for the AMS error-model
//! stack (DESIGN.md §14).
//!
//! The daemon loads one trained + quantized checkpoint for a
//! `{model, quant, error-model, kernel}` scenario, freezes the quantized
//! weights once ([`ScenarioConfig::load`]), and serves classification
//! requests over a length-prefixed TCP protocol ([`protocol`]). An
//! owned-state actor pool of worker replicas shares the frozen weights by
//! `Arc`; a dispatcher coalesces queued requests into batched forward
//! passes (adaptive batching, capped by batch size and queue delay).
//! Per-request noise seeds keep every reply bit-identical to an offline
//! `reseed_noise(seed)` + batch-1 evaluation, no matter how requests were
//! coalesced.
//!
//! # Example (in-process, as the e2e test drives it)
//!
//! ```no_run
//! use ams_serve::{protocol::ServeClient, ScenarioConfig, ServeConfig};
//!
//! let scenario = ScenarioConfig::default_at(ams_exp::Scale::test()).load();
//! let handle = ams_serve::start(scenario, ServeConfig::default(),
//!                               "127.0.0.1:0", "127.0.0.1:0").unwrap();
//! let mut client = ServeClient::connect(handle.addr).unwrap();
//! let reply = client.classify(0, 42, &vec![0.5; 3 * 8 * 8]).unwrap();
//! println!("logits: {:?} under {:?}", reply.logits, reply.hardware);
//! ```

#![warn(missing_docs)]

pub mod protocol;
pub mod scenario;
pub mod server;

pub use scenario::{LoadedScenario, ScenarioConfig};
pub use server::{start, ServeConfig, ServerHandle, BATCH_SIZE_BOUNDS, LATENCY_MS_BOUNDS};
