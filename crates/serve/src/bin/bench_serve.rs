//! Load generator for `ams-serve`: measures req/s and latency percentiles
//! with coalescing forced off (`max_batch = 1`) vs adaptive batching, and
//! writes `BENCH_serve.json` (see EXPERIMENTS.md, "Serving").
//!
//! Both daemons run in-process (fresh listener on an ephemeral port per
//! mode), so one invocation produces a self-contained A/B comparison.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use ams_exp::{usage_exit, Scale};
use ams_serve::protocol::ServeClient;
use ams_serve::{LoadedScenario, ScenarioConfig, ServeConfig};
use serde::Serialize;

const USAGE: &str = "[--scale quick|full|test] [--results DIR] [--enob E] [--concurrency N] [--requests N] [--warmup N] [--workers N] [--worker-threads N] [--max-batch N] [--max-delay-ms MS] [--out PATH]";

struct Args {
    scenario: ScenarioConfig,
    concurrency: usize,
    /// Timed requests per client.
    requests: usize,
    /// Untimed warmup requests per client.
    warmup: usize,
    serve: ServeConfig,
    out: String,
}

fn parse(args: Vec<String>) -> Result<Args, String> {
    let mut out = Args {
        scenario: ScenarioConfig::default_at(Scale::quick()),
        concurrency: 32,
        requests: 24,
        warmup: 4,
        serve: ServeConfig::default(),
        out: "BENCH_serve.json".to_string(),
    };
    let value = |i: usize, flag: &str| -> Result<&String, String> {
        args.get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                out.scenario.scale = Scale::by_name(value(i, "--scale")?)
                    .map_err(|n| format!("unknown scale {n:?}; use quick|full|test"))?;
            }
            "--results" => out.scenario.results = value(i, "--results")?.clone(),
            "--enob" => {
                out.scenario.enob = Some(
                    value(i, "--enob")?
                        .parse()
                        .map_err(|e| format!("--enob needs a number: {e}"))?,
                );
            }
            "--concurrency" => {
                out.concurrency = value(i, "--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency needs a positive integer: {e}"))?;
            }
            "--requests" => {
                out.requests = value(i, "--requests")?
                    .parse()
                    .map_err(|e| format!("--requests needs a positive integer: {e}"))?;
            }
            "--warmup" => {
                out.warmup = value(i, "--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup needs an integer: {e}"))?;
            }
            "--workers" => {
                out.serve.workers = value(i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers needs a positive integer: {e}"))?;
            }
            "--worker-threads" => {
                out.serve.threads_per_worker = value(i, "--worker-threads")?
                    .parse()
                    .map_err(|e| format!("--worker-threads needs an integer: {e}"))?;
            }
            "--max-batch" => {
                out.serve.max_batch = value(i, "--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch needs a positive integer: {e}"))?;
            }
            "--max-delay-ms" => {
                let ms: f64 = value(i, "--max-delay-ms")?
                    .parse()
                    .map_err(|e| format!("--max-delay-ms needs a number: {e}"))?;
                out.serve.max_delay = Duration::from_secs_f64(ms / 1e3);
            }
            "--out" => out.out = value(i, "--out")?.clone(),
            other => return Err(format!("unknown argument {other:?}")),
        }
        // Every flag above takes exactly one value.
        i += 2;
    }
    Ok(out)
}

/// Latency summary over one timed mode.
#[derive(Debug, Serialize)]
struct LatencyMs {
    mean: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    max: f64,
}

#[derive(Debug, Serialize)]
struct ModeResult {
    mode: String,
    /// What this mode measures (the two modes differ in more than one
    /// knob; this spells out exactly which).
    note: String,
    max_batch: usize,
    max_delay_ms: f64,
    workers: usize,
    /// `false`: every worker re-quantizes weights per forward (the
    /// pre-daemon per-call setup cost). Logits are bitwise identical
    /// either way; only cost differs.
    frozen_weights: bool,
    /// `false`: the replica is rebuilt from the checkpoint for every
    /// batch — the cold setup every prediction paid before the daemon.
    resident_model: bool,
    total_requests: usize,
    wall_s: f64,
    req_per_s: f64,
    latency_ms: LatencyMs,
    /// Batched forwards the daemon ran.
    batches: u64,
    /// Mean coalesced batch size (`total_requests / batches`).
    mean_batch: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    scale: String,
    model: String,
    quant: String,
    error_model: String,
    kernel: String,
    enob: f64,
    concurrency: usize,
    requests_per_client: usize,
    warmup_per_client: usize,
    workers: usize,
    worker_threads: usize,
    modes: Vec<ModeResult>,
    /// Adaptive req/s over batch-1-forced req/s.
    speedup: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one mode: starts a fresh in-process daemon, drives it with
/// `concurrency` closed-loop clients, shuts it down, returns the numbers.
fn run_mode(
    name: &str,
    note: &str,
    scenario: &LoadedScenario,
    serve: ServeConfig,
    images: &[Vec<f32>],
    load: &Args,
) -> ModeResult {
    let (concurrency, requests, warmup) = (load.concurrency, load.requests, load.warmup);
    let handle = ams_serve::start(
        scenario.clone(),
        serve.clone(),
        "127.0.0.1:0",
        "127.0.0.1:0",
    )
    .expect("bind ephemeral ports");
    let addr = handle.addr;
    // Everyone (clients + the timing thread) leaves warmup together.
    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let mut clients = Vec::new();
    for c in 0..concurrency {
        let barrier = Arc::clone(&barrier);
        let images: Vec<Vec<f32>> = images.to_vec();
        clients.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("connect");
            for r in 0..warmup {
                let img = &images[(c * warmup + r) % images.len()];
                client
                    .classify(r as u64, (c * 1000 + r) as u64, img)
                    .expect("warmup classify");
            }
            barrier.wait();
            let mut latencies = Vec::with_capacity(requests);
            for r in 0..requests {
                let img = &images[(c * requests + r) % images.len()];
                let t0 = Instant::now();
                client
                    .classify(r as u64, (c * 1_000_000 + r) as u64, img)
                    .expect("classify");
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            latencies
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    for c in clients {
        latencies.extend(c.join().expect("client thread"));
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let report = handle.report();
    let batch_hist = report
        .histogram("serve.batch.size")
        .expect("serve.batch.size recorded");
    let batches: u64 = batch_hist.counts.iter().sum();
    let dispatched = batch_hist.sum;

    ServeClient::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("graceful shutdown");
    handle.wait();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let total = concurrency * requests;
    ModeResult {
        mode: name.to_string(),
        note: note.to_string(),
        max_batch: serve.max_batch,
        max_delay_ms: serve.max_delay.as_secs_f64() * 1e3,
        workers: serve.workers,
        frozen_weights: serve.frozen_weights,
        resident_model: serve.resident_model,
        total_requests: total,
        wall_s,
        req_per_s: total as f64 / wall_s,
        latency_ms: LatencyMs {
            mean: latencies.iter().sum::<f64>() / latencies.len().max(1) as f64,
            p50: percentile(&latencies, 0.50),
            p90: percentile(&latencies, 0.90),
            p99: percentile(&latencies, 0.99),
            max: latencies.last().copied().unwrap_or(0.0),
        },
        batches,
        // `dispatched` counts warmup + timed + the shutdown drain, so it
        // is the honest denominator for the mean coalesced size.
        mean_batch: if batches == 0 {
            0.0
        } else {
            dispatched / batches as f64
        },
    }
}

fn main() {
    let args = parse(std::env::args().skip(1).collect())
        .unwrap_or_else(|message| usage_exit(&message, USAGE));
    eprintln!(
        "[bench_serve] loading scenario (scale {}) ...",
        args.scenario.scale.name
    );
    let scenario = args.scenario.load();

    // Request images come from the scale's validation split.
    let data = args.scenario.scale.synth.generate();
    let per_image = scenario.input_len();
    let val = data.val.images().data();
    let images: Vec<Vec<f32>> = (0..data.val.len())
        .map(|i| val[i * per_image..(i + 1) * per_image].to_vec())
        .collect();

    // Baseline: the serving architecture this daemon replaces —
    // thread-per-connection, one replica per worker, full per-call weight
    // quantization on every forward, no coalescing. Same scenario, same
    // bitwise logits; only the perf levers are off.
    let batch1 = ServeConfig {
        max_batch: 1,
        max_delay: Duration::ZERO,
        workers: args.concurrency,
        frozen_weights: false,
        resident_model: false,
        ..args.serve.clone()
    };
    eprintln!(
        "[bench_serve] mode batch1-forced: {} clients x {} requests ...",
        args.concurrency, args.requests
    );
    let r1 = run_mode(
        "batch1_forced",
        "pre-daemon baseline: replica per connection, cold model setup and \
         weight quantization on every prediction, coalescing off",
        &scenario,
        batch1,
        &images,
        &args,
    );
    eprintln!(
        "[bench_serve]   {:.1} req/s, p50 {:.2} ms, mean batch {:.2}",
        r1.req_per_s, r1.latency_ms.p50, r1.mean_batch
    );
    eprintln!(
        "[bench_serve] mode adaptive (max_batch {}, max_delay {:.1} ms) ...",
        args.serve.max_batch,
        args.serve.max_delay.as_secs_f64() * 1e3
    );
    let r2 = run_mode(
        "adaptive",
        "the daemon as shipped: shared frozen weights, adaptive coalescing",
        &scenario,
        args.serve.clone(),
        &images,
        &args,
    );
    eprintln!(
        "[bench_serve]   {:.1} req/s, p50 {:.2} ms, mean batch {:.2}",
        r2.req_per_s, r2.latency_ms.p50, r2.mean_batch
    );

    let speedup = r2.req_per_s / r1.req_per_s;
    eprintln!("[bench_serve] adaptive speedup: {speedup:.2}x");
    let report = BenchReport {
        schema: "ams-bench/serve/v1".to_string(),
        scale: args.scenario.scale.name.clone(),
        model: args.scenario.model.key().to_string(),
        quant: args.scenario.quant.key().to_string(),
        error_model: scenario.hardware_info.error_model.clone(),
        kernel: match scenario.kernel {
            ams_tensor::KernelDispatch::F32 => "f32".to_string(),
            ams_tensor::KernelDispatch::I8 => "i8".to_string(),
        },
        enob: scenario.hardware_info.enob,
        concurrency: args.concurrency,
        requests_per_client: args.requests,
        warmup_per_client: args.warmup,
        workers: args.serve.workers,
        worker_threads: args.serve.threads_per_worker,
        modes: vec![r1, r2],
        speedup,
    };
    let text = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&args.out, text.as_bytes()).expect("write report");
    eprintln!("[bench_serve] wrote {}", args.out);
}
