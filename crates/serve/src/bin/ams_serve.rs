//! The `ams-serve` daemon binary: load one scenario, serve until a client
//! sends the shutdown frame.

use std::time::Duration;

use ams_core::error_model::ErrorModelConfig;
use ams_exp::{usage_exit, Scale};
use ams_models::ModelKind;
use ams_quant::QuantScheme;
use ams_serve::{ScenarioConfig, ServeConfig};
use ams_tensor::KernelDispatch;

const USAGE: &str = "[--addr HOST:PORT] [--metrics-addr HOST:PORT] [--workers N] [--worker-threads N] [--max-batch N] [--max-delay-ms MS] [--enob E] [--scale quick|full|test] [--results DIR] [--model resnet-mini|lenet5] [--quant dorefa|bfp] [--error-model lumped|composite|per-vmac|ideal] [--kernel f32|i8]";

struct Args {
    addr: String,
    metrics_addr: String,
    scenario: ScenarioConfig,
    serve: ServeConfig,
}

fn parse(args: Vec<String>) -> Result<Args, String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut metrics_addr = "127.0.0.1:7879".to_string();
    let mut scenario = ScenarioConfig::default_at(Scale::quick());
    let mut serve = ServeConfig::default();
    let value = |i: usize, flag: &str| -> Result<&String, String> {
        args.get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(i, "--addr")?.clone(),
            "--metrics-addr" => metrics_addr = value(i, "--metrics-addr")?.clone(),
            "--workers" => {
                serve.workers = value(i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers needs a positive integer: {e}"))?;
            }
            "--worker-threads" => {
                serve.threads_per_worker = value(i, "--worker-threads")?
                    .parse()
                    .map_err(|e| format!("--worker-threads needs an integer: {e}"))?;
            }
            "--max-batch" => {
                serve.max_batch = value(i, "--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch needs a positive integer: {e}"))?;
            }
            "--max-delay-ms" => {
                let ms: f64 = value(i, "--max-delay-ms")?
                    .parse()
                    .map_err(|e| format!("--max-delay-ms needs a number: {e}"))?;
                serve.max_delay = Duration::from_secs_f64(ms / 1e3);
            }
            "--enob" => {
                scenario.enob = Some(
                    value(i, "--enob")?
                        .parse()
                        .map_err(|e| format!("--enob needs a number: {e}"))?,
                );
            }
            "--scale" => {
                scenario.scale = Scale::by_name(value(i, "--scale")?)
                    .map_err(|n| format!("unknown scale {n:?}; use quick|full|test"))?;
            }
            "--results" => scenario.results = value(i, "--results")?.clone(),
            "--model" => {
                scenario.model = value(i, "--model")?.parse::<ModelKind>()?;
            }
            "--quant" => {
                scenario.quant = match value(i, "--quant")?.as_str() {
                    "dorefa" => QuantScheme::Dorefa,
                    "bfp" => QuantScheme::Bfp { block: 16 },
                    other => return Err(format!("unknown quantizer {other:?}; use dorefa|bfp")),
                };
            }
            "--error-model" => {
                let kind: ams_core::error_model::ErrorModelKind =
                    value(i, "--error-model")?.parse()?;
                scenario.error_model = match kind {
                    ams_core::error_model::ErrorModelKind::Ideal => ErrorModelConfig::Ideal,
                    ams_core::error_model::ErrorModelKind::Lumped => ErrorModelConfig::Lumped,
                    ams_core::error_model::ErrorModelKind::Composite => {
                        ErrorModelConfig::Composite {
                            multiplier_sigma: 0.01,
                        }
                    }
                    ams_core::error_model::ErrorModelKind::PerVmac => ErrorModelConfig::per_vmac(),
                };
            }
            "--kernel" => {
                scenario.kernel = KernelDispatch::by_name(value(i, "--kernel")?)?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        // Every flag above takes exactly one value.
        i += 2;
    }
    Ok(Args {
        addr,
        metrics_addr,
        scenario,
        serve,
    })
}

fn main() {
    let args = parse(std::env::args().skip(1).collect())
        .unwrap_or_else(|message| usage_exit(&message, USAGE));
    eprintln!(
        "[ams-serve] loading scenario (scale {}, model {}, enob {:?}) ...",
        args.scenario.scale.name,
        args.scenario.model.key(),
        args.scenario.enob
    );
    let loaded = args.scenario.load();
    let handle = ams_serve::start(loaded, args.serve, &args.addr, &args.metrics_addr)
        .unwrap_or_else(|e| {
            eprintln!("error: failed to bind: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "[ams-serve] serving on {} (metrics on http://{}/metrics)",
        handle.addr, handle.metrics_addr
    );
    handle.wait();
    eprintln!("[ams-serve] drained and stopped");
}
