//! Scenario loading: resolve a `{model, quant, error-model, kernel}`
//! tuple to a trained checkpoint (via the experiment harness's cache) and
//! freeze its quantized weights once for the worker pool to share.

use std::sync::Arc;

use ams_core::error_model::ErrorModelConfig;
use ams_core::vmac::Vmac;
use ams_exp::{Experiments, Scale};
use ams_models::{AmsModel, HardwareConfig, ModelKind, ModelSpec, SharedModelWeights};
use ams_quant::{QuantConfig, QuantScheme};
use ams_tensor::{ExecCtx, KernelDispatch};

use crate::protocol::HardwareInfo;

/// What to serve: the scenario tuple plus where its artifacts live.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scale preset sizing the dataset and the cached checkpoints.
    pub scale: Scale,
    /// Results directory holding (or receiving) the trained checkpoint.
    pub results: String,
    /// Network topology.
    pub model: ModelKind,
    /// Quantizer scheme.
    pub quant: QuantScheme,
    /// Error model realized at evaluation.
    pub error_model: ErrorModelConfig,
    /// Eval matmul dispatch.
    pub kernel: KernelDispatch,
    /// `ENOB_VMAC`; `None` uses the scale's Table-2 operating point.
    pub enob: Option<f64>,
}

impl ScenarioConfig {
    /// The default serving scenario at the given scale: ResNet-mini,
    /// DoReFa w8a8, lumped Gaussian, f32 kernels, Table-2 ENOB.
    pub fn default_at(scale: Scale) -> Self {
        ScenarioConfig {
            scale,
            results: "results".to_string(),
            model: ModelKind::ResNetMini,
            quant: QuantScheme::Dorefa,
            error_model: ErrorModelConfig::Lumped,
            kernel: KernelDispatch::F32,
            enob: None,
        }
    }

    /// Trains (or loads from cache) the scenario's AMS-retrained w8a8
    /// checkpoint and freezes its quantized weights for replica sharing.
    pub fn load(&self) -> LoadedScenario {
        let enob = self.enob.unwrap_or(self.scale.table2_enob);
        let exp = Experiments::new(self.scale.clone(), &self.results)
            .with_ctx(ExecCtx::auto().with_kernel(self.kernel))
            .with_error_model(self.error_model)
            .with_model(self.model)
            .with_quant(self.quant);
        let (ckpt, _) = exp.ams_retrained(QuantConfig::w8a8(), enob);

        let quant = QuantConfig::w8a8().with_scheme(self.quant);
        let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
        let hw = HardwareConfig::ams(quant, vmac).with_error_model(self.error_model);
        let spec = self.scale.model_spec(self.model);

        let freeze_ctx = ExecCtx::serial().with_kernel(self.kernel);
        let mut freezer = spec.build(&hw);
        ckpt.load_into(&mut *freezer)
            .expect("checkpoint matches the architecture it trained");
        let shared = freezer.freeze_shared_weights(&freeze_ctx);

        let synth = &self.scale.synth;
        LoadedScenario {
            spec,
            hw,
            checkpoint: ckpt,
            shared: Arc::new(shared),
            kernel: self.kernel,
            input_dims: [synth.channels, synth.image_size, synth.image_size],
            classes: synth.classes,
            hardware_info: HardwareInfo {
                error_model: self.error_model.kind().to_string(),
                enob,
                n_mult: vmac.n_mult as u64,
            },
        }
    }
}

/// Everything a worker replica needs, resolved and frozen once.
#[derive(Debug, Clone)]
pub struct LoadedScenario {
    /// The architecture each replica builds.
    pub spec: ModelSpec,
    /// The hardware configuration each replica builds under.
    pub hw: HardwareConfig,
    /// The trained weights (the same data the frozen bundle was cut
    /// from) — lets offline comparators rebuild an unfrozen twin.
    pub checkpoint: ams_nn::Checkpoint,
    /// The frozen quantized weights every replica adopts (`Arc`-shared).
    pub shared: Arc<SharedModelWeights>,
    /// The eval matmul dispatch for worker contexts.
    pub kernel: KernelDispatch,
    /// `(C, H, W)` of one request image.
    pub input_dims: [usize; 3],
    /// Classifier output width.
    pub classes: usize,
    /// The config summary echoed in every response.
    pub hardware_info: HardwareInfo,
}

impl LoadedScenario {
    /// Pixels per request image (`C·H·W`).
    pub fn input_len(&self) -> usize {
        self.input_dims.iter().product()
    }

    /// Builds one worker replica sharing the frozen weights.
    ///
    /// The frozen bundle carries only the quantized weight matrices; the
    /// digital biases and any normalization state live in the checkpoint,
    /// so each replica loads it first and then swaps in the shared
    /// quantized weights.
    pub fn build_replica(&self) -> Box<dyn AmsModel> {
        let mut net = self.spec.build(&self.hw);
        self.checkpoint
            .load_into(&mut *net)
            .expect("checkpoint matches the architecture it trained");
        net.adopt_shared_weights(&self.shared);
        net
    }

    /// Builds a replica *without* the frozen-weight split: every forward
    /// re-quantizes its shadow weights, the full per-call setup cost each
    /// prediction paid before the daemon existed. Bitwise identical
    /// output to [`LoadedScenario::build_replica`]; used as the load
    /// generator's baseline and the e2e test's offline comparator.
    pub fn build_unfrozen_replica(&self) -> Box<dyn AmsModel> {
        let mut net = self.spec.build(&self.hw);
        self.checkpoint
            .load_into(&mut *net)
            .expect("checkpoint matches the architecture it trained");
        net
    }
}
