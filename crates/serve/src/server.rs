//! The daemon: an owned-state actor worker pool behind mpsc handles, fed
//! by a dispatcher that coalesces queued requests into batched forwards.
//!
//! Thread topology (all `std` primitives — no async runtime):
//!
//! ```text
//! accept loop ──► per-connection reader ──► dispatcher queue (mpsc)
//!                     │                          │  coalesce ≤ max_batch,
//!                     ▼                          ▼  wait ≤ max_delay
//!              per-connection writer ◄── worker 0..N (owned replica +
//!                                         deterministic RNG streams)
//! ```
//!
//! Workers own their model replica (frozen weights `Arc`-shared via
//! [`LoadedScenario::build_replica`]) and signal readiness on an idle
//! channel; the dispatcher hands each coalesced batch to the next idle
//! worker, so batches never queue behind a busy replica while another
//! sits idle. Per-request noise seeds make replies bit-identical to
//! offline batch-1 evaluation regardless of how requests were batched.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ams_nn::Mode;
use ams_obs::{MetricsReport, MetricsSink, Registry};
use ams_tensor::{ExecCtx, Tensor};

use crate::protocol::{
    decode_request, encode_response, encode_shutdown, read_frame, write_frame, ClassifyResponse,
    Request,
};
use crate::scenario::LoadedScenario;

/// Coalesced-batch-size histogram bounds (`serve.batch.size`).
pub const BATCH_SIZE_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Request-latency histogram bounds in milliseconds
/// (`serve.request.latency_ms`).
pub const LATENCY_MS_BOUNDS: [f64; 13] = [
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
];

/// Pool and coalescing knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker replicas (each owns a model + workspace + RNG streams).
    pub workers: usize,
    /// Threads per worker `ExecCtx`; 0 derives `cores / workers` (min 1).
    pub threads_per_worker: usize,
    /// Largest coalesced batch; 1 forces batch-1 (no coalescing). Kept
    /// modest by default: per-image forward cost is nearly
    /// batch-invariant here, so coalescing pays through dispatch
    /// amortization, and large batches only add queueing delay and
    /// working-set pressure.
    pub max_batch: usize,
    /// Cap on how long a request may wait for co-batched company,
    /// measured from its enqueue. Under load the queue outlives this cap
    /// on its own and dispatch is immediate; the cap only bites when a
    /// lone request would otherwise leave with an empty batch.
    pub max_delay: Duration,
    /// Share one frozen quantized weight set across replicas (the
    /// daemon's default). `false` gives every worker an unfrozen replica
    /// that re-quantizes its weights on every forward — the per-call
    /// setup cost each prediction paid before this daemon existed, kept
    /// as the load generator's baseline. Both settings produce bitwise
    /// identical logits (frozen forwards are bit-identical by
    /// construction); only the cost per forward differs.
    pub frozen_weights: bool,
    /// Keep each worker's replica resident across batches (the daemon's
    /// default). `false` rebuilds the replica from the checkpoint for
    /// every batch — the cold per-prediction setup cost of serving
    /// without a daemon, kept as the load generator's baseline. Output
    /// is unaffected; replicas are deterministic twins.
    pub resident_model: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            threads_per_worker: 0,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            frozen_weights: true,
            resident_model: true,
        }
    }
}

impl ServeConfig {
    fn resolved_threads(&self) -> usize {
        if self.threads_per_worker > 0 {
            return self.threads_per_worker;
        }
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        (cores / self.workers.max(1)).max(1)
    }
}

/// One queued classify request inside the daemon.
struct Job {
    seq: u64,
    seed: u64,
    pixels: Vec<f32>,
    /// Encoded response payloads travel back to the connection's writer.
    reply: Sender<Vec<u8>>,
    enqueued: Instant,
}

enum DispatchMsg {
    Job(Job),
    /// Drain everything already queued, stop the workers, then ack.
    Drain(Sender<()>),
}

enum WorkerMsg {
    Batch(Vec<Job>),
    Stop,
}

/// A running daemon: its bound addresses, metrics registry, and threads.
#[derive(Debug)]
pub struct ServerHandle {
    /// Bound request-protocol address.
    pub addr: SocketAddr,
    /// Bound `/metrics` + `/healthz` HTTP address.
    pub metrics_addr: SocketAddr,
    registry: Arc<Registry>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The serve metrics registry (shared with every daemon thread).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshots the serve metrics.
    pub fn report(&self) -> MetricsReport {
        self.registry.report()
    }

    /// Blocks until the daemon has fully stopped (a client sent the
    /// shutdown request and the queue drained).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts the daemon: binds both listeners, spawns the worker pool, the
/// dispatcher and the accept loops, and returns immediately.
///
/// Bind to port 0 to let the OS pick (the handle reports the real
/// addresses). The daemon stops when a client sends the shutdown frame.
///
/// # Errors
///
/// Returns bind errors.
pub fn start(
    scenario: LoadedScenario,
    cfg: ServeConfig,
    addr: &str,
    metrics_addr: &str,
) -> io::Result<ServerHandle> {
    assert!(cfg.workers >= 1, "ServeConfig: zero workers");
    assert!(cfg.max_batch >= 1, "ServeConfig: zero max_batch");
    let listener = TcpListener::bind(addr)?;
    let metrics_listener = TcpListener::bind(metrics_addr)?;
    let bound = listener.local_addr()?;
    let metrics_bound = metrics_listener.local_addr()?;

    let registry = Arc::new(Registry::new());
    let sink = MetricsSink::from(Arc::clone(&registry));
    let shutdown = Arc::new(AtomicBool::new(false));
    let depth = Arc::new(AtomicI64::new(0));
    let scenario = Arc::new(scenario);

    // Pre-register the serve metrics so /metrics is fully shaped (and the
    // e2e consistency check well-defined) before the first request.
    sink.add("serve.requests", 0);
    sink.add("serve.responses", 0);
    registry.histogram("serve.batch.size", &BATCH_SIZE_BOUNDS);
    registry.histogram("serve.request.latency_ms", &LATENCY_MS_BOUNDS);

    let mut threads = Vec::new();
    let (queue_tx, queue_rx) = mpsc::channel::<DispatchMsg>();
    let (idle_tx, idle_rx) = mpsc::channel::<usize>();

    // Worker pool: each worker owns a replica, a context, and its inbox.
    let worker_threads = cfg.resolved_threads();
    let mut worker_txs = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let (tx, rx) = mpsc::channel::<WorkerMsg>();
        worker_txs.push(tx);
        let scenario = Arc::clone(&scenario);
        let sink = sink.clone();
        let idle_tx = idle_tx.clone();
        let cfg = cfg.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("ams-serve-worker-{w}"))
                .spawn(move || {
                    worker_loop(w, &scenario, &cfg, worker_threads, &sink, &idle_tx, &rx)
                })
                .expect("spawn worker"),
        );
    }
    drop(idle_tx);

    {
        let sink = sink.clone();
        let depth = Arc::clone(&depth);
        let cfg = cfg.clone();
        threads.push(
            thread::Builder::new()
                .name("ams-serve-dispatch".into())
                .spawn(move || {
                    dispatcher_loop(&queue_rx, &idle_rx, &worker_txs, &cfg, &sink, &depth)
                })
                .expect("spawn dispatcher"),
        );
    }

    {
        let shutdown = Arc::clone(&shutdown);
        let scenario = Arc::clone(&scenario);
        threads.push(
            thread::Builder::new()
                .name("ams-serve-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &queue_tx, &scenario, &sink, &depth, &shutdown)
                })
                .expect("spawn accept loop"),
        );
    }

    {
        let shutdown = Arc::clone(&shutdown);
        let registry = Arc::clone(&registry);
        threads.push(
            thread::Builder::new()
                .name("ams-serve-metrics".into())
                .spawn(move || metrics_loop(&metrics_listener, &registry, &shutdown))
                .expect("spawn metrics loop"),
        );
    }

    Ok(ServerHandle {
        addr: bound,
        metrics_addr: metrics_bound,
        registry,
        threads,
    })
}

fn worker_loop(
    index: usize,
    scenario: &LoadedScenario,
    cfg: &ServeConfig,
    threads: usize,
    sink: &MetricsSink,
    idle_tx: &Sender<usize>,
    rx: &Receiver<WorkerMsg>,
) {
    let build = || {
        if cfg.frozen_weights {
            scenario.build_replica()
        } else {
            scenario.build_unfrozen_replica()
        }
    };
    let mut net = build();
    // Layer-level metric recording stays off the hot path; serve-level
    // metrics go through `sink`.
    let ctx = ExecCtx::with_threads(threads).with_kernel(scenario.kernel);
    let [c, h, w] = scenario.input_dims;
    let per_image = c * h * w;
    let classes = scenario.classes;
    if idle_tx.send(index).is_err() {
        return;
    }
    while let Ok(WorkerMsg::Batch(jobs)) = rx.recv() {
        if !cfg.resident_model {
            // Baseline mode: pay the cold per-prediction setup.
            net = build();
        }
        let n = jobs.len();
        let mut images = Tensor::zeros(&[n, c, h, w]);
        {
            let data = images.data_mut();
            for (i, job) in jobs.iter().enumerate() {
                data[i * per_image..(i + 1) * per_image].copy_from_slice(&job.pixels);
            }
        }
        let seeds: Arc<Vec<u64>> = Arc::new(jobs.iter().map(|j| j.seed).collect());
        net.set_request_noise_seeds(Some(seeds));
        let t0 = Instant::now();
        let logits = net.forward(&ctx, &images, Mode::Eval);
        sink.record_duration("serve.batch.forward", t0.elapsed());
        sink.observe_histogram("serve.batch.size", &BATCH_SIZE_BOUNDS, n as f64);
        for (i, job) in jobs.iter().enumerate() {
            let payload = encode_response(&ClassifyResponse {
                seq: job.seq,
                hardware: scenario.hardware_info.clone(),
                logits: logits.data()[i * classes..(i + 1) * classes].to_vec(),
            });
            // A send error means the connection hung up; its loss.
            let _ = job.reply.send(payload);
            sink.observe_histogram(
                "serve.request.latency_ms",
                &LATENCY_MS_BOUNDS,
                job.enqueued.elapsed().as_secs_f64() * 1e3,
            );
            sink.inc("serve.responses");
        }
        if idle_tx.send(index).is_err() {
            break;
        }
    }
}

fn dispatcher_loop(
    queue_rx: &Receiver<DispatchMsg>,
    idle_rx: &Receiver<usize>,
    worker_txs: &[Sender<WorkerMsg>],
    cfg: &ServeConfig,
    sink: &MetricsSink,
    depth: &AtomicI64,
) {
    let mut idle: VecDeque<usize> = VecDeque::new();
    let mut acks: Vec<Sender<()>> = Vec::new();
    let claim = |idle: &mut VecDeque<usize>| {
        idle.pop_front()
            .unwrap_or_else(|| idle_rx.recv().expect("a worker outlives the dispatcher"))
    };
    let send_batch = |w: usize, batch: Vec<Job>| {
        let remaining = depth.fetch_sub(batch.len() as i64, Ordering::Relaxed) - batch.len() as i64;
        sink.observe("serve.queue.depth", remaining.max(0) as f64);
        let _ = worker_txs[w].send(WorkerMsg::Batch(batch));
    };
    'serve: loop {
        let first = match queue_rx.recv() {
            Ok(m) => m,
            Err(_) => break 'serve, // all connections and the acceptor gone
        };
        let mut batch = Vec::new();
        match first {
            DispatchMsg::Job(j) => batch.push(j),
            DispatchMsg::Drain(a) => {
                acks.push(a);
                break 'serve;
            }
        }
        // Adaptive, work-conserving coalescing: claim a worker first —
        // while every replica is busy, arrivals pile up behind us, so the
        // batch size adapts to pool pressure on its own. Once a worker is
        // in hand, take everything already queued, then wait for company
        // only until the oldest request has been in the daemon for
        // max_delay. Under load that deadline is already spent and
        // dispatch is immediate; a free worker never idles on a timer
        // while requests wait.
        let w = claim(&mut idle);
        if cfg.max_batch > 1 {
            while batch.len() < cfg.max_batch {
                match queue_rx.try_recv() {
                    Ok(DispatchMsg::Job(j)) => batch.push(j),
                    Ok(DispatchMsg::Drain(a)) => {
                        acks.push(a);
                        send_batch(w, batch);
                        break 'serve;
                    }
                    Err(_) => break,
                }
            }
            let deadline = batch[0].enqueued + cfg.max_delay;
            while batch.len() < cfg.max_batch {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                match queue_rx.recv_timeout(left) {
                    Ok(DispatchMsg::Job(j)) => batch.push(j),
                    Ok(DispatchMsg::Drain(a)) => {
                        acks.push(a);
                        send_batch(w, batch);
                        break 'serve;
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        send_batch(w, batch);
    }
    // Drain: everything enqueued before the shutdown frame (mpsc is FIFO)
    // still gets dispatched and answered before the ack goes out.
    let mut pending = Vec::new();
    loop {
        match queue_rx.try_recv() {
            Ok(DispatchMsg::Job(j)) => {
                pending.push(j);
                if pending.len() == cfg.max_batch {
                    let w = claim(&mut idle);
                    send_batch(w, std::mem::take(&mut pending));
                }
            }
            Ok(DispatchMsg::Drain(a)) => acks.push(a),
            Err(_) => break,
        }
    }
    if !pending.is_empty() {
        let w = claim(&mut idle);
        send_batch(w, pending);
    }
    // Wait for every worker to finish its final batch, then stop them.
    while idle.len() < worker_txs.len() {
        match idle_rx.recv() {
            Ok(w) => idle.push_back(w),
            Err(_) => break,
        }
    }
    for tx in worker_txs {
        let _ = tx.send(WorkerMsg::Stop);
    }
    for ack in acks {
        let _ = ack.send(());
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue_tx: &Sender<DispatchMsg>,
    scenario: &Arc<LoadedScenario>,
    sink: &MetricsSink,
    depth: &Arc<AtomicI64>,
    shutdown: &Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let queue_tx = queue_tx.clone();
                let input_len = scenario.input_len();
                let sink = sink.clone();
                let depth = Arc::clone(depth);
                let shutdown = Arc::clone(shutdown);
                conns.push(
                    thread::Builder::new()
                        .name("ams-serve-conn".into())
                        .spawn(move || {
                            connection_loop(stream, &queue_tx, input_len, &sink, &depth, &shutdown)
                        })
                        .expect("spawn connection"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

fn connection_loop(
    stream: TcpStream,
    queue_tx: &Sender<DispatchMsg>,
    input_len: usize,
    sink: &MetricsSink,
    depth: &AtomicI64,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (resp_tx, resp_rx) = mpsc::channel::<Vec<u8>>();
    // The writer owns the write half; it exits when every sender (this
    // reader plus any in-flight jobs) has dropped.
    let writer = thread::Builder::new()
        .name("ams-serve-write".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_half);
            while let Ok(payload) = resp_rx.recv() {
                if write_frame(&mut w, &payload).is_err() {
                    break;
                }
            }
        })
        .expect("spawn writer");
    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        match decode_request(&payload) {
            Ok(Request::Classify(req)) => {
                if req.pixels.len() != input_len {
                    // Protocol violation: drop the connection rather than
                    // feed a mis-shaped image to a worker.
                    break;
                }
                sink.inc("serve.requests");
                depth.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    seq: req.seq,
                    seed: req.seed,
                    pixels: req.pixels,
                    reply: resp_tx.clone(),
                    enqueued: Instant::now(),
                };
                if queue_tx.send(DispatchMsg::Job(job)).is_err() {
                    break; // dispatcher already stopped
                }
            }
            Ok(Request::Shutdown) => {
                let (ack_tx, ack_rx) = mpsc::channel();
                if queue_tx.send(DispatchMsg::Drain(ack_tx)).is_ok() {
                    let _ = ack_rx.recv();
                }
                let _ = resp_tx.send(encode_shutdown());
                shutdown.store(true, Ordering::Relaxed);
                break;
            }
            Err(_) => break,
        }
    }
    drop(resp_tx);
    let _ = writer.join();
}

fn metrics_loop(listener: &TcpListener, registry: &Arc<Registry>, shutdown: &Arc<AtomicBool>) {
    listener
        .set_nonblocking(true)
        .expect("metrics listener nonblocking");
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_http(stream, registry);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Answers one HTTP/1.x request: `/metrics` (Prometheus text) or
/// `/healthz` (`ok`). Connection: close.
fn serve_http(mut stream: TcpStream, registry: &Arc<Registry>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0;
    // Read until the header terminator (we ignore everything after the
    // request line anyway).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = match path {
        "/metrics" => ("200 OK", registry.report().prometheus_text()),
        "/healthz" => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}
