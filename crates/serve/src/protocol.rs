//! The length-prefixed TCP wire protocol (see DESIGN.md §14).
//!
//! Every message is a *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. The first payload byte is the
//! message type.
//!
//! Requests:
//!
//! ```text
//! classify: [0x01][seq: u64][seed: u64][n: u32][n × f32 pixels]
//! shutdown: [0x02]
//! ```
//!
//! Responses:
//!
//! ```text
//! logits:       [0x01][seq: u64][kind_len: u8][kind utf-8][enob: f64]
//!               [n_mult: u64][k: u32][k × f32 logits]
//! shutdown ack: [0x02]   (sent only after the request queue has drained)
//! ```
//!
//! All multi-byte integers and floats are little-endian. `seq` is chosen
//! by the client and echoed verbatim, so a client may pipeline several
//! classify requests on one connection and match responses out of order.
//! `seed` is the per-request noise seed: the daemon guarantees the reply
//! logits are bit-identical to an offline `reseed_noise(seed)` + batch-1
//! evaluation, no matter how requests were coalesced into batches.

use std::io::{self, Read, Write};

/// Payload tag of classify requests and logits responses.
pub const MSG_CLASSIFY: u8 = 1;
/// Payload tag of shutdown requests and their (post-drain) acks.
pub const MSG_SHUTDOWN: u8 = 2;

/// Frames larger than this are rejected as corrupt rather than allocated.
pub const MAX_FRAME: usize = 16 << 20;

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one image under the given noise seed.
    Classify(ClassifyRequest),
    /// Drain the queue, ack, and stop the daemon.
    Shutdown,
}

/// One classify request: a single image plus its noise seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyRequest {
    /// Client-chosen id, echoed in the response.
    pub seq: u64,
    /// Per-request noise seed (the offline `reseed_noise` pass seed).
    pub seed: u64,
    /// Flattened `(C, H, W)` image, pixel values in `[0, 1]`.
    pub pixels: Vec<f32>,
}

/// The hardware configuration echoed with every logits response.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareInfo {
    /// Error model kind key (e.g. `lumped`).
    pub error_model: String,
    /// `ENOB_VMAC` of the served scenario (0 for ideal digital hardware).
    pub enob: f64,
    /// `N_mult` of the served scenario (0 for ideal digital hardware).
    pub n_mult: u64,
}

/// One logits response.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyResponse {
    /// The request's `seq`, echoed.
    pub seq: u64,
    /// The served hardware configuration.
    pub hardware: HardwareInfo,
    /// Raw classifier outputs, one per class.
    pub logits: Vec<f32>,
}

fn bad(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed frame: {what}"),
    )
}

/// Reads one frame's payload; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors, EOF mid-frame, or an over-[`MAX_FRAME`] length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(bad("length prefix exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Underlying I/O errors; payloads over [`MAX_FRAME`] are rejected.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(bad("payload exceeds MAX_FRAME"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A little-endian payload cursor.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| bad("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f32s(&mut self, n: usize) -> io::Result<Vec<f32>> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| bad("count overflow"))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes"))
        }
    }
}

/// Encodes a classify request payload.
pub fn encode_classify(req: &ClassifyRequest) -> Vec<u8> {
    let mut p = Vec::with_capacity(1 + 8 + 8 + 4 + req.pixels.len() * 4);
    p.push(MSG_CLASSIFY);
    p.extend_from_slice(&req.seq.to_le_bytes());
    p.extend_from_slice(&req.seed.to_le_bytes());
    p.extend_from_slice(&(req.pixels.len() as u32).to_le_bytes());
    for &x in &req.pixels {
        p.extend_from_slice(&x.to_le_bytes());
    }
    p
}

/// Encodes the one-byte shutdown request payload.
pub fn encode_shutdown() -> Vec<u8> {
    vec![MSG_SHUTDOWN]
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on unknown tags, truncation, or
/// trailing bytes.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let req = match r.u8()? {
        MSG_CLASSIFY => {
            let seq = r.u64()?;
            let seed = r.u64()?;
            let n = r.u32()? as usize;
            Request::Classify(ClassifyRequest {
                seq,
                seed,
                pixels: r.f32s(n)?,
            })
        }
        MSG_SHUTDOWN => Request::Shutdown,
        other => return Err(bad(&format!("unknown request tag {other}"))),
    };
    r.done()?;
    Ok(req)
}

/// Encodes a logits response payload.
pub fn encode_response(resp: &ClassifyResponse) -> Vec<u8> {
    let kind = resp.hardware.error_model.as_bytes();
    assert!(kind.len() <= u8::MAX as usize, "error model kind too long");
    let mut p = Vec::with_capacity(1 + 8 + 1 + kind.len() + 8 + 8 + 4 + resp.logits.len() * 4);
    p.push(MSG_CLASSIFY);
    p.extend_from_slice(&resp.seq.to_le_bytes());
    p.push(kind.len() as u8);
    p.extend_from_slice(kind);
    p.extend_from_slice(&resp.hardware.enob.to_bits().to_le_bytes());
    p.extend_from_slice(&resp.hardware.n_mult.to_le_bytes());
    p.extend_from_slice(&(resp.logits.len() as u32).to_le_bytes());
    for &x in &resp.logits {
        p.extend_from_slice(&x.to_le_bytes());
    }
    p
}

/// Decodes a logits response payload; `Ok(None)` for a shutdown ack.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on unknown tags, truncation, bad UTF-8
/// in the kind, or trailing bytes.
pub fn decode_response(payload: &[u8]) -> io::Result<Option<ClassifyResponse>> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    match r.u8()? {
        MSG_CLASSIFY => {
            let seq = r.u64()?;
            let kind_len = r.u8()? as usize;
            let kind = std::str::from_utf8(r.take(kind_len)?)
                .map_err(|_| bad("kind is not UTF-8"))?
                .to_string();
            let enob = r.f64()?;
            let n_mult = r.u64()?;
            let k = r.u32()? as usize;
            let logits = r.f32s(k)?;
            r.done()?;
            Ok(Some(ClassifyResponse {
                seq,
                hardware: HardwareInfo {
                    error_model: kind,
                    enob,
                    n_mult,
                },
                logits,
            }))
        }
        MSG_SHUTDOWN => {
            r.done()?;
            Ok(None)
        }
        other => Err(bad(&format!("unknown response tag {other}"))),
    }
}

/// A blocking client for the serve protocol: one request in flight.
///
/// For pipelined load generation open several clients (see `bench_serve`);
/// each call is a full round trip.
#[derive(Debug)]
pub struct ServeClient {
    stream: std::net::TcpStream,
}

impl ServeClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// One classify round trip.
    ///
    /// # Errors
    ///
    /// I/O errors, a malformed reply, or an unexpected shutdown ack.
    pub fn classify(
        &mut self,
        seq: u64,
        seed: u64,
        pixels: &[f32],
    ) -> io::Result<ClassifyResponse> {
        write_frame(
            &mut self.stream,
            &encode_classify(&ClassifyRequest {
                seq,
                seed,
                pixels: pixels.to_vec(),
            }),
        )?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        decode_response(&payload)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unexpected shutdown ack"))
    }

    /// Requests shutdown and blocks until the post-drain ack arrives.
    ///
    /// # Errors
    ///
    /// I/O errors or a non-ack reply.
    pub fn shutdown(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &encode_shutdown())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        match decode_response(&payload)? {
            None => Ok(()),
            Some(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected shutdown ack",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_request_round_trips() {
        let req = ClassifyRequest {
            seq: 7,
            seed: 0xDEAD_BEEF,
            pixels: vec![0.0, 0.5, 1.0],
        };
        let payload = encode_classify(&req);
        assert_eq!(decode_request(&payload).unwrap(), Request::Classify(req));
    }

    #[test]
    fn shutdown_round_trips() {
        assert_eq!(
            decode_request(&encode_shutdown()).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn response_round_trips() {
        let resp = ClassifyResponse {
            seq: 42,
            hardware: HardwareInfo {
                error_model: "lumped".into(),
                enob: 4.5,
                n_mult: 8,
            },
            logits: vec![1.25, -3.5],
        };
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), Some(resp));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let req = ClassifyRequest {
            seq: 1,
            seed: 2,
            pixels: vec![1.0; 4],
        };
        let mut payload = encode_classify(&req);
        payload.truncate(payload.len() - 1);
        assert!(decode_request(&payload).is_err());
        // Trailing garbage is also rejected.
        let mut padded = encode_shutdown();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
        assert!(decode_request(&[9]).is_err());
    }

    #[test]
    fn oversized_frame_lengths_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }
}
