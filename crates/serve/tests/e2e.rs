//! End-to-end smoke of the serving daemon at the `test` scale: concurrent
//! clients, bitwise identity against offline evaluation, `/metrics`
//! consistency, and graceful queue-draining shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ams_exp::Scale;
use ams_nn::Mode;
use ams_serve::protocol::{
    decode_response, encode_classify, encode_shutdown, read_frame, write_frame, ClassifyRequest,
    ServeClient,
};
use ams_serve::{ScenarioConfig, ServeConfig};
use ams_tensor::{ExecCtx, Tensor};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 5;

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read http");
    let (_, body) = text
        .split_once("\r\n\r\n")
        .expect("http response has a header/body split");
    body.to_string()
}

fn prom_value(text: &str, metric: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.starts_with(metric) && l.as_bytes().get(metric.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {metric} not exported:\n{text}"));
    line[metric.len() + 1..]
        .trim()
        .parse()
        .expect("numeric value")
}

#[test]
fn daemon_matches_offline_eval_and_drains_on_shutdown() {
    let results = std::env::temp_dir().join("ams_serve_e2e_results");
    let config = ScenarioConfig {
        results: results.to_string_lossy().into_owned(),
        ..ScenarioConfig::default_at(Scale::test())
    };
    let scenario = config.load();
    let [c, h, w] = scenario.input_dims;
    let per_image = scenario.input_len();

    // Request images: the test scale's validation split.
    let data = config.scale.synth.generate();
    let val = data.val.images().data().to_vec();
    let n_val = data.val.len();

    let serve = ServeConfig {
        workers: 2,
        threads_per_worker: 1,
        max_batch: 8,
        max_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let handle = ams_serve::start(scenario.clone(), serve, "127.0.0.1:0", "127.0.0.1:0")
        .expect("bind ephemeral ports");
    let addr = handle.addr;
    let metrics_addr = handle.metrics_addr;

    assert_eq!(http_get(metrics_addr, "/healthz"), "ok\n");

    // Concurrent closed-loop clients; every reply is recorded with the
    // request that produced it.
    let mut clients = Vec::new();
    for cl in 0..CLIENTS {
        let val = val.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("connect");
            let mut got = Vec::new();
            for r in 0..REQUESTS_PER_CLIENT {
                let idx = (cl * REQUESTS_PER_CLIENT + r) % n_val;
                let seed = 0xE2E0 + (cl * 100 + r) as u64;
                let pixels = &val[idx * per_image..(idx + 1) * per_image];
                let resp = client
                    .classify((cl * 1000 + r) as u64, seed, pixels)
                    .expect("classify");
                assert_eq!(resp.seq, (cl * 1000 + r) as u64);
                assert_eq!(resp.logits.len(), scenario.classes);
                assert_eq!(resp.hardware.error_model, "lumped");
                assert!(resp.hardware.enob > 0.0);
                assert_eq!(resp.hardware.n_mult, 8);
                got.push((idx, seed, resp.logits));
            }
            got
        }));
    }
    let mut answers = Vec::new();
    for cl in clients {
        answers.extend(cl.join().expect("client thread"));
    }
    assert_eq!(answers.len(), CLIENTS * REQUESTS_PER_CLIENT);

    // Bitwise identity: an offline twin (same checkpoint, unfrozen path)
    // evaluating batch-1 under reseed_noise(seed) must reproduce every
    // served reply exactly, however the daemon coalesced them.
    let ctx = ExecCtx::serial().with_kernel(scenario.kernel);
    let mut offline = scenario.spec.build(&scenario.hw);
    scenario
        .checkpoint
        .load_into(&mut *offline)
        .expect("checkpoint matches architecture");
    for (idx, seed, served) in &answers {
        let image = Tensor::from_vec(
            &[1, c, h, w],
            val[idx * per_image..(idx + 1) * per_image].to_vec(),
        )
        .unwrap();
        offline.reseed_noise(*seed);
        let logits = offline.forward(&ctx, &image, Mode::Eval);
        assert_eq!(
            logits.data(),
            &served[..],
            "served logits diverge from offline eval (image {idx}, seed {seed})"
        );
    }

    // /metrics consistency: every request answered, and the coalesced
    // batch-size histogram accounts for each exactly once.
    let metrics = http_get(metrics_addr, "/metrics");
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    assert_eq!(prom_value(&metrics, "serve_requests"), total);
    assert_eq!(prom_value(&metrics, "serve_responses"), total);
    assert_eq!(prom_value(&metrics, "serve_batch_size_sum"), total);
    assert_eq!(
        prom_value(&metrics, "serve_request_latency_ms_count"),
        total
    );
    let batches = prom_value(&metrics, "serve_batch_size_count");
    assert!(batches >= 1.0 && batches <= total);
    assert!(http_get(metrics_addr, "/nope").contains("not found"));

    // Graceful shutdown drains the queue: pipeline a burst of classify
    // frames immediately followed by the shutdown frame, without reading
    // anything. Every burst request must still be answered, and the ack
    // must arrive only after all of them.
    let burst = 7;
    let mut stream = TcpStream::connect(addr).expect("connect burst");
    for r in 0..burst {
        let pixels = val[(r % n_val) * per_image..(r % n_val + 1) * per_image].to_vec();
        write_frame(
            &mut stream,
            &encode_classify(&ClassifyRequest {
                seq: 9000 + r as u64,
                seed: 7,
                pixels,
            }),
        )
        .unwrap();
    }
    write_frame(&mut stream, &encode_shutdown()).unwrap();
    let mut seen = Vec::new();
    loop {
        let payload = read_frame(&mut stream).unwrap().expect("reply before EOF");
        match decode_response(&payload).unwrap() {
            Some(resp) => seen.push(resp.seq),
            None => break, // the ack — must come after every reply
        }
    }
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..burst).map(|r| 9000 + r as u64).collect::<Vec<_>>(),
        "shutdown must drain every queued request before acking"
    );
    handle.wait();
}
