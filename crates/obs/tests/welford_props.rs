//! Property tests: Welford mean/variance merging is order- and
//! partition-invariant (up to floating-point rounding), so per-thread
//! metric shards merge into the same statistic regardless of how the
//! dispatcher split the work.

use ams_obs::WelfordState;
use proptest::prelude::*;

/// Relative tolerance for comparing two accumulation orders. Welford
/// updates and Chan merges are not bit-identical under reassociation, but
/// agree to a handful of ulps for well-scaled data.
const RTOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= RTOL * (1.0 + a.abs().max(b.abs()))
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pushing the same observations in a different order yields the same
    /// mean/variance/min/max.
    #[test]
    fn push_order_invariant(xs in samples(), rot in 0usize..200) {
        let forward = WelfordState::from_samples(&xs);
        let mut rotated = xs.clone();
        rotated.rotate_left(rot % xs.len());
        rotated.reverse();
        let backward = WelfordState::from_samples(&rotated);
        prop_assert_eq!(forward.count, backward.count);
        prop_assert!(close(forward.mean, backward.mean), "mean {} vs {}", forward.mean, backward.mean);
        prop_assert!(close(forward.sample_variance(), backward.sample_variance()),
            "var {} vs {}", forward.sample_variance(), backward.sample_variance());
        prop_assert_eq!(forward.min, backward.min);
        prop_assert_eq!(forward.max, backward.max);
    }

    /// Splitting the stream at an arbitrary point, accumulating each shard
    /// independently, and merging matches the single-pass accumulation —
    /// the per-thread sharding a parallel dispatch produces.
    #[test]
    fn merge_partition_invariant(xs in samples(), split in 0usize..200) {
        let single_pass = WelfordState::from_samples(&xs);
        let cut = split % (xs.len() + 1);
        let mut left = WelfordState::from_samples(&xs[..cut]);
        let right = WelfordState::from_samples(&xs[cut..]);
        left.merge(&right);
        prop_assert_eq!(single_pass.count, left.count);
        prop_assert!(close(single_pass.mean, left.mean), "mean {} vs {}", single_pass.mean, left.mean);
        prop_assert!(close(single_pass.sample_variance(), left.sample_variance()),
            "var {} vs {}", single_pass.sample_variance(), left.sample_variance());
        prop_assert_eq!(single_pass.min, left.min);
        prop_assert_eq!(single_pass.max, left.max);
    }

    /// Merging many shards is associative: folding left-to-right equals
    /// merging a pre-merged right half (tree reduction vs linear fold).
    #[test]
    fn merge_associative(xs in samples(), a in 0usize..200, b in 0usize..200) {
        let (i, j) = {
            let i = a % (xs.len() + 1);
            let j = i + b % (xs.len() - i + 1);
            (i, j)
        };
        let (s1, s2, s3) = (
            WelfordState::from_samples(&xs[..i]),
            WelfordState::from_samples(&xs[i..j]),
            WelfordState::from_samples(&xs[j..]),
        );
        // (s1 + s2) + s3
        let mut left = s1;
        left.merge(&s2);
        left.merge(&s3);
        // s1 + (s2 + s3)
        let mut right_tail = s2;
        right_tail.merge(&s3);
        let mut right = s1;
        right.merge(&right_tail);
        prop_assert_eq!(left.count, right.count);
        prop_assert!(close(left.mean, right.mean));
        prop_assert!(close(left.sample_variance(), right.sample_variance()));
    }
}
