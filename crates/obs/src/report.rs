//! Serializable snapshot of a registry: the payload behind every
//! experiment binary's `--metrics <path>` flag.

use serde::{Deserialize, Serialize};

/// One counter's final value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Final count.
    pub value: u64,
}

/// One timer's accumulated wall time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerEntry {
    /// Metric name.
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_nanos: u64,
    /// Mean nanoseconds per recording.
    pub mean_nanos: f64,
}

/// One Welford gauge's summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Mean of the observations.
    pub mean: f64,
    /// Sample variance (n−1 denominator).
    pub variance: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// One histogram's bucket layout and counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub counts: Vec<u64>,
    /// Sum of all observed values (Prometheus `_sum`).
    pub sum: f64,
}

/// A complete, sorted snapshot of a registry.
///
/// Serializes to JSON through the workspace serde facade; [`MetricsReport::csv_rows`]
/// renders the same data as a flat kind/name table for CSV emission.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All timers, sorted by name.
    pub timers: Vec<TimerEntry>,
    /// All non-empty gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramEntry>,
}

/// The header row matching [`MetricsReport::csv_rows`].
pub const CSV_HEADERS: [&str; 8] = [
    "kind", "name", "count", "value", "mean", "std", "min", "max",
];

impl MetricsReport {
    /// Looks up a gauge entry by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeEntry> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Looks up a counter entry by name.
    pub fn counter(&self, name: &str) -> Option<&CounterEntry> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Looks up a timer entry by name.
    pub fn timer(&self, name: &str) -> Option<&TimerEntry> {
        self.timers.iter().find(|t| t.name == name)
    }

    /// Looks up a histogram entry by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramEntry> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.timers.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Renders the snapshot in the Prometheus text exposition format —
    /// the payload behind `ams-serve`'s `/metrics` endpoint.
    ///
    /// Metric names are sanitized (`.` and other non-identifier bytes
    /// become `_`). Counters map to `counter`, timers to `_count`/`_sum`
    /// (seconds) summaries, Welford gauges to `_count`/`_mean`/`_min`/
    /// `_max` gauges, and histograms to cumulative `_bucket{le=...}`
    /// series plus `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for c in &self.counters {
            let n = sanitize(&c.name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.value));
        }
        for t in &self.timers {
            let n = sanitize(&t.name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            out.push_str(&format!("{n}_count {}\n", t.count));
            out.push_str(&format!("{n}_sum {}\n", t.total_nanos as f64 / 1e9));
        }
        for g in &self.gauges {
            let n = sanitize(&g.name);
            out.push_str(&format!("# TYPE {n}_mean gauge\n"));
            out.push_str(&format!("{n}_count {}\n", g.count));
            out.push_str(&format!("{n}_mean {}\n", g.mean));
            out.push_str(&format!("{n}_min {}\n", g.min));
            out.push_str(&format!("{n}_max {}\n", g.max));
        }
        for h in &self.histograms {
            let n = sanitize(&h.name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &count) in h.counts.iter().enumerate() {
                cum += count;
                match h.bounds.get(i) {
                    Some(b) => out.push_str(&format!("{n}_bucket{{le=\"{b}\"}} {cum}\n")),
                    None => out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n")),
                }
            }
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {cum}\n"));
        }
        out
    }

    /// Flattens the report into one row per metric (histogram buckets get
    /// one row each, named `name[le=bound]` / `name[overflow]`), with
    /// columns [`CSV_HEADERS`]. Cells that do not apply to a kind are
    /// empty.
    pub fn csv_rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for c in &self.counters {
            rows.push(vec![
                "counter".into(),
                c.name.clone(),
                String::new(),
                c.value.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for t in &self.timers {
            rows.push(vec![
                "timer".into(),
                t.name.clone(),
                t.count.to_string(),
                t.total_nanos.to_string(),
                format!("{:.1}", t.mean_nanos),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        for g in &self.gauges {
            rows.push(vec![
                "gauge".into(),
                g.name.clone(),
                g.count.to_string(),
                String::new(),
                format!("{:.9e}", g.mean),
                format!("{:.9e}", g.std),
                format!("{:.9e}", g.min),
                format!("{:.9e}", g.max),
            ]);
        }
        for h in &self.histograms {
            for (i, &count) in h.counts.iter().enumerate() {
                let label = match h.bounds.get(i) {
                    Some(b) => format!("{}[le={b}]", h.name),
                    None => format!("{}[overflow]", h.name),
                };
                rows.push(vec![
                    "histogram".into(),
                    label,
                    String::new(),
                    count.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsSink;

    fn sample_report() -> MetricsReport {
        let sink = MetricsSink::recording();
        sink.inc("exec.dispatch.serial");
        sink.observe("noise.stem", 0.5);
        sink.observe("noise.stem", -0.5);
        sink.record_duration("layer.fc.forward", std::time::Duration::from_nanos(250));
        sink.observe_histogram("sizes", &[1.0, 10.0], 5.0);
        sink.registry().unwrap().report()
    }

    #[test]
    fn lookup_helpers_find_entries() {
        let r = sample_report();
        assert_eq!(r.counter("exec.dispatch.serial").unwrap().value, 1);
        assert_eq!(r.gauge("noise.stem").unwrap().count, 2);
        assert_eq!(r.timer("layer.fc.forward").unwrap().count, 1);
        assert!(r.counter("missing").is_none());
        assert!(!r.is_empty());
        assert!(MetricsReport::default().is_empty());
    }

    #[test]
    fn prometheus_text_renders_every_kind() {
        let r = sample_report();
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE exec_dispatch_serial counter\nexec_dispatch_serial 1\n"));
        assert!(text.contains("layer_fc_forward_count 1\n"));
        assert!(text.contains("noise_stem_mean 0\n"));
        // Cumulative buckets: 1 obs <= 1.0, still 1 <= 10.0, 1 total.
        assert!(text.contains("sizes_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("sizes_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("sizes_sum 5\n"));
        assert!(text.contains("sizes_count 1\n"));
    }

    #[test]
    fn csv_rows_cover_every_metric() {
        let r = sample_report();
        let rows = r.csv_rows();
        // 1 counter + 1 timer + 1 gauge + 3 histogram buckets.
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|row| row.len() == CSV_HEADERS.len()));
        assert!(rows.iter().any(|row| row[1] == "sizes[overflow]"));
    }
}
