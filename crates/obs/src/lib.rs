//! Metrics/observability layer for the `ams-dnn` workspace.
//!
//! The paper's headline analyses are all *measurements of an instrumented
//! network* — injected-error variance per layer (Eq. 1–2), activation-mean
//! drift at conv outputs (Fig. 6), per-sweep accuracy rollups (Fig. 4–5).
//! This crate provides the registry those measurements are recorded into:
//!
//! * [`Counter`] — atomic event counts (serial/parallel dispatch decisions),
//! * [`Timer`] — accumulated wall time (per-layer forward/backward),
//! * [`Gauge`] — streaming mean/variance via [`WelfordState`] (injected
//!   noise per layer, activation means),
//! * [`Histogram`] — fixed-bucket distributions,
//!
//! all reached through a [`MetricsSink`] handle that is threaded through
//! the stack embedded in `ams_tensor::ExecCtx`. A disabled sink
//! ([`MetricsSink::disabled`], the default) reduces every recording call
//! to a branch on a `None`, so uninstrumented hot paths pay essentially
//! nothing; [`MetricsSink::recording`] attaches a shared [`Registry`]
//! whose [`Registry::report`] snapshot serializes to JSON/CSV behind the
//! experiment binaries' `--metrics <path>` flag.
//!
//! # Example
//!
//! ```
//! use ams_obs::MetricsSink;
//! use std::time::Duration;
//!
//! let sink = MetricsSink::recording();
//! sink.inc("exec.dispatch.serial");
//! sink.observe("noise.stem", 0.02);
//! sink.record_duration("layer.stem.forward", Duration::from_micros(120));
//! let report = sink.registry().unwrap().report();
//! assert_eq!(report.counters[0].value, 1);
//! assert_eq!(report.gauges[0].count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fsio;
mod metric;
mod registry;
mod report;
mod welford;

pub use metric::{Counter, Gauge, Histogram, Timer};
pub use registry::{MetricsSink, Registry, ScopedTimer};
pub use report::{
    CounterEntry, GaugeEntry, HistogramEntry, MetricsReport, TimerEntry, CSV_HEADERS,
};
pub use welford::WelfordState;
