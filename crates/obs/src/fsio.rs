//! Crash-safe file writes.
//!
//! Every durable artifact in the workspace — model checkpoints, sweep
//! journals, train-state snapshots, metrics reports — goes through
//! [`atomic_write`]: the bytes land in a sibling temporary file, the file
//! is fsynced, and only then renamed over the destination. A crash (power
//! loss, SIGKILL, panic) at any point leaves either the old complete file
//! or the new complete file on disk, never a torn half-write. This is the
//! primitive the resumable sweep engine's bit-identical-resume guarantee
//! is built on (DESIGN.md §9).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: tmp file → fsync → rename, then
/// best-effort fsync of the parent directory so the rename itself is
/// durable.
///
/// The temporary file is `<file_name>.tmp` in the same directory (rename
/// is only atomic within a filesystem). A stale `.tmp` left by an earlier
/// crash is silently overwritten.
///
/// # Errors
///
/// Propagates any I/O error from creating, writing, syncing, or renaming
/// the temporary file. On error the destination is untouched.
///
/// # Panics
///
/// Panics if `path` has no file name (e.g. ends in `..`).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let name = path
        .file_name()
        .unwrap_or_else(|| panic!("atomic_write: path {path:?} has no file name"));
    let tmp = path.with_file_name({
        let mut n = name.to_os_string();
        n.push(".tmp");
        n
    });
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename durable: fsync the directory entry. Best-effort —
    // some filesystems/platforms refuse to open directories.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("ams_obs_fsio_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(
            !path.with_file_name("out.json.tmp").exists(),
            "tmp file must not survive a successful write"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn error_leaves_destination_untouched() {
        let dir = std::env::temp_dir().join("ams_obs_fsio_err_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("keep.json");
        atomic_write(&path, b"original").unwrap();
        // Writing into a directory that does not exist fails cleanly.
        let bad = dir.join("no_such_subdir").join("x.json");
        assert!(atomic_write(&bad, b"x").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"original");
        let _ = fs::remove_dir_all(dir);
    }
}
