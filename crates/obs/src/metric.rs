//! The four metric primitives: counters, timers, Welford gauges, and
//! fixed-bucket histograms.
//!
//! All primitives are internally synchronized ([`std::sync::atomic`] or a
//! [`std::sync::Mutex`] around a tiny state struct), so one `Arc`'d
//! instance can be recorded into from every worker thread of an
//! `ExecCtx` dispatch without external locking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::welford::WelfordState;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Accumulated wall time: total nanoseconds and the number of recordings.
///
/// Durations are recorded whole (no sampling); the report derives the mean.
#[derive(Debug, Default)]
pub struct Timer {
    total_nanos: AtomicU64,
    count: AtomicU64,
}

impl Timer {
    /// A timer with nothing recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        // u64 nanoseconds overflow after ~584 years of accumulated time.
        self.total_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total recorded nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    /// Mean recorded duration in nanoseconds (0 when nothing recorded).
    pub fn mean_nanos(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_nanos() as f64 / n as f64
        }
    }
}

/// A streaming mean/variance gauge (a locked [`WelfordState`]).
#[derive(Debug, Default)]
pub struct Gauge {
    state: Mutex<WelfordState>,
}

impl Gauge {
    /// An empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, x: f64) {
        self.state
            .lock()
            .expect("gauge lock never poisoned")
            .push(x);
    }

    /// Merges a pre-accumulated shard (e.g. the per-batch summary a layer
    /// computed locally) in one lock acquisition.
    pub fn merge(&self, shard: &WelfordState) {
        self.state
            .lock()
            .expect("gauge lock never poisoned")
            .merge(shard);
    }

    /// A copy of the current summary.
    pub fn snapshot(&self) -> WelfordState {
        *self.state.lock().expect("gauge lock never poisoned")
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// An observation `x` lands in the first bucket whose upper bound
/// satisfies `x <= bound`; values above every bound land in the implicit
/// overflow bucket, so `counts()` has `bounds().len() + 1` entries.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    /// Sum of all observed values, stored as f64 bits (CAS loop on
    /// observe) so `_sum`-style exports don't need a lock.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "Histogram: empty bucket bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "Histogram: bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values (Prometheus `_sum`). Serving uses this
    /// to cross-check coalescing: the batch-size histogram's sum must
    /// equal the number of requests served.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn timer_accumulates_and_averages() {
        let t = Timer::new();
        t.record(Duration::from_nanos(100));
        t.record(Duration::from_nanos(300));
        assert_eq!(t.count(), 2);
        assert_eq!(t.total_nanos(), 400);
        assert!((t.mean_nanos() - 200.0).abs() < 1e-9);
        assert_eq!(Timer::new().mean_nanos(), 0.0);
    }

    #[test]
    fn gauge_observe_and_merge_agree() {
        let g = Gauge::new();
        g.observe(1.0);
        g.observe(3.0);
        let shard = WelfordState::from_samples(&[5.0, 7.0]);
        g.merge(&shard);
        let s = g.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn histogram_buckets_include_overflow() {
        let h = Histogram::new(&[1.0, 2.0]);
        for x in [0.5, 1.0, 1.5, 99.0] {
            h.observe(x);
        }
        assert_eq!(h.counts(), vec![2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert!((h.sum() - 102.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unordered_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }
}
