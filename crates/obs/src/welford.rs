//! Streaming mean/variance accumulation (Welford's algorithm) with exact
//! pairwise merging (Chan et al.), so per-thread metric shards combine
//! into the same statistic a single-pass accumulation would produce.

use serde::{Deserialize, Serialize};

/// A mergeable running summary of an observed scalar stream: count, mean,
/// centered second moment (`M2`), and the observed range.
///
/// `push` is Welford's classic update; `merge` is the parallel combination
/// of two disjoint shards. Merging is associative and (up to floating-point
/// rounding on the order of machine epsilon) independent of both the
/// observation order and how the stream was partitioned — the property the
/// per-thread metric shards rely on, verified by proptests in
/// `tests/welford_props.rs`.
///
/// # Example
///
/// ```
/// use ams_obs::WelfordState;
///
/// let mut a = WelfordState::new();
/// let mut b = WelfordState::new();
/// for x in [1.0, 2.0] { a.push(x); }
/// for x in [3.0, 4.0] { b.push(x); }
/// a.merge(&b);
/// assert_eq!(a.count, 4);
/// assert!((a.mean - 2.5).abs() < 1e-12);
/// assert!((a.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WelfordState {
    /// Number of observations.
    pub count: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    /// Sum of squared deviations from the mean (`Σ(x−mean)²`).
    pub m2: f64,
    /// Smallest observation (+∞ when empty).
    pub min: f64,
    /// Largest observation (−∞ when empty).
    pub max: f64,
}

impl WelfordState {
    /// The empty summary.
    pub fn new() -> Self {
        WelfordState {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A summary of a single observation.
    pub fn of(x: f64) -> Self {
        let mut s = Self::new();
        s.push(x);
        s
    }

    /// Summarizes a whole slice in one pass.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another shard's summary into this one (Chan et al.'s
    /// parallel variance combination). Merging the empty state is a no-op.
    pub fn merge(&mut self, other: &WelfordState) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Population variance (`M2 / n`); 0 when fewer than two observations.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`M2 / (n − 1)`); 0 when fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation (√ of [`WelfordState::sample_variance`]).
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl Default for WelfordState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_matches_two_pass_formulas() {
        let xs = [1.5, -0.25, 3.0, 0.0, 2.25, -1.0];
        let s = WelfordState::from_samples(&xs);
        let n = xs.len() as f64;
        let mean: f64 = xs.iter().sum::<f64>() / n;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert_eq!(s.count, xs.len() as u64);
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn empty_and_single_sample_are_safe() {
        let empty = WelfordState::new();
        assert!(empty.is_empty());
        assert_eq!(empty.population_variance(), 0.0);
        assert_eq!(empty.sample_variance(), 0.0);
        let one = WelfordState::of(7.0);
        assert_eq!(one.count, 1);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.sample_variance(), 0.0);
        assert_eq!(one.min, 7.0);
        assert_eq!(one.max, 7.0);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let s = WelfordState::from_samples(&[1.0, 2.0, 4.0]);
        let mut a = s;
        a.merge(&WelfordState::new());
        assert_eq!(a, s);
        let mut b = WelfordState::new();
        b.merge(&s);
        assert_eq!(b, s);
    }
}
