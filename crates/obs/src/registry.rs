//! The metrics registry and the [`MetricsSink`] handle threaded through
//! the stack.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metric::{Counter, Gauge, Histogram, Timer};
use crate::report::{CounterEntry, GaugeEntry, HistogramEntry, MetricsReport, TimerEntry};
use crate::welford::WelfordState;

/// A named collection of metrics, one map per primitive kind.
///
/// Metrics are created on first use (`counter("x")` returns the existing
/// counter or registers a new one). Names are independent per kind, and
/// reports list each kind sorted by name, so output is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    timers: Mutex<BTreeMap<String, Arc<Timer>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T>(
    map: &Mutex<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    let mut map = map.lock().expect("registry lock never poisoned");
    if let Some(existing) = map.get(name) {
        return Arc::clone(existing);
    }
    let created = Arc::new(make());
    map.insert(name.to_string(), Arc::clone(&created));
    created
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::new)
    }

    /// The timer named `name`, registered on first use.
    pub fn timer(&self, name: &str) -> Arc<Timer> {
        get_or_insert(&self.timers, name, Timer::new)
    }

    /// The Welford gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name`, registered on first use with the given
    /// bucket upper bounds (later callers' bounds are ignored — the first
    /// registration wins).
    ///
    /// # Panics
    ///
    /// Panics if a first registration passes invalid bounds (see
    /// [`Histogram::new`]).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds))
    }

    /// Snapshots every metric into a serializable, sorted report.
    /// Gauges that never observed anything are omitted (their min/max are
    /// infinities, which JSON cannot represent).
    pub fn report(&self) -> MetricsReport {
        let counters = self
            .counters
            .lock()
            .expect("registry lock never poisoned")
            .iter()
            .map(|(name, c)| CounterEntry {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let timers = self
            .timers
            .lock()
            .expect("registry lock never poisoned")
            .iter()
            .map(|(name, t)| TimerEntry {
                name: name.clone(),
                count: t.count(),
                total_nanos: t.total_nanos(),
                mean_nanos: t.mean_nanos(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock never poisoned")
            .iter()
            .filter_map(|(name, g)| {
                let s = g.snapshot();
                (!s.is_empty()).then(|| GaugeEntry {
                    name: name.clone(),
                    count: s.count,
                    mean: s.mean,
                    variance: s.sample_variance(),
                    std: s.sample_std(),
                    min: s.min,
                    max: s.max,
                })
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock never poisoned")
            .iter()
            .map(|(name, h)| HistogramEntry {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                counts: h.counts(),
                sum: h.sum(),
            })
            .collect();
        MetricsReport {
            counters,
            timers,
            gauges,
            histograms,
        }
    }
}

/// The recording handle threaded through the stack alongside `ExecCtx`.
///
/// A sink is either *disabled* (the default — every operation is a branch
/// on a `None` and returns immediately, so uninstrumented runs pay
/// essentially nothing) or *recording* into a shared [`Registry`]. Clones
/// share the registry, so the handle embedded in an `ExecCtx` and the one
/// kept by the caller that wants the final report see the same metrics.
///
/// # Example
///
/// ```
/// use ams_obs::MetricsSink;
///
/// let sink = MetricsSink::recording();
/// sink.inc("requests");
/// sink.observe("latency_ms", 1.25);
/// let report = sink.registry().unwrap().report();
/// assert_eq!(report.counters[0].value, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    registry: Option<Arc<Registry>>,
}

impl MetricsSink {
    /// The no-op sink: records nothing, costs (almost) nothing.
    pub const fn disabled() -> Self {
        MetricsSink { registry: None }
    }

    /// A sink recording into a fresh registry.
    pub fn recording() -> Self {
        MetricsSink {
            registry: Some(Arc::new(Registry::new())),
        }
    }

    /// Whether this sink records anything.
    pub fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if recording.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Increments counter `name` by one.
    pub fn inc(&self, name: &str) {
        if let Some(r) = &self.registry {
            r.counter(name).inc();
        }
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }

    /// Records one observation into gauge `name`.
    pub fn observe(&self, name: &str, x: f64) {
        if let Some(r) = &self.registry {
            r.gauge(name).observe(x);
        }
    }

    /// Merges a locally accumulated shard into gauge `name`.
    pub fn merge_observations(&self, name: &str, shard: &WelfordState) {
        if let Some(r) = &self.registry {
            r.gauge(name).merge(shard);
        }
    }

    /// Records a duration into timer `name`.
    pub fn record_duration(&self, name: &str, d: Duration) {
        if let Some(r) = &self.registry {
            r.timer(name).record(d);
        }
    }

    /// Records an observation into histogram `name` with the given bucket
    /// bounds (bounds apply on first registration only).
    pub fn observe_histogram(&self, name: &str, bounds: &[f64], x: f64) {
        if let Some(r) = &self.registry {
            r.histogram(name, bounds).observe(x);
        }
    }

    /// Starts a scoped wall-time measurement recorded into the timer named
    /// by `name` when the returned guard drops. When the sink is disabled
    /// the name closure is never evaluated and no clock is read, so hot
    /// paths can build names with `format!` without paying for it in
    /// uninstrumented runs.
    pub fn scope(&self, name: impl FnOnce() -> String) -> ScopedTimer {
        ScopedTimer {
            inner: self
                .registry
                .as_ref()
                .map(|r| (r.timer(&name()), Instant::now())),
        }
    }

    /// Times `f` into timer `name` (when recording) and returns its result.
    pub fn time<R>(&self, name: impl FnOnce() -> String, f: impl FnOnce() -> R) -> R {
        let _guard = self.scope(name);
        f()
    }
}

impl From<Arc<Registry>> for MetricsSink {
    fn from(registry: Arc<Registry>) -> Self {
        MetricsSink {
            registry: Some(registry),
        }
    }
}

/// Guard returned by [`MetricsSink::scope`]; records the elapsed wall time
/// on drop. Inert (and free) when the sink was disabled.
#[derive(Debug)]
pub struct ScopedTimer {
    inner: Option<(Arc<Timer>, Instant)>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.inner.take() {
            timer.record(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = MetricsSink::disabled();
        assert!(!sink.enabled());
        sink.inc("never");
        sink.observe("never", 1.0);
        sink.record_duration("never", Duration::from_secs(1));
        let mut evaluated = false;
        {
            let _g = sink.scope(|| {
                evaluated = true;
                "never".to_string()
            });
        }
        assert!(!evaluated, "name closure must not run when disabled");
        assert!(sink.registry().is_none());
    }

    #[test]
    fn recording_sink_shares_registry_across_clones() {
        let sink = MetricsSink::recording();
        let other = sink.clone();
        sink.inc("hits");
        other.inc("hits");
        let report = sink.registry().unwrap().report();
        assert_eq!(report.counters.len(), 1);
        assert_eq!(report.counters[0].name, "hits");
        assert_eq!(report.counters[0].value, 2);
    }

    #[test]
    fn scope_records_into_named_timer() {
        let sink = MetricsSink::recording();
        {
            let _g = sink.scope(|| "op".to_string());
            std::hint::black_box(3 + 4);
        }
        let report = sink.registry().unwrap().report();
        assert_eq!(report.timers.len(), 1);
        assert_eq!(report.timers[0].count, 1);
    }

    #[test]
    fn get_or_create_returns_same_metric() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn empty_gauges_are_omitted_from_report() {
        let sink = MetricsSink::recording();
        let _ = sink.registry().unwrap().gauge("touched_but_empty");
        sink.observe("real", 2.0);
        let report = sink.registry().unwrap().report();
        assert_eq!(report.gauges.len(), 1);
        assert_eq!(report.gauges[0].name, "real");
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let sink = MetricsSink::recording();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = sink.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        s.inc("n");
                        s.observe("g", f64::from(t * 1000 + i));
                    }
                });
            }
        });
        let report = sink.registry().unwrap().report();
        assert_eq!(report.counters[0].value, 4000);
        assert_eq!(report.gauges[0].count, 4000);
    }
}
