//! Wall-clock kernel report: times the hot kernels at three conv-shaped
//! sizes and writes `BENCH_kernels.json` (schema documented in
//! EXPERIMENTS.md).
//!
//! Unlike the Criterion benches (statistical, minutes-long), this binary
//! is a fast smoke report: a handful of repeats per kernel, median with
//! p10/p90 spread, suitable for CI artifacts and quick before/after
//! comparisons. The headline entry pits the tiled matmul against the
//! retained naive reference kernel on the conv-shaped
//! `256 × 1152 × 3136` product so speedups are tracked release to
//! release.
//!
//! Usage: `bench_report [--quick] [--out PATH] [--threads N]`

use std::time::Instant;

use ams_exp::usage_exit;
use ams_models::{HardwareConfig, InputKind, QConv2d, QLinear};
use ams_nn::functional::conv2d_forward;
use ams_nn::{Layer, Mode};
use ams_quant::QuantConfig;
use ams_tensor::{
    im2col_in, matmul_i8_in, matmul_in, matmul_reference, quantize_symmetric_i8, rng, ConvGeom,
    Density, ExecCtx, KernelDispatch, Tensor,
};
use serde::Value;

const USAGE: &str = "[--quick] [--out PATH] [--threads N]";

/// Untimed iterations before each kernel's timed repeats (populates the
/// workspace pool, faults in pages). Recorded in the report so runs are
/// comparable: a changed warmup discipline shifts medians on its own.
const WARMUP_ITERATIONS: usize = 1;

/// First `model name` line of `/proc/cpuinfo`, so the report identifies
/// the machine it ran on (headline speedups drift across CPU models).
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split_once(':'))
                .map(|(_, v)| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

/// Builds a JSON object from string keys (vendored `serde` value tree —
/// no `json!` macro in the facade).
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn dims_value(dims: &[usize]) -> Value {
    Value::Seq(dims.iter().map(|&d| Value::U64(d as u64)).collect())
}

/// Newtype so a hand-built [`Value`] tree can go through
/// [`serde_json::to_string`] (the facade serializes `impl Serialize`,
/// and `Value` itself doesn't implement it).
struct Report(Value);

impl serde::Serialize for Report {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// One conv-shaped workload; the matmul shape is the lowered form
/// `(c_out) × (c_in·k²) × (n·oh·ow)`.
struct ConvShape {
    name: &'static str,
    n: usize,
    c_in: usize,
    c_out: usize,
    hw: usize,
    k: usize,
}

impl ConvShape {
    fn geom(&self) -> ConvGeom {
        ConvGeom::new(
            self.n,
            self.c_in,
            self.hw,
            self.hw,
            self.k,
            self.k,
            1,
            self.k / 2,
        )
    }

    fn matmul_dims(&self) -> (usize, usize, usize) {
        let g = self.geom();
        (self.c_out, g.rows(), g.cols())
    }
}

const SHAPES: [ConvShape; 3] = [
    ConvShape {
        name: "small",
        n: 1,
        c_in: 16,
        c_out: 32,
        hw: 16,
        k: 3,
    },
    ConvShape {
        name: "medium",
        n: 2,
        c_in: 64,
        c_out: 64,
        hw: 28,
        k: 3,
    },
    // Headline: 256 × 1152 × 3136 once lowered.
    ConvShape {
        name: "large",
        n: 4,
        c_in: 128,
        c_out: 256,
        hw: 28,
        k: 3,
    },
];

fn random(dims: &[usize], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, -1.0, 1.0, &mut r);
    t
}

/// Times `f` (which must leave the workspace in steady state) `reps`
/// times after [`WARMUP_ITERATIONS`] untimed warm-ups, returning
/// millisecond samples.
fn time_reps(reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..WARMUP_ITERATIONS {
        f();
    }
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// Linear-interpolated percentile of an unsorted sample set.
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let pos = p * (s.len() - 1) as f64;
    let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
    s[lo] + (s[hi] - s[lo]) * (pos - pos.floor())
}

fn summary(kernel: &str, shape: &ConvShape, dims: &[usize], samples: &[f64]) -> Value {
    obj(vec![
        ("kernel", Value::Str(kernel.to_string())),
        ("shape", Value::Str(shape.name.to_string())),
        ("dims", dims_value(dims)),
        ("median_ms", Value::F64(percentile(samples, 0.5))),
        ("p10_ms", Value::F64(percentile(samples, 0.1))),
        ("p90_ms", Value::F64(percentile(samples, 0.9))),
    ])
}

fn parse(args: Vec<String>) -> Result<(bool, String, usize), String> {
    let mut quick = false;
    let mut out = String::from("BENCH_kernels.json");
    let mut threads = 0usize; // 0 = auto
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).ok_or("--out needs a value")?.clone();
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads needs an integer: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((quick, out, threads))
}

fn main() {
    let (quick, out, threads) = parse(std::env::args().skip(1).collect())
        .unwrap_or_else(|message| usage_exit(&message, USAGE));
    let reps = if quick { 3 } else { 9 };
    let ctx = if threads == 0 {
        ExecCtx::auto()
    } else {
        ExecCtx::with_threads(threads)
    };
    let ws = ctx.workspace();
    let mut results: Vec<Value> = Vec::new();

    for shape in &SHAPES {
        let (m, kdim, ncols) = shape.matmul_dims();
        eprintln!(
            "[{}] matmul {m}x{kdim}x{ncols}, conv n={} c_in={} c_out={} {}x{} k={}",
            shape.name, shape.n, shape.c_in, shape.c_out, shape.hw, shape.hw, shape.k
        );

        // -- matmul: tiled (current) and naive reference (pre-PR kernel).
        let a = random(&[m, kdim], 1);
        let b = random(&[kdim, ncols], 2);
        let tiled = time_reps(reps, || {
            let y = matmul_in(&ctx, &a, &b);
            ws.recycle(y);
        });
        results.push(summary("matmul_tiled", shape, &[m, kdim, ncols], &tiled));
        let naive = time_reps(reps, || {
            let y = matmul_reference(&a, &b);
            drop(y);
        });
        results.push(summary("matmul_naive", shape, &[m, kdim, ncols], &naive));

        // -- integer fast path on the same operands, quantized once
        // outside the timed region (the layers quantize per forward, but
        // weight codes are cached there; this isolates the GEMM itself).
        let (acodes, ascale) = quantize_symmetric_i8(a.data());
        let (bcodes, bscale) = quantize_symmetric_i8(b.data());
        let i8s = time_reps(reps, || {
            let y = matmul_i8_in(
                &ctx,
                m,
                kdim,
                ncols,
                &acodes,
                &bcodes,
                ascale * bscale,
                false,
            );
            ws.recycle(y);
        });
        results.push(summary("matmul_i8", shape, &[m, kdim, ncols], &i8s));

        if shape.name == "large" {
            let (tm, nm) = (percentile(&tiled, 0.5), percentile(&naive, 0.5));
            results.push(obj(vec![
                ("kernel", Value::Str("headline_speedup".to_string())),
                ("shape", Value::Str(shape.name.to_string())),
                ("dims", dims_value(&[m, kdim, ncols])),
                ("naive_median_ms", Value::F64(nm)),
                ("tiled_median_ms", Value::F64(tm)),
                ("speedup", Value::F64(nm / tm)),
            ]));
            eprintln!(
                "  headline: naive {nm:.2} ms, tiled {tm:.2} ms, speedup {:.2}x",
                nm / tm
            );
            let im = percentile(&i8s, 0.5);
            results.push(obj(vec![
                ("kernel", Value::Str("i8_vs_tiled_speedup".to_string())),
                ("shape", Value::Str(shape.name.to_string())),
                ("dims", dims_value(&[m, kdim, ncols])),
                ("tiled_median_ms", Value::F64(tm)),
                ("i8_median_ms", Value::F64(im)),
                ("speedup", Value::F64(tm / im)),
            ]));
            eprintln!(
                "  headline: tiled {tm:.2} ms, i8 {im:.2} ms, speedup {:.2}x",
                tm / im
            );
        }

        // -- im2col lowering.
        let x = random(&[shape.n, shape.c_in, shape.hw, shape.hw], 3);
        let geom = shape.geom();
        let lower = time_reps(reps, || {
            let cols = im2col_in(&ctx, &x, &geom);
            ws.recycle(cols);
        });
        results.push(summary(
            "im2col",
            shape,
            &[shape.n, shape.c_in, shape.hw, shape.hw],
            &lower,
        ));

        // -- full conv forward (im2col + tiled matmul + col-to-NCHW).
        let wmat = random(&[shape.c_out, geom.rows()], 4);
        let fwd = time_reps(reps, || {
            let (y, _) = conv2d_forward(
                &ctx,
                &x,
                &wmat,
                Density::Sample,
                None,
                shape.k,
                shape.k,
                1,
                shape.k / 2,
                false,
            );
            ws.recycle(y);
        });
        results.push(summary(
            "conv2d_forward",
            shape,
            &[
                shape.n,
                shape.c_in,
                shape.c_out,
                shape.hw,
                shape.hw,
                shape.k,
            ],
            &fwd,
        ));

        // -- quantized conv eval forward (quantize + conv, steady state).
        let mut r = rng::seeded(5);
        let hw_cfg = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut qc = QConv2d::new(
            "bench",
            shape.c_in,
            shape.c_out,
            shape.k,
            1,
            shape.k / 2,
            &hw_cfg,
            InputKind::Unit,
            0,
            &mut r,
        );
        let x01 = random(&[shape.n, shape.c_in, shape.hw, shape.hw], 6).map(|v| v.abs());
        let qfwd = time_reps(reps, || {
            let y = qc.forward(&ctx, &x01, Mode::Eval);
            ws.recycle(y);
        });
        let conv_dims = [
            shape.n,
            shape.c_in,
            shape.c_out,
            shape.hw,
            shape.hw,
            shape.k,
        ];
        results.push(summary("qconv_eval", shape, &conv_dims, &qfwd));

        // -- the same eval forward through the i8 dispatch, so the
        // kernel-switch win is tracked on the layer path end-to-end, not
        // just on the raw GEMM above.
        let ctx_i8 = ctx.clone().with_kernel(KernelDispatch::I8);
        let qfwd_i8 = time_reps(reps, || {
            let y = qc.forward(&ctx_i8, &x01, Mode::Eval);
            ws.recycle(y);
        });
        results.push(summary("qconv_eval_i8", shape, &conv_dims, &qfwd_i8));

        // -- quantized linear eval at a serving-shaped workload: a
        // coalesced batch of 64 rows against a classifier whose input
        // width matches the lowered conv's K dimension.
        let lin_rows = 64;
        let lin_in = shape.c_in * shape.k * shape.k;
        let mut ql = QLinear::new("bench_fc", lin_in, shape.c_out, &hw_cfg, false, 1, &mut r);
        let lx = random(&[lin_rows, lin_in], 7).map(|v| v.abs());
        let lin_dims = [lin_rows, lin_in, shape.c_out];
        let lfwd = time_reps(reps, || {
            let y = ql.forward(&ctx, &lx, Mode::Eval);
            ws.recycle(y);
        });
        results.push(summary("qlinear_eval", shape, &lin_dims, &lfwd));
        let lfwd_i8 = time_reps(reps, || {
            let y = ql.forward(&ctx_i8, &lx, Mode::Eval);
            ws.recycle(y);
        });
        results.push(summary("qlinear_eval_i8", shape, &lin_dims, &lfwd_i8));
    }

    let report = obj(vec![
        ("schema", Value::Str("ams-bench/kernels/v2".to_string())),
        ("quick", Value::Bool(quick)),
        ("repeats", Value::U64(reps as u64)),
        ("warmup_iterations", Value::U64(WARMUP_ITERATIONS as u64)),
        ("threads", Value::U64(ctx.threads() as u64)),
        ("cpu_model", Value::Str(cpu_model())),
        ("results", Value::Seq(results)),
    ]);
    std::fs::write(
        &out,
        serde_json::to_string(&Report(report)).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
