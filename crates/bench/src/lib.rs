//! Shared fixtures for the Criterion benchmark harness.
//!
//! The benches regenerate each paper table/figure's computational load at
//! a bench-safe scale (full regeneration — training included — lives in
//! the `ams-exp` binaries; see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ams_data::{SynthConfig, SynthImageNet};
use ams_models::{HardwareConfig, ResNetMini, ResNetMiniConfig};

/// A bench-scale dataset (tiny, deterministic).
pub fn bench_data() -> SynthImageNet {
    SynthConfig::tiny().generate()
}

/// A bench-scale network for the given hardware.
pub fn bench_net(hw: &HardwareConfig) -> ResNetMini {
    ResNetMini::new(&ResNetMiniConfig::tiny(), hw)
}
