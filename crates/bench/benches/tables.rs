//! Benches for the paper's tables.
//!
//! * **Table 1** — one epoch of DoReFa-quantized retraining per row
//!   configuration (the unit of work the table's accuracies are built
//!   from).
//! * **Table 2** — a freeze-policy application plus one retraining step
//!   per policy (the unit of work of the selective-freezing study).

use ams_bench::{bench_data, bench_net};
use ams_core::vmac::Vmac;
use ams_data::Batcher;
use ams_models::{FreezePolicy, HardwareConfig};
use ams_nn::{softmax_cross_entropy, Layer, Mode, Sgd};
use ams_quant::QuantConfig;
use ams_tensor::{rng, ExecCtx};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn one_epoch(c: &mut Criterion) {
    let data = bench_data();
    let mut group = c.benchmark_group("table1_epoch");
    group.sample_size(10);
    for (label, quant) in [
        ("fp32", QuantConfig::fp32()),
        ("w8a8", QuantConfig::w8a8()),
        ("w6a6", QuantConfig::w6a6()),
        ("w6a4", QuantConfig::w6a4()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &quant, |b, &q| {
            let mut net = bench_net(&HardwareConfig::quantized(q));
            let opt = Sgd::with_momentum(0.01, 0.9);
            let mut r = rng::seeded(0);
            b.iter(|| {
                for (images, labels) in Batcher::new(&data.train, 16, &mut r) {
                    let logits = net.forward(&ExecCtx::serial(), &images, Mode::Train);
                    let (_, grad) = softmax_cross_entropy(&logits, &labels);
                    net.backward(&ExecCtx::serial(), &grad);
                    opt.step(&mut net);
                }
            });
        });
    }
    group.finish();
}

fn freezing_step(c: &mut Criterion) {
    let data = bench_data();
    let vmac = Vmac::new(8, 8, 8, 5.0);
    let hw = HardwareConfig::ams(QuantConfig::w8a8(), vmac);
    let (images, labels) = {
        let mut r = rng::seeded(1);
        Batcher::new(&data.train, 16, &mut r)
            .next()
            .expect("nonempty")
    };
    let mut group = c.benchmark_group("table2_step");
    group.sample_size(10);
    for policy in FreezePolicy::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &p| {
            let mut net = bench_net(&hw);
            net.apply_freeze(p);
            let opt = Sgd::with_momentum(0.01, 0.9);
            b.iter(|| {
                let logits = net.forward(&ExecCtx::serial(), &images, Mode::Train);
                let (_, grad) = softmax_cross_entropy(&logits, &labels);
                net.backward(&ExecCtx::serial(), &grad);
                opt.step(&mut net);
            });
        });
    }
    group.finish();
}

criterion_group!(tables, one_epoch, freezing_step);
criterion_main!(tables);
