//! Ablation benches: the Section 4 alternatives — per-VMAC simulation
//! modes, multiplication partitioning, and the lumped injector — costed
//! against each other.

use ams_core::inject::GaussianInjector;
use ams_core::partition::PartitionedVmac;
use ams_core::vmac::Vmac;
use ams_core::vmac_sim::{AdcBehavior, VmacSimulator};
use ams_tensor::{rng, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

fn operands(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut r = rng::seeded(seed);
    let w: Vec<f32> = (0..n).map(|_| r.gen::<f32>() * 2.0 - 1.0).collect();
    let x: Vec<f32> = (0..n).map(|_| r.gen::<f32>()).collect();
    (w, x)
}

fn dot_modes(c: &mut Criterion) {
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let (w, x) = operands(512, 1);
    let mut group = c.benchmark_group("vmac_dot_512");
    for (label, behavior) in [
        ("ideal", AdcBehavior::Ideal),
        ("quantizing", AdcBehavior::Quantizing),
        (
            "delta_sigma",
            AdcBehavior::DeltaSigma {
                final_extra_bits: 2.0,
            },
        ),
        ("ref_scaled", AdcBehavior::RefScaled { alpha: 0.25 }),
    ] {
        let sim = VmacSimulator::new(vmac, behavior);
        group.bench_with_input(BenchmarkId::from_parameter(label), &sim, |b, s| {
            b.iter(|| s.dot(&w, &x));
        });
    }
    group.finish();
}

fn lumped_vs_per_vmac(c: &mut Criterion) {
    // The paper's modeling tradeoff: one Gaussian per output element vs a
    // full chunked simulation of the same dot product.
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let (w, x) = operands(512, 2);
    let sim = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
    let mut group = c.benchmark_group("error_model_per_output");
    group.bench_function("per_vmac_sim", |b| b.iter(|| sim.dot(&w, &x)));
    group.bench_function("lumped_gaussian", |b| {
        let mut injector = GaussianInjector::new(3);
        let mut out = Tensor::scalar(0.0);
        b.iter(|| {
            let ideal: f64 = w
                .iter()
                .zip(&x)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            out.data_mut()[0] = ideal as f32;
            injector.inject(&mut out, &vmac, 512);
            out.data()[0]
        });
    });
    group.finish();
}

fn partition_analysis(c: &mut Criterion) {
    let base = Vmac::new(9, 9, 8, 14.0);
    c.bench_function("partition_design_sweep", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for (nw, nx) in [(1u32, 1u32), (2, 1), (2, 2), (4, 2), (4, 4), (8, 8)] {
                for slice_enob in [8.0f64, 10.0, 12.0, 14.0] {
                    if let Ok(p) = PartitionedVmac::new(base, nw, nx, slice_enob) {
                        if p.equivalent_enob(1024) >= 13.0 {
                            best = best.min(p.energy_per_mac_fj());
                        }
                    }
                }
            }
            best
        });
    });
}

criterion_group!(ablations, dot_modes, lumped_vs_per_vmac, partition_analysis);
criterion_main!(ablations);
