//! Kernel-level benches: the computational primitives every experiment is
//! built from (matmul, im2col convolution, batch norm, quantization,
//! error injection).

use ams_core::inject::GaussianInjector;
use ams_core::vmac::Vmac;
use ams_nn::functional::{conv2d_backward, conv2d_forward};
use ams_nn::{BatchNorm2d, Layer, Mode};
use ams_quant::{quantize_activations, WeightQuantizer};
use ams_tensor::{im2col, matmul, matmul_in, rng, ConvGeom, Density, ExecCtx, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn random(dims: &[usize], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, -1.0, 1.0, &mut r);
    t
}

fn matmul_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128, 256] {
        let a = random(&[n, n], 1);
        let b = random(&[n, n], 2);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    group.finish();
}

/// Dense vs zero-skipping inner loop at the same shape: the dense kernel
/// auto-vectorizes, the skipping kernel wins only on a mostly-zero lhs
/// (see the `SPARSE_GATE` density gate in `ams_tensor::matmul_in`).
fn matmul_density(c: &mut Criterion) {
    let n = 128usize;
    let mut group = c.benchmark_group("matmul_density");
    group.throughput(Throughput::Elements((n * n * n) as u64));
    let b = random(&[n, n], 2);
    for (label, keep_every) in [("dense", 1usize), ("three_quarters_zero", 4)] {
        let mut a = random(&[n, n], 1);
        if keep_every > 1 {
            for (i, v) in a.data_mut().iter_mut().enumerate() {
                if i % keep_every != 0 {
                    *v = 0.0;
                }
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |bench, _| {
            bench.iter(|| matmul(&a, &b));
        });
    }
    group.finish();
}

/// Serial vs worker-pool dispatch of the same product: results are
/// bit-identical; this measures the scoped-thread overhead and (on
/// multi-core hosts) the speedup.
fn matmul_parallel(c: &mut Criterion) {
    let n = 256usize;
    let a = random(&[n, n], 1);
    let b = random(&[n, n], 2);
    let mut group = c.benchmark_group("matmul_parallel_256");
    group.throughput(Throughput::Elements((n * n * n) as u64));
    for threads in [1usize, 2, 4] {
        let ctx = if threads == 1 {
            ExecCtx::serial()
        } else {
            ExecCtx::with_threads(threads)
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, _| {
                bench.iter(|| matmul_in(&ctx, &a, &b));
            },
        );
    }
    group.finish();
}

fn im2col_kernel(c: &mut Criterion) {
    let input = random(&[8, 16, 16, 16], 3);
    let geom = ConvGeom::new(8, 16, 16, 16, 3, 3, 1, 1);
    c.bench_function("im2col_8x16x16x16_k3", |b| b.iter(|| im2col(&input, &geom)));
}

fn conv_forward_backward(c: &mut Criterion) {
    let ctx = ExecCtx::serial();
    let input = random(&[8, 16, 16, 16], 4);
    let wmat = random(&[32, 16 * 9], 5);
    c.bench_function("conv_forward", |b| {
        b.iter(|| {
            conv2d_forward(
                &ctx,
                &input,
                &wmat,
                Density::Sample,
                None,
                3,
                3,
                1,
                1,
                false,
            )
        });
    });
    let (y, cache) = conv2d_forward(&ctx, &input, &wmat, Density::Sample, None, 3, 3, 1, 1, true);
    let cache = cache.expect("train-mode cache");
    c.bench_function("conv_backward", |b| {
        b.iter(|| conv2d_backward(&ctx, &cache, &y))
    });
}

fn batchnorm_kernel(c: &mut Criterion) {
    let ctx = ExecCtx::serial();
    let x = random(&[16, 32, 8, 8], 6);
    c.bench_function("batchnorm_train_forward", |b| {
        let mut bn = BatchNorm2d::new("bn", 32);
        b.iter(|| bn.forward(&ctx, &x, Mode::Train));
    });
}

fn quantize_kernels(c: &mut Criterion) {
    let w = random(&[32, 16, 3, 3], 7);
    let quantizer = WeightQuantizer::new(8);
    c.bench_function("dorefa_weight_quantize_4608", |b| {
        b.iter(|| quantizer.quantize(&w))
    });
    let a = random(&[8, 16, 16, 16], 8).map(f32::abs);
    c.bench_function("activation_quantize_32768", |b| {
        b.iter(|| quantize_activations(&a, 8))
    });
}

fn injection_kernel(c: &mut Criterion) {
    let vmac = Vmac::new(8, 8, 8, 8.0);
    let mut group = c.benchmark_group("inject");
    group.throughput(Throughput::Elements(8 * 16 * 16 * 16));
    group.bench_function("gaussian_32768", |b| {
        let mut injector = GaussianInjector::new(9);
        let mut t = Tensor::zeros(&[8, 16, 16, 16]);
        b.iter(|| injector.inject(&mut t, &vmac, 144));
    });
    group.finish();
}

criterion_group!(
    kernels,
    matmul_kernel,
    matmul_density,
    matmul_parallel,
    im2col_kernel,
    conv_forward_backward,
    batchnorm_kernel,
    quantize_kernels,
    injection_kernel
);
criterion_main!(kernels);
