//! Benches for the paper's figures.
//!
//! * **Fig. 4/5** — one noisy validation pass per ENOB (the unit of work
//!   behind each plotted point).
//! * **Fig. 6** — a probed validation pass (activation-mean collection).
//! * **Fig. 7** — survey synthesis + hull extraction.
//! * **Fig. 8** — full design-space grid evaluation.

use ams_bench::{bench_data, bench_net};
use ams_core::energy::{survey_lower_hull, synthesize_survey};
use ams_core::tradeoff::{AccuracyCurve, TradeoffGrid};
use ams_core::vmac::Vmac;
use ams_data::Batcher;
use ams_models::HardwareConfig;
use ams_nn::{accuracy, Layer, Mode};
use ams_quant::QuantConfig;
use ams_tensor::ExecCtx;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn noisy_eval_pass(net: &mut ams_models::ResNetMini, data: &ams_data::SynthImageNet) -> f32 {
    let mut acc = 0.0;
    let mut n = 0;
    for (images, labels) in Batcher::sequential(&data.val, 16) {
        let logits = net.forward(&ExecCtx::serial(), &images, Mode::Eval);
        acc += accuracy(&logits, &labels) * labels.len() as f32;
        n += labels.len();
    }
    acc / n as f32
}

fn fig4_eval_pass(c: &mut Criterion) {
    let data = bench_data();
    let mut group = c.benchmark_group("fig4_eval_pass");
    group.sample_size(10);
    for enob in [4.0f64, 6.0, 8.0] {
        let vmac = Vmac::new(8, 8, 8, enob);
        group.bench_with_input(BenchmarkId::from_parameter(enob), &vmac, |b, &v| {
            let mut net = bench_net(&HardwareConfig::ams_eval_only(QuantConfig::w8a8(), v));
            b.iter(|| noisy_eval_pass(&mut net, &data));
        });
    }
    group.finish();
}

fn fig5_eval_pass(c: &mut Criterion) {
    let data = bench_data();
    let vmac = Vmac::new(6, 6, 8, 5.0);
    c.bench_function("fig5_eval_pass_6b", |b| {
        let mut net = bench_net(&HardwareConfig::ams_eval_only(QuantConfig::w6a6(), vmac));
        b.iter(|| noisy_eval_pass(&mut net, &data));
    });
}

fn fig6_probe_pass(c: &mut Criterion) {
    let data = bench_data();
    c.bench_function("fig6_probed_pass", |b| {
        let mut net = bench_net(&HardwareConfig::quantized(QuantConfig::w8a8()));
        b.iter(|| {
            net.set_probes(true);
            let acc = noisy_eval_pass(&mut net, &data);
            let means = net.probe_means();
            (acc, means.len())
        });
    });
}

fn fig7_survey(c: &mut Criterion) {
    c.bench_function("fig7_survey_and_hull", |b| {
        b.iter(|| {
            let points = synthesize_survey(300, 7);
            survey_lower_hull(&points, 15)
        });
    });
}

fn fig8_grid(c: &mut Criterion) {
    let curve = AccuracyCurve::new(
        8,
        vec![
            (4.0, 0.4),
            (5.0, 0.15),
            (6.0, 0.05),
            (7.0, 0.01),
            (8.0, 0.002),
        ],
    )
    .expect("valid curve");
    let enobs: Vec<f64> = (0..32).map(|i| 4.0 + 0.25 * i as f64).collect();
    let n_mults: Vec<usize> = (1..=9).map(|i| 1usize << i).collect();
    c.bench_function("fig8_grid_eval", |b| {
        b.iter(|| {
            let grid = TradeoffGrid::evaluate(&curve, &enobs, &n_mults);
            (
                grid.min_energy_for_loss(0.004),
                grid.level_curve_deviation(),
            )
        });
    });
}

criterion_group!(
    figures,
    fig4_eval_pass,
    fig5_eval_pass,
    fig6_probe_pass,
    fig7_survey,
    fig8_grid
);
criterion_main!(figures);
