//! Classification loss and metrics.

use ams_tensor::Tensor;

/// Softmax cross-entropy over a `(N, K)` logits matrix.
///
/// Returns the mean loss over the batch and the gradient of that loss with
/// respect to the logits, `(softmax(z) − onehot(y)) / N`, ready to feed a
/// network's `backward`.
///
/// Uses the max-subtraction trick for numerical stability.
///
/// # Panics
///
/// Panics if `logits` is not 2-D, `labels.len() != N`, or any label is out
/// of range.
///
/// # Example
///
/// ```
/// use ams_nn::softmax_cross_entropy;
/// use ams_tensor::Tensor;
///
/// let logits = Tensor::from_vec(&[1, 3], vec![2.0, 0.0, 0.0]).unwrap();
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 0.5); // correct class dominates
/// assert_eq!(grad.dims(), &[1, 3]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.rank(),
        2,
        "softmax_cross_entropy: logits must be 2-D"
    );
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(
        labels.len(),
        n,
        "softmax_cross_entropy: {n} rows but {} labels",
        labels.len()
    );
    let mut grad = Tensor::zeros(&[n, k]);
    let gd = grad.data_mut();
    let ld = logits.data();
    let mut loss = 0.0f64;
    for r in 0..n {
        let label = labels[r];
        assert!(
            label < k,
            "softmax_cross_entropy: label {label} out of range for {k} classes"
        );
        let row = &ld[r * k..(r + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - m).exp();
        }
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[label] - m));
        let inv_n = 1.0 / n as f32;
        for j in 0..k {
            let p = (row[j] - m).exp() / denom;
            gd[r * k + j] = (p - if j == label { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Top-1 accuracy of a `(N, K)` logits matrix against integer labels.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or `labels.len()` differs from the batch
/// size.
///
/// # Example
///
/// ```
/// use ams_nn::accuracy;
/// use ams_tensor::Tensor;
///
/// let logits = Tensor::from_vec(&[2, 2], vec![3.0, 1.0, 0.0, 9.0]).unwrap();
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "accuracy: batch size mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 0.5, 3.0, 3.0, 3.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -1.0, 0.2, 2.0, 0.0, -0.5]).unwrap();
        let labels = [1usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "grad[{i}]: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn stability_with_large_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1000.0, -1000.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss >= 0.0);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }
}
