//! Functional cores shared between the plain layers here and the
//! quantized/AMS layers in `ams-models`.
//!
//! [`conv2d_forward`] / [`conv2d_backward`] and [`linear_forward`] /
//! [`linear_backward`] operate on explicit weight matrices, so a caller can
//! substitute a *quantized* weight for the stored full-precision one — the
//! straight-through-estimator trick: the backward pass computes gradients
//! with respect to the weight that was actually used, and the caller routes
//! them to the shadow full-precision parameter.

use ams_tensor::{
    col2im_in, im2col_in, mat_to_nchw_in, matmul_a_bt_in, matmul_at_b_in, matmul_hinted_in,
    matmul_i8_a_bt_in, matmul_i8_in, matmul_in, nchw_to_mat_in, quantize_symmetric_i8, ConvGeom,
    Density, ExecCtx, Tensor,
};

/// Cache produced by [`conv2d_forward`], consumed by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvCache {
    /// The im2col-lowered input, `(C_in·K·K, N·OH·OW)`.
    pub cols: Tensor,
    /// Geometry of the convolution.
    pub geom: ConvGeom,
    /// The weight matrix actually used in the forward pass,
    /// `(C_out, C_in·K·K)` (may be a quantized version of the stored
    /// parameter).
    pub weight_mat: Tensor,
}

/// Convolution forward pass via im2col.
///
/// `weight_mat` is `(C_out, C_in·K_h·K_w)`; `weight_density` is the
/// caller's knowledge of its zero fraction (quantized layers measure it
/// once at quantize time; ad-hoc callers pass [`Density::Sample`]);
/// `bias`, when present, is a length-`C_out` slice added per output
/// channel. Returns the `(N, C_out, OH, OW)` output and, when
/// `want_cache` is set, the cache for the backward pass.
///
/// All intermediates (and the output) are drawn from the context's
/// workspace; the lowered column matrix and product matrix are recycled
/// back into it, so steady-state eval forwards allocate nothing.
///
/// # Panics
///
/// Panics on any shape disagreement between `input`, `weight_mat` and the
/// geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    ctx: &ExecCtx,
    input: &Tensor,
    weight_mat: &Tensor,
    weight_density: Density,
    bias: Option<&[f32]>,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    want_cache: bool,
) -> (Tensor, Option<ConvCache>) {
    let (n, c_in, h, w) = input.dims4();
    let geom = ConvGeom::new(n, c_in, h, w, kh, kw, stride, pad);
    assert_eq!(
        weight_mat.rank(),
        2,
        "conv2d_forward: weight matrix must be 2-D"
    );
    let c_out = weight_mat.dims()[0];
    assert_eq!(
        weight_mat.dims()[1],
        geom.rows(),
        "conv2d_forward: weight inner dim {} != C_in*K*K = {}",
        weight_mat.dims()[1],
        geom.rows()
    );
    let ws = ctx.workspace();
    let cols = im2col_in(ctx, input, &geom);
    let mut ymat = matmul_hinted_in(ctx, weight_mat, &cols, weight_density);
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "conv2d_forward: bias length != C_out");
        let ncols = geom.cols();
        let yd = ymat.data_mut();
        for (co, &bv) in b.iter().enumerate() {
            for v in &mut yd[co * ncols..(co + 1) * ncols] {
                *v += bv;
            }
        }
    }
    let y = mat_to_nchw_in(ctx, &ymat, &geom, c_out);
    ws.recycle(ymat);
    let cache = if want_cache {
        Some(ConvCache {
            cols,
            geom,
            weight_mat: ws.clone_tensor(weight_mat),
        })
    } else {
        ws.recycle(cols);
        None
    };
    (y, cache)
}

/// Eval-only convolution forward on the packed integer fast path.
///
/// `w_codes` are symmetric-i8 weight codes in `(C_out, C_in·K_h·K_w)`
/// layout with dequantization scale `w_scale` (see
/// `ams_quant::Quantizer::quantize_weights_i8_in`); the im2col'd
/// activations are re-coded onto the same grid here, and the combined
/// scale is folded into the integer GEMM's epilogue — no f32 copy of the
/// weights is ever materialized. `w_sparse` routes the kernel's
/// zero-skipping dot (weights are the GEMM lhs).
///
/// There is no cache variant: the integer path is for inference, training
/// always runs the f32 kernels.
///
/// # Panics
///
/// Panics on any shape disagreement between `input`, `w_codes` and the
/// geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_i8(
    ctx: &ExecCtx,
    input: &Tensor,
    w_codes: &[i8],
    w_scale: f32,
    w_sparse: bool,
    bias: Option<&[f32]>,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    c_out: usize,
) -> Tensor {
    let (n, c_in, h, w) = input.dims4();
    let geom = ConvGeom::new(n, c_in, h, w, kh, kw, stride, pad);
    assert_eq!(
        w_codes.len(),
        c_out * geom.rows(),
        "conv2d_forward_i8: weight codes length {} != C_out*C_in*K*K = {}",
        w_codes.len(),
        c_out * geom.rows()
    );
    let ws = ctx.workspace();
    let cols = im2col_in(ctx, input, &geom);
    let (acodes, ascale) = quantize_symmetric_i8(cols.data());
    ws.recycle(cols);
    let mut ymat = matmul_i8_in(
        ctx,
        c_out,
        geom.rows(),
        geom.cols(),
        w_codes,
        &acodes,
        w_scale * ascale,
        w_sparse,
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "conv2d_forward_i8: bias length != C_out");
        let ncols = geom.cols();
        let yd = ymat.data_mut();
        for (co, &bv) in b.iter().enumerate() {
            for v in &mut yd[co * ncols..(co + 1) * ncols] {
                *v += bv;
            }
        }
    }
    let y = mat_to_nchw_in(ctx, &ymat, &geom, c_out);
    ws.recycle(ymat);
    y
}

/// Gradients of a convolution computed by [`conv2d_forward`].
///
/// Returns `(d_input, d_weight_mat, d_bias)` where `d_weight_mat` has the
/// weight-matrix shape `(C_out, C_in·K·K)` and `d_bias` is per output
/// channel.
///
/// # Panics
///
/// Panics if `grad_output` disagrees with the cached geometry.
pub fn conv2d_backward(
    ctx: &ExecCtx,
    cache: &ConvCache,
    grad_output: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    let ws = ctx.workspace();
    let dymat = nchw_to_mat_in(ctx, grad_output, &cache.geom);
    let dweight = matmul_a_bt_in(ctx, &dymat, &cache.cols);
    let dcols = matmul_at_b_in(ctx, &cache.weight_mat, &dymat);
    let dinput = col2im_in(ctx, &dcols, &cache.geom);
    ws.recycle(dcols);
    let ncols = cache.geom.cols();
    let c_out = dymat.dims()[0];
    let mut dbias = vec![0.0f32; c_out];
    for (co, db) in dbias.iter_mut().enumerate() {
        *db = dymat.data()[co * ncols..(co + 1) * ncols].iter().sum();
    }
    ws.recycle(dymat);
    (dinput, dweight, dbias)
}

/// Cache produced by [`linear_forward`], consumed by [`linear_backward`].
#[derive(Debug, Clone)]
pub struct LinearCache {
    /// The input batch `(N, in_features)`.
    pub input: Tensor,
    /// The weight actually used, `(out_features, in_features)`.
    pub weight: Tensor,
}

/// Fully-connected forward pass: `y = x · Wᵀ + b`.
///
/// `input` is `(N, in_features)`, `weight` is `(out, in)`. Returns the
/// `(N, out)` output and, when `want_cache` is set, the backward cache.
///
/// # Panics
///
/// Panics on shape disagreement.
pub fn linear_forward(
    ctx: &ExecCtx,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    want_cache: bool,
) -> (Tensor, Option<LinearCache>) {
    assert_eq!(input.rank(), 2, "linear_forward: input must be 2-D");
    assert_eq!(weight.rank(), 2, "linear_forward: weight must be 2-D");
    assert_eq!(
        input.dims()[1],
        weight.dims()[1],
        "linear_forward: in_features disagree ({} vs {})",
        input.dims()[1],
        weight.dims()[1]
    );
    let mut y = matmul_a_bt_in(ctx, input, weight);
    if let Some(b) = bias {
        let out = weight.dims()[0];
        assert_eq!(b.len(), out, "linear_forward: bias length != out_features");
        let n = input.dims()[0];
        let yd = y.data_mut();
        for r in 0..n {
            for (j, &bv) in b.iter().enumerate() {
                yd[r * out + j] += bv;
            }
        }
    }
    let cache = want_cache.then(|| LinearCache {
        input: ctx.workspace().clone_tensor(input),
        weight: ctx.workspace().clone_tensor(weight),
    });
    (y, cache)
}

/// Eval-only fully-connected forward on the packed integer fast path:
/// `y = (s · x̂·Ŵᵀ) + b` without materializing `Wᵀ` or an f32 copy of the
/// weights.
///
/// `w_codes` are symmetric-i8 weight codes in `(out_features,
/// in_features)` row-major layout with dequantization scale `w_scale`;
/// the input batch is re-coded onto the same grid here and the bias (the
/// paper keeps it digital/full-precision) is fused into the integer
/// GEMM's epilogue.
///
/// # Panics
///
/// Panics on shape disagreement.
pub fn linear_forward_i8(
    ctx: &ExecCtx,
    input: &Tensor,
    w_codes: &[i8],
    w_scale: f32,
    bias: Option<&[f32]>,
    out_features: usize,
) -> Tensor {
    assert_eq!(input.rank(), 2, "linear_forward_i8: input must be 2-D");
    let (n, in_features) = (input.dims()[0], input.dims()[1]);
    assert_eq!(
        w_codes.len(),
        out_features * in_features,
        "linear_forward_i8: weight codes length {} != out*in = {}",
        w_codes.len(),
        out_features * in_features
    );
    let (acodes, ascale) = quantize_symmetric_i8(input.data());
    matmul_i8_a_bt_in(
        ctx,
        n,
        in_features,
        out_features,
        &acodes,
        w_codes,
        ascale * w_scale,
        bias,
        false,
    )
}

/// Gradients of a fully-connected layer.
///
/// Returns `(d_input, d_weight, d_bias)`.
///
/// # Panics
///
/// Panics if `grad_output` disagrees with the cached shapes.
pub fn linear_backward(
    ctx: &ExecCtx,
    cache: &LinearCache,
    grad_output: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    // y = x Wᵀ  ⇒  dx = dy W ; dW = dyᵀ x ; db = column sums of dy.
    let dinput = matmul_in(ctx, grad_output, &cache.weight);
    let dweight = matmul_at_b_in(ctx, grad_output, &cache.input);
    let (n, out) = (grad_output.dims()[0], grad_output.dims()[1]);
    let mut dbias = vec![0.0f32; out];
    for r in 0..n {
        for (j, db) in dbias.iter_mut().enumerate() {
            *db += grad_output.data()[r * out + j];
        }
    }
    (dinput, dweight, dbias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::rng;

    static CTX: ExecCtx = ExecCtx::serial();

    #[test]
    fn linear_forward_matches_manual() {
        let x = Tensor::from_vec(&[1, 2], vec![2.0, 3.0]).unwrap();
        let w = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.5, 0.5]).unwrap();
        let (y, _) = linear_forward(&CTX, &x, &w, Some(&[0.1, -0.1]), false);
        assert_eq!(y.dims(), &[1, 2]);
        assert!((y.data()[0] - 2.1).abs() < 1e-6);
        assert!((y.data()[1] - 2.4).abs() < 1e-6);
    }

    #[test]
    fn linear_gradcheck() {
        let mut r = rng::seeded(3);
        let mut x = Tensor::zeros(&[3, 4]);
        rng::fill_normal(&mut x, 0.0, 1.0, &mut r);
        let mut w = Tensor::zeros(&[2, 4]);
        rng::fill_normal(&mut w, 0.0, 1.0, &mut r);
        let b = vec![0.3f32, -0.2];

        // Loss = sum(y²)/2 so dL/dy = y.
        let loss = |w_: &Tensor, x_: &Tensor| -> f32 {
            let (y, _) = linear_forward(&CTX, x_, w_, Some(&b), false);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let (y, cache) = linear_forward(&CTX, &x, &w, Some(&b), true);
        let (dx, dw, _db) = linear_backward(&CTX, cache.as_ref().unwrap(), &y);

        let eps = 1e-3;
        for i in [0usize, 3, 7] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&wp, &x) - loss(&wm, &x)) / (2.0 * eps);
            let ana = dw.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dw[{i}]: {num} vs {ana}"
            );
        }
        for i in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&w, &xp) - loss(&w, &xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dx[{i}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn conv_gradcheck() {
        let mut r = rng::seeded(4);
        let mut x = Tensor::zeros(&[2, 2, 5, 5]);
        rng::fill_normal(&mut x, 0.0, 1.0, &mut r);
        let mut wmat = Tensor::zeros(&[3, 2 * 3 * 3]);
        rng::fill_normal(&mut wmat, 0.0, 0.5, &mut r);
        let bias = vec![0.1f32, -0.1, 0.05];

        let loss = |w_: &Tensor, x_: &Tensor| -> f32 {
            let (y, _) = conv2d_forward(
                &CTX,
                x_,
                w_,
                Density::Sample,
                Some(&bias),
                3,
                3,
                2,
                1,
                false,
            );
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let (y, cache) = conv2d_forward(
            &CTX,
            &x,
            &wmat,
            Density::Sample,
            Some(&bias),
            3,
            3,
            2,
            1,
            true,
        );
        let (dx, dw, db) = conv2d_backward(&CTX, cache.as_ref().unwrap(), &y);

        let eps = 1e-2;
        for i in [0usize, 10, 40] {
            let mut wp = wmat.clone();
            wp.data_mut()[i] += eps;
            let mut wm = wmat.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&wp, &x) - loss(&wm, &x)) / (2.0 * eps);
            let ana = dw.data()[i];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "dw[{i}]: {num} vs {ana}"
            );
        }
        for i in [0usize, 33, 77] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&wmat, &xp) - loss(&wmat, &xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "dx[{i}]: {num} vs {ana}"
            );
        }
        // Bias gradient equals the sum of dy per channel; sanity only.
        assert_eq!(db.len(), 3);
    }

    /// The statistical acceptance bound for one i8-path output element
    /// against the f32 path (see `matmul_i8` module docs): re-coding each
    /// operand onto the 127-level grid perturbs every one of the `k`
    /// products by at most `max|a|·s_w/2 + max|w|·s_a/2 + s_a·s_w/4`.
    fn i8_bound(k: usize, max_a: f32, max_w: f32) -> f32 {
        let (sa, sw) = (max_a / 127.0, max_w / 127.0);
        k as f32 * (max_a * sw * 0.5 + max_w * sa * 0.5 + sa * sw * 0.25) + 1e-4
    }

    #[test]
    fn conv_i8_matches_f32_within_the_quantization_bound() {
        let mut r = rng::seeded(9);
        let mut x = Tensor::zeros(&[2, 3, 8, 8]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let mut wmat = Tensor::zeros(&[4, 27]);
        rng::fill_uniform(&mut wmat, -1.0, 1.0, &mut r);
        let bias = [0.2f32, -0.1, 0.0, 0.4];
        let (want, _) = conv2d_forward(
            &CTX,
            &x,
            &wmat,
            Density::Sample,
            Some(&bias),
            3,
            3,
            1,
            1,
            false,
        );
        let (wc, wscale) = quantize_symmetric_i8(wmat.data());
        let got = conv2d_forward_i8(&CTX, &x, &wc, wscale, false, Some(&bias), 3, 3, 1, 1, 4);
        assert_eq!(got.dims(), want.dims());
        let bound = i8_bound(27, x.max_abs(), wmat.max_abs());
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g - w).abs() <= bound,
                "elem {i}: i8 {g} vs f32 {w}, bound {bound}"
            );
        }
    }

    #[test]
    fn linear_i8_matches_f32_within_the_quantization_bound() {
        let mut r = rng::seeded(10);
        let mut x = Tensor::zeros(&[3, 16]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let mut w = Tensor::zeros(&[5, 16]);
        rng::fill_uniform(&mut w, -1.0, 1.0, &mut r);
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let (want, _) = linear_forward(&CTX, &x, &w, Some(&bias), false);
        let (wc, wscale) = quantize_symmetric_i8(w.data());
        let got = linear_forward_i8(&CTX, &x, &wc, wscale, Some(&bias), 5);
        assert_eq!(got.dims(), want.dims());
        let bound = i8_bound(16, x.max_abs(), w.max_abs());
        for (g, v) in got.data().iter().zip(want.data()) {
            assert!((g - v).abs() <= bound, "i8 {g} vs f32 {v}, bound {bound}");
        }
    }

    #[test]
    fn conv_bias_shifts_every_output() {
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        let w = Tensor::zeros(&[2, 9]);
        let (y, _) = conv2d_forward(
            &CTX,
            &x,
            &w,
            Density::Sample,
            Some(&[1.5, -2.0]),
            3,
            3,
            1,
            1,
            false,
        );
        let (_, c, oh, ow) = y.dims4();
        assert_eq!((c, oh, ow), (2, 3, 3));
        assert!(y.data()[..9].iter().all(|&v| v == 1.5));
        assert!(y.data()[9..].iter().all(|&v| v == -2.0));
    }
}
