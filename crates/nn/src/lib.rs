//! Minimal neural-network training framework for the `ams-dnn` workspace.
//!
//! This crate is the Rust stand-in for the PyTorch/Distiller substrate used
//! by Rekhi et al. (DAC 2019). It provides explicit forward/backward layers
//! (no autograd tape), which makes the paper's two surgical requirements
//! trivial to express:
//!
//! 1. *inject AMS error in the forward pass only, leaving the backward pass
//!    untouched* (paper §2), and
//! 2. *straight-through estimators* for quantizers (gradients pass through
//!    the non-differentiable rounding).
//!
//! # Contents
//!
//! * [`Layer`] — the forward/backward contract; [`Mode`] selects
//!   training vs evaluation behaviour (batch-norm statistics, caching).
//! * Layers: [`Conv2d`], [`Linear`], [`BatchNorm2d`], [`Relu`],
//!   [`ClippedRelu`] (DoReFa's ReLU that clips at 1), [`MaxPool2d`],
//!   [`GlobalAvgPool`], [`Flatten`], [`Sequential`].
//! * [`softmax_cross_entropy`] — loss and logits gradient in one pass.
//! * [`Sgd`] — SGD with momentum and weight decay, honouring
//!   [`Param::frozen`] (the paper's Table 2 selective-freezing study).
//! * [`Checkpoint`] — named-tensor state save/load (JSON), used to move
//!   weights between the FP32 network and its quantized/AMS twin.
//! * [`functional`] — the reusable convolution/linear cores shared with the
//!   quantized layers in `ams-models`.
//!
//! # Example
//!
//! ```
//! use ams_nn::{Layer, Linear, Mode, Sgd, softmax_cross_entropy};
//! use ams_tensor::{rng, ExecCtx, Tensor};
//!
//! let mut rng = rng::seeded(0);
//! let mut layer = Linear::new("fc", 4, 3, &mut rng);
//! let x = Tensor::ones(&[2, 4]);
//! let logits = layer.forward(&ExecCtx::serial(), &x, Mode::Train);
//! let (loss, dlogits) = softmax_cross_entropy(&logits, &[0, 2]);
//! assert!(loss > 0.0);
//! layer.backward(&ExecCtx::serial(), &dlogits);
//! Sgd::new(0.1).step(&mut layer);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activations;
mod batchnorm;
mod checkpoint;
mod container;
mod conv;
pub mod functional;
mod layer;
mod linear;
mod loss;
mod optim;
mod param;
mod pool;

pub use activations::{ClippedRelu, Relu};
pub use ams_tensor::{ExecCtx, Parallelism};
pub use batchnorm::BatchNorm2d;
pub use checkpoint::{Checkpoint, LoadError};
pub use container::{Flatten, Sequential};
pub use conv::Conv2d;
pub use layer::{Layer, Mode};
pub use linear::Linear;
pub use loss::{accuracy, softmax_cross_entropy};
pub use optim::Sgd;
pub use param::Param;
pub use pool::{GlobalAvgPool, MaxPool2d};
