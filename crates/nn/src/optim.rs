//! Stochastic gradient descent.

use crate::layer::Layer;

/// SGD with classical momentum and decoupled weight-decay flagging.
///
/// The update per parameter `w` with gradient `g` is
///
/// ```text
/// v ← μ·v + g + λ·w      (λ applied only when the parameter opts in)
/// w ← w − lr·v
/// ```
///
/// Parameters with [`crate::Param::frozen`] set are skipped entirely — the
/// mechanism behind the paper's Table 2 selective-freezing study. Gradients
/// of *all* parameters (frozen included) are zeroed after the step.
///
/// # Example
///
/// ```
/// use ams_nn::{Layer, Linear, Mode, Sgd, softmax_cross_entropy};
/// use ams_tensor::{rng, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut net = Linear::new("fc", 4, 2, &mut r);
/// let opt = Sgd::with_momentum(0.05, 0.9);
/// let x = Tensor::ones(&[8, 4]);
/// let labels = vec![0usize; 8];
/// let mut last = f32::INFINITY;
/// for _ in 0..20 {
///     let logits = net.forward(&ExecCtx::serial(), &x, Mode::Train);
///     let (loss, grad) = softmax_cross_entropy(&logits, &labels);
///     net.backward(&ExecCtx::serial(), &grad);
///     opt.step(&mut net);
///     last = loss;
/// }
/// assert!(last < 0.1, "training did not converge: {last}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient `μ` (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient `λ` applied to parameters with
    /// [`crate::Param::decay`] set.
    pub weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate (no momentum, no decay).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
        }
    }

    /// Returns a copy with the given weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update to every unfrozen parameter of `model`, then
    /// zeroes all gradients.
    pub fn step(&self, model: &mut dyn Layer) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        model.for_each_param(&mut |p| {
            if !p.frozen {
                let decay = if p.decay { wd } else { 0.0 };
                // v ← μ·v + g + λ·w ; w ← w − lr·v
                let n = p.value.len();
                for i in 0..n {
                    let g = p.grad.data()[i] + decay * p.value.data()[i];
                    let v = mu * p.velocity.data()[i] + g;
                    p.velocity.data_mut()[i] = v;
                    p.value.data_mut()[i] -= lr * v;
                }
            }
            p.zero_grad();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Mode};
    use ams_tensor::{rng, ExecCtx, Tensor};

    #[test]
    fn frozen_params_do_not_move() {
        let mut r = rng::seeded(0);
        let mut fc = Linear::new("fc", 3, 2, &mut r);
        fc.for_each_param(&mut |p| p.frozen = true);
        let before: Vec<f32> = {
            let mut v = Vec::new();
            fc.for_each_param(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        let x = Tensor::ones(&[2, 3]);
        let y = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        fc.backward(&ExecCtx::serial(), &Tensor::ones(y.dims()));
        Sgd::new(1.0).step(&mut fc);
        let after: Vec<f32> = {
            let mut v = Vec::new();
            fc.for_each_param(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        assert_eq!(before, after);
        // Gradients are still cleared.
        fc.for_each_param(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut r = rng::seeded(1);
        let mut fc = Linear::new("fc", 2, 2, &mut r);
        let norm_before: f32 = fc.weight().value.data().iter().map(|v| v * v).sum();
        // No backward: gradient is zero, decay still pulls weights in.
        Sgd::new(0.1).weight_decay(0.5).step(&mut fc);
        let norm_after: f32 = fc.weight().value.data().iter().map(|v| v * v).sum();
        assert!(norm_after < norm_before);
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        // Single scalar parameter, constant gradient of 1.
        use crate::Param;
        struct One {
            p: Param,
        }
        impl crate::Layer for One {
            fn forward(&mut self, _ctx: &ExecCtx, x: &Tensor, _m: Mode) -> Tensor {
                x.clone()
            }
            fn backward(&mut self, _ctx: &ExecCtx, g: &Tensor) -> Tensor {
                self.p.grad.data_mut()[0] += 1.0;
                g.clone()
            }
            fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
                f(&mut self.p)
            }
            fn name(&self) -> &str {
                "one"
            }
        }
        let mut m = One {
            p: Param::new("w", Tensor::zeros(&[1])),
        };
        let opt = Sgd::with_momentum(1.0, 0.9);
        let x = Tensor::zeros(&[1]);
        let mut steps = Vec::new();
        let mut prev = 0.0f32;
        for _ in 0..4 {
            m.forward(&ExecCtx::serial(), &x, Mode::Train);
            m.backward(&ExecCtx::serial(), &x);
            opt.step(&mut m);
            let w = m.p.value.data()[0];
            steps.push(prev - w);
            prev = w;
        }
        // Velocity builds: 1, 1.9, 2.71, ...
        assert!((steps[0] - 1.0).abs() < 1e-6);
        assert!((steps[1] - 1.9).abs() < 1e-6);
        assert!(steps[2] > steps[1]);
    }
}
