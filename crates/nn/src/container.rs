//! Layer containers.

use ams_tensor::{ExecCtx, Tensor};

use crate::layer::{Layer, Mode};
use crate::param::Param;

/// Reshapes `(N, C, H, W)` activations to `(N, C·H·W)`.
///
/// # Example
///
/// ```
/// use ams_nn::{Flatten, Layer, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let mut flat = Flatten::new("flatten");
/// let y = flat.forward(&ExecCtx::serial(), &Tensor::zeros(&[2, 3, 4, 4]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, 48]);
/// ```
#[derive(Debug)]
pub struct Flatten {
    name: String,
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten {
            name: name.into(),
            input_dims: None,
        }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, _ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        if mode.is_train() {
            self.input_dims = Some(input.dims().to_vec());
        }
        input.reshaped(&[n, rest])
    }

    fn backward(&mut self, _ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("Flatten::backward without a Train-mode forward");
        grad_output.reshaped(dims)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// An ordered chain of layers applied front to back.
///
/// `Sequential` is itself a [`Layer`], so chains nest.
///
/// # Example
///
/// ```
/// use ams_nn::{ClippedRelu, Layer, Linear, Mode, Sequential};
/// use ams_tensor::{rng, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut net = Sequential::new("mlp");
/// net.push(Linear::new("fc1", 8, 8, &mut r));
/// net.push(ClippedRelu::new("act"));
/// net.push(Linear::new("fc2", 8, 2, &mut r));
/// let y = net.forward(&ExecCtx::serial(), &Tensor::zeros(&[1, 8]), Mode::Eval);
/// assert_eq!(y.dims(), &[1, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field(
                "layers",
                &self
                    .layers
                    .iter()
                    .map(|l| l.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer to the end of the chain.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer to the end of the chain.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the contained layers.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Layer> {
        self.layers.iter().map(|b| b.as_ref())
    }

    /// Mutable access to the contained layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }
}

impl Layer for Sequential {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(ctx, &x, mode);
        }
        x
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(ctx, &g);
        }
        g
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.for_each_state(f);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use ams_tensor::rng;

    #[test]
    fn sequential_forward_backward_round_trip() {
        let mut r = rng::seeded(0);
        let mut net = Sequential::new("net");
        net.push(Linear::new("fc1", 4, 6, &mut r));
        net.push(Relu::new("relu"));
        net.push(Linear::new("fc2", 6, 2, &mut r));
        assert_eq!(net.len(), 3);

        let x = Tensor::ones(&[3, 4]);
        let y = net.forward(&ExecCtx::serial(), &x, Mode::Train);
        assert_eq!(y.dims(), &[3, 2]);
        let dx = net.backward(&ExecCtx::serial(), &Tensor::ones(&[3, 2]));
        assert_eq!(dx.dims(), &[3, 4]);

        let mut count = 0;
        net.for_each_param(&mut |_| count += 1);
        assert_eq!(count, 4); // two weights + two biases
    }

    #[test]
    fn flatten_round_trip() {
        let mut flat = Flatten::new("f");
        let x = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|i| i as f32).collect()).unwrap();
        let y = flat.forward(&ExecCtx::serial(), &x, Mode::Train);
        assert_eq!(y.dims(), &[2, 4]);
        let back = flat.backward(&ExecCtx::serial(), &y);
        assert_eq!(back, x);
    }
}
