//! Named-tensor checkpoints.
//!
//! The paper's workflow moves weights between networks: a pretrained FP32
//! ResNet is "modified to reflect the intended underlying hardware" and then
//! retrained (paper §3). Here that is a [`Checkpoint`] saved from the FP32
//! model and loaded into its quantized/AMS twin — both expose the same
//! stable state names through [`crate::Layer::for_each_state`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::Path;

use ams_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// A snapshot of a model's persistent state (parameters and buffers),
/// keyed by stable hierarchical names.
///
/// # Example
///
/// ```
/// use ams_nn::{Checkpoint, Layer, Linear, Mode};
/// use ams_tensor::{rng, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut a = Linear::new("fc", 4, 2, &mut r);
/// let ckpt = Checkpoint::from_layer(&mut a);
///
/// let mut b = Linear::new("fc", 4, 2, &mut r); // different init
/// ckpt.load_into(&mut b).unwrap();
/// let x = Tensor::ones(&[1, 4]);
/// assert_eq!(a.forward(&ExecCtx::serial(), &x, Mode::Eval).data(), b.forward(&ExecCtx::serial(), &x, Mode::Eval).data());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Checkpoint {
    entries: BTreeMap<String, Tensor>,
}

/// Error returned when a checkpoint does not match the target model.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The model has a state tensor the checkpoint lacks.
    Missing {
        /// Name of the missing entry.
        name: String,
    },
    /// A checkpoint entry exists but its shape disagrees with the model.
    ShapeMismatch {
        /// Name of the mismatched entry.
        name: String,
        /// Shape expected by the model.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        got: Vec<usize>,
    },
    /// The checkpoint file could not be read or parsed.
    Io(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Missing { name } => write!(f, "checkpoint is missing entry {name:?}"),
            LoadError::ShapeMismatch {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "checkpoint entry {name:?} has shape {got:?}, model expects {expected:?}"
                )
            }
            LoadError::Io(msg) => write!(f, "checkpoint i/o failure: {msg}"),
        }
    }
}

impl Error for LoadError {}

impl Checkpoint {
    /// Creates an empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots all persistent state of `layer`.
    pub fn from_layer(layer: &mut dyn Layer) -> Self {
        let mut entries = BTreeMap::new();
        layer.for_each_state(&mut |name, t| {
            entries.insert(name.to_string(), t.clone());
        });
        Checkpoint { entries }
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Iterates over `(name, tensor)` entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Copies matching entries into `layer`.
    ///
    /// Every state tensor of the model must be present in the checkpoint
    /// with the same shape; extra checkpoint entries are ignored (so a
    /// larger model's snapshot can seed a subset model).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Missing`] or [`LoadError::ShapeMismatch`]; in
    /// both cases the model may be partially updated.
    pub fn load_into(&self, layer: &mut dyn Layer) -> Result<(), LoadError> {
        let mut result = Ok(());
        layer.for_each_state(&mut |name, t| {
            if result.is_err() {
                return;
            }
            match self.entries.get(name) {
                None => {
                    result = Err(LoadError::Missing {
                        name: name.to_string(),
                    })
                }
                Some(src) if src.dims() != t.dims() => {
                    result = Err(LoadError::ShapeMismatch {
                        name: name.to_string(),
                        expected: t.dims().to_vec(),
                        got: src.dims().to_vec(),
                    })
                }
                Some(src) => *t = src.clone(),
            }
        });
        result
    }

    /// Snapshots every parameter's momentum buffer, keyed by parameter
    /// name.
    ///
    /// Momentum is optimizer state, not model state, so it is absent from
    /// [`Checkpoint::from_layer`]; a resumable training loop must persist
    /// it separately or the first post-resume update diverges from the
    /// uninterrupted run (DESIGN.md §9).
    pub fn velocities_from(layer: &mut dyn Layer) -> Self {
        let mut entries = BTreeMap::new();
        layer.for_each_param(&mut |p| {
            entries.insert(p.name().to_string(), p.velocity.clone());
        });
        Checkpoint { entries }
    }

    /// Restores momentum buffers captured by [`Checkpoint::velocities_from`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Missing`] or [`LoadError::ShapeMismatch`] (the
    /// model may be partially updated on error), mirroring
    /// [`Checkpoint::load_into`].
    pub fn load_velocities_into(&self, layer: &mut dyn Layer) -> Result<(), LoadError> {
        let mut result = Ok(());
        layer.for_each_param(&mut |p| {
            if result.is_err() {
                return;
            }
            match self.entries.get(p.name()) {
                None => {
                    result = Err(LoadError::Missing {
                        name: p.name().to_string(),
                    })
                }
                Some(src) if src.dims() != p.velocity.dims() => {
                    result = Err(LoadError::ShapeMismatch {
                        name: p.name().to_string(),
                        expected: p.velocity.dims().to_vec(),
                        got: src.dims().to_vec(),
                    })
                }
                Some(src) => p.velocity = src.clone(),
            }
        });
        result
    }

    /// Serializes to a JSON file.
    ///
    /// The write is crash-safe (tmp file + fsync + rename via
    /// [`ams_obs::fsio::atomic_write`]): a process killed mid-save leaves
    /// either the previous checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Io`] on filesystem or serialization failure.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), LoadError> {
        let json = serde_json::to_string(self).map_err(|e| LoadError::Io(e.to_string()))?;
        ams_obs::fsio::atomic_write(path, json.as_bytes()).map_err(|e| LoadError::Io(e.to_string()))
    }

    /// Deserializes from a JSON file written by [`Checkpoint::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::Io`] on filesystem or parse failure.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let text = std::fs::read_to_string(path).map_err(|e| LoadError::Io(e.to_string()))?;
        serde_json::from_str(&text).map_err(|e| LoadError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Mode, Sequential};
    use ams_tensor::{rng, ExecCtx};

    #[test]
    fn round_trip_through_json() {
        let mut r = rng::seeded(0);
        let mut net = Sequential::new("net");
        net.push(crate::Linear::new("fc", 3, 2, &mut r));
        net.push(BatchNorm2dAdapter::new());
        let ckpt = Checkpoint::from_layer(&mut net);
        let dir = std::env::temp_dir().join("ams_nn_ckpt_test.json");
        ckpt.save_json(&dir).unwrap();
        let loaded = Checkpoint::load_json(&dir).unwrap();
        assert_eq!(ckpt.len(), loaded.len());
        for ((n1, t1), (n2, t2)) in ckpt.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2);
        }
        let _ = std::fs::remove_file(dir);
    }

    // Minimal adapter so the Sequential above contains BN state too.
    struct BatchNorm2dAdapter {
        bn: BatchNorm2d,
    }
    impl BatchNorm2dAdapter {
        fn new() -> Self {
            BatchNorm2dAdapter {
                bn: BatchNorm2d::new("bn", 2),
            }
        }
    }
    impl Layer for BatchNorm2dAdapter {
        fn forward(&mut self, _ctx: &ExecCtx, x: &Tensor, _m: Mode) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, _ctx: &ExecCtx, g: &Tensor) -> Tensor {
            g.clone()
        }
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut crate::Param)) {
            self.bn.for_each_param(f)
        }
        fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
            self.bn.for_each_state(f)
        }
        fn name(&self) -> &str {
            "bn_adapter"
        }
    }

    #[test]
    fn velocities_round_trip() {
        let mut r = rng::seeded(4);
        let mut a = crate::Linear::new("fc", 3, 2, &mut r);
        // Give the momentum buffers non-trivial content via one real step.
        let x = Tensor::ones(&[2, 3]);
        let y = a.forward(&ExecCtx::serial(), &x, Mode::Train);
        a.backward(&ExecCtx::serial(), &Tensor::ones(y.dims()));
        crate::Sgd::with_momentum(0.1, 0.9).step(&mut a);
        let snap = Checkpoint::velocities_from(&mut a);
        assert!(!snap.is_empty());

        let mut b = crate::Linear::new("fc", 3, 2, &mut r);
        snap.load_velocities_into(&mut b).unwrap();
        let mut pairs = Vec::new();
        b.for_each_param(&mut |p| pairs.push((p.name().to_string(), p.velocity.clone())));
        for (name, v) in pairs {
            assert_eq!(snap.get(&name).unwrap(), &v);
        }

        // A model with differently named params is rejected.
        let mut c = crate::Linear::new("other", 3, 2, &mut r);
        assert!(matches!(
            snap.load_velocities_into(&mut c),
            Err(LoadError::Missing { .. })
        ));
    }

    #[test]
    fn missing_entry_is_reported() {
        let mut r = rng::seeded(0);
        let mut a = crate::Linear::new("a", 2, 2, &mut r);
        let ckpt = Checkpoint::from_layer(&mut a);
        let mut b = crate::Linear::new("b", 2, 2, &mut r);
        let err = ckpt.load_into(&mut b).unwrap_err();
        assert!(matches!(err, LoadError::Missing { .. }));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut r = rng::seeded(0);
        let mut a = crate::Linear::new("fc", 2, 2, &mut r);
        let ckpt = Checkpoint::from_layer(&mut a);
        let mut b = crate::Linear::new("fc", 3, 2, &mut r);
        let err = ckpt.load_into(&mut b).unwrap_err();
        assert!(matches!(err, LoadError::ShapeMismatch { .. }));
    }
}
