//! Spatial pooling layers.

use ams_tensor::{ExecCtx, Tensor};

use crate::layer::{Layer, Mode};

/// Max pooling with a square window and equal stride (`k × k`, stride `k`).
///
/// # Example
///
/// ```
/// use ams_nn::{Layer, MaxPool2d, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let mut pool = MaxPool2d::new("pool", 2);
/// let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
/// let y = pool.forward(&ExecCtx::serial(), &x, Mode::Eval);
/// assert_eq!(y.data(), &[5.0]);
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    name: String,
    k: usize,
    // Flat input index of the argmax for every output element.
    argmax: Option<Vec<usize>>,
    input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(name: impl Into<String>, k: usize) -> Self {
        assert!(k > 0, "MaxPool2d: zero window");
        MaxPool2d {
            name: name.into(),
            k,
            argmax: None,
            input_dims: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, _ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = input.dims4();
        let k = self.k;
        assert!(
            h >= k && w >= k,
            "MaxPool2d: window {k} larger than input {h}x{w}"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = Vec::with_capacity(n * c * oh * ow);
        let src = input.data();
        let dst = out.data_mut();
        let mut oi = 0;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for ohi in 0..oh {
                    for owi in 0..ow {
                        let mut best_idx = base + (ohi * k) * w + owi * k;
                        let mut best = src[best_idx];
                        for di in 0..k {
                            for dj in 0..k {
                                let idx = base + (ohi * k + di) * w + (owi * k + dj);
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[oi] = best;
                        argmax.push(best_idx);
                        oi += 1;
                    }
                }
            }
        }
        if mode.is_train() {
            self.argmax = Some(argmax);
            self.input_dims = Some(input.dims().to_vec());
        }
        out
    }

    fn backward(&mut self, _ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let argmax = self
            .argmax
            .as_ref()
            .expect("MaxPool2d::backward without a Train-mode forward");
        let dims = self
            .input_dims
            .as_ref()
            .expect("MaxPool2d::backward without a Train-mode forward");
        assert_eq!(
            argmax.len(),
            grad_output.len(),
            "MaxPool2d::backward: shape changed since forward"
        );
        let mut dx = Tensor::zeros(dims);
        let dxd = dx.data_mut();
        for (&idx, &g) in argmax.iter().zip(grad_output.data()) {
            dxd[idx] += g;
        }
        dx
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Global average pooling: `(N, C, H, W) → (N, C)`.
///
/// The standard ResNet head between the last convolution stage and the
/// fully-connected classifier.
///
/// # Example
///
/// ```
/// use ams_nn::{GlobalAvgPool, Layer, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let mut gap = GlobalAvgPool::new("gap");
/// let x = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]).unwrap();
/// assert_eq!(gap.forward(&ExecCtx::serial(), &x, Mode::Eval).data(), &[2.0, 15.0]);
/// ```
#[derive(Debug)]
pub struct GlobalAvgPool {
    name: String,
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pooling layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool {
            name: name.into(),
            input_dims: None,
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, _ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let (n, c, h, w) = input.dims4();
        let plane = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        let src = input.data();
        let dst = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                dst[ni * c + ci] = src[base..base + h * w].iter().sum::<f32>() / plane;
            }
        }
        if mode.is_train() {
            self.input_dims = Some(input.dims().to_vec());
        }
        out
    }

    fn backward(&mut self, _ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("GlobalAvgPool::backward without a Train-mode forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(
            grad_output.dims(),
            &[n, c],
            "GlobalAvgPool::backward: shape changed since forward"
        );
        let plane = (h * w) as f32;
        let mut dx = Tensor::zeros(dims);
        let dxd = dx.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.data()[ni * c + ci] / plane;
                let base = (ni * c + ci) * h * w;
                for v in &mut dxd[base..base + h * w] {
                    *v = g;
                }
            }
        }
        dx
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new("p", 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
        pool.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = pool.backward(
            &ExecCtx::serial(),
            &Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]).unwrap(),
        );
        assert_eq!(dx.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_shape() {
        let mut pool = MaxPool2d::new("p", 2);
        let y = pool.forward(
            &ExecCtx::serial(),
            &Tensor::zeros(&[2, 3, 8, 8]),
            Mode::Eval,
        );
        assert_eq!(y.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn gap_backward_spreads_uniformly() {
        let mut gap = GlobalAvgPool::new("g");
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        gap.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = gap.backward(
            &ExecCtx::serial(),
            &Tensor::from_vec(&[1, 1], vec![4.0]).unwrap(),
        );
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
