//! Batch normalization over NCHW tensors.
//!
//! Batch norm is the star of the paper's Section 3: retraining with AMS
//! error in the loop works *because* the batch-norm layers learn to push
//! activation means away from zero (paper Fig. 6, Table 2). The layer
//! therefore supports per-parameter freezing and exposes its running
//! statistics as checkpointable state.

use ams_tensor::{ExecCtx, Tensor};

use crate::layer::{Layer, Mode};
use crate::param::Param;

/// Per-channel batch normalization for `(N, C, H, W)` activations.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates with momentum; evaluation mode uses the running estimates.
///
/// # Example
///
/// ```
/// use ams_nn::{BatchNorm2d, Layer, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let mut bn = BatchNorm2d::new("bn", 4);
/// let x = Tensor::ones(&[2, 4, 3, 3]);
/// let y = bn.forward(&ExecCtx::serial(), &x, Mode::Train);
/// // A constant input normalizes to (near) zero.
/// assert!(y.max_abs() < 1e-3);
/// ```
#[derive(Debug)]
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    // Train-mode cache.
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    mode: Mode,
}

impl BatchNorm2d {
    /// Default epsilon added to the variance (matches PyTorch).
    pub const EPS: f32 = 1e-5;
    /// Default running-statistics momentum (matches PyTorch).
    pub const MOMENTUM: f32 = 0.1;

    /// Creates a batch-norm layer with `gamma = 1`, `beta = 0`, zero running
    /// mean and unit running variance.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        assert!(channels > 0, "BatchNorm2d: zero channels");
        let name = name.into();
        BatchNorm2d {
            gamma: Param::new_no_decay(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: Param::new_no_decay(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            name,
            channels,
            eps: Self::EPS,
            momentum: Self::MOMENTUM,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The running mean estimate (evaluation-mode statistics).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The running variance estimate (evaluation-mode statistics).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// The learned per-channel scale γ.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma.value
    }

    /// The learned per-channel shift β.
    pub fn beta(&self) -> &Tensor {
        &self.beta.value
    }

    /// The epsilon added to the variance before the square root.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Freezes or unfreezes both affine parameters (Table 2's "BN" rows).
    pub fn set_frozen(&mut self, frozen: bool) {
        self.gamma.frozen = frozen;
        self.beta.frozen = frozen;
    }

    fn normalize(&self, input: &Tensor, means: &[f32], inv_std: &[f32]) -> Tensor {
        let (n, c, h, w) = input.dims4();
        let plane = h * w;
        let mut x_hat = input.clone();
        let xd = x_hat.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let (m, is) = (means[ci], inv_std[ci]);
                for v in &mut xd[base..base + plane] {
                    *v = (*v - m) * is;
                }
            }
        }
        x_hat
    }

    fn affine(&self, x_hat: &Tensor) -> Tensor {
        let (n, c, h, w) = x_hat.dims4();
        let plane = h * w;
        let mut y = x_hat.clone();
        let yd = y.data_mut();
        let (g, b) = (self.gamma.value.data(), self.beta.value.data());
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let (gc, bc) = (g[ci], b[ci]);
                for v in &mut yd[base..base + plane] {
                    *v = gc * *v + bc;
                }
            }
        }
        y
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, _ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let _t = _ctx
            .metrics()
            .scope(|| format!("layer.{}.forward", self.name));
        let (_, c, _, _) = input.dims4();
        assert_eq!(
            c, self.channels,
            "BatchNorm2d: expected {} channels, got {c}",
            self.channels
        );
        let (means, vars) = if mode.is_train() {
            let m = input.channel_means();
            let v = input.channel_vars(&m);
            // Update running statistics.
            for (rm, mi) in self.running_mean.data_mut().iter_mut().zip(&m) {
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mi;
            }
            for (rv, vi) in self.running_var.data_mut().iter_mut().zip(&v) {
                *rv = (1.0 - self.momentum) * *rv + self.momentum * vi;
            }
            (m, v)
        } else {
            (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            )
        };
        let inv_std: Vec<f32> = vars.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let x_hat = self.normalize(input, &means, &inv_std);
        let y = self.affine(&x_hat);
        if mode.is_train() {
            self.cache = Some(BnCache {
                x_hat,
                inv_std,
                mode,
            });
        } else {
            self.cache = None;
        }
        y
    }

    fn backward(&mut self, _ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let _t = _ctx
            .metrics()
            .scope(|| format!("layer.{}.backward", self.name));
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward without a Train-mode forward");
        debug_assert!(cache.mode.is_train());
        let (n, c, h, w) = grad_output.dims4();
        let plane = h * w;
        let m = (n * plane) as f32;

        // Per-channel reductions: Σdy and Σ(dy ⊙ x̂).
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        let dyd = grad_output.data();
        let xh = cache.x_hat.data();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let mut s = 0.0f32;
                let mut sx = 0.0f32;
                for i in base..base + plane {
                    s += dyd[i];
                    sx += dyd[i] * xh[i];
                }
                sum_dy[ci] += s;
                sum_dy_xhat[ci] += sx;
            }
        }

        // Parameter gradients.
        for ci in 0..c {
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat[ci];
            self.beta.grad.data_mut()[ci] += sum_dy[ci];
        }

        // Input gradient:
        // dx = γ·inv_std/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dx = grad_output.zeros_like();
        let dxd = dx.data_mut();
        let g = self.gamma.value.data();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let scale = g[ci] * cache.inv_std[ci] / m;
                let (sd, sdx) = (sum_dy[ci], sum_dy_xhat[ci]);
                for i in base..base + plane {
                    dxd[i] = scale * (m * dyd[i] - sd - xh[i] * sdx);
                }
            }
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        let gname = self.gamma.name().to_string();
        f(&gname, &mut self.gamma.value);
        let bname = self.beta.name().to_string();
        f(&bname, &mut self.beta.value);
        let rm = format!("{}.running_mean", self.name);
        f(&rm, &mut self.running_mean);
        let rv = format!("{}.running_var", self.name);
        f(&rv, &mut self.running_var);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::rng;

    #[test]
    fn train_forward_normalizes() {
        let mut r = rng::seeded(0);
        let mut x = Tensor::zeros(&[8, 3, 4, 4]);
        rng::fill_normal(&mut x, 5.0, 2.0, &mut r);
        let mut bn = BatchNorm2d::new("bn", 3);
        let y = bn.forward(&ExecCtx::serial(), &x, Mode::Train);
        let means = y.channel_means();
        let vars = y.channel_vars(&means);
        for ci in 0..3 {
            assert!(means[ci].abs() < 1e-4, "channel {ci} mean {}", means[ci]);
            assert!(
                (vars[ci] - 1.0).abs() < 1e-2,
                "channel {ci} var {}",
                vars[ci]
            );
        }
    }

    #[test]
    fn running_stats_approach_batch_stats() {
        let mut r = rng::seeded(1);
        let mut bn = BatchNorm2d::new("bn", 2);
        for _ in 0..200 {
            let mut x = Tensor::zeros(&[16, 2, 2, 2]);
            rng::fill_normal(&mut x, 3.0, 1.0, &mut r);
            bn.forward(&ExecCtx::serial(), &x, Mode::Train);
        }
        for ci in 0..2 {
            assert!((bn.running_mean().data()[ci] - 3.0).abs() < 0.2);
            assert!((bn.running_var().data()[ci] - 1.0).abs() < 0.2);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 1);
        // With default stats (mean 0, var 1), eval is ~identity.
        let x = Tensor::from_vec(&[1, 1, 1, 2], vec![0.5, -0.5]).unwrap();
        let y = bn.forward(&ExecCtx::serial(), &x, Mode::Eval);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradcheck_small() {
        let mut r = rng::seeded(2);
        let mut x = Tensor::zeros(&[4, 2, 3, 3]);
        rng::fill_normal(&mut x, 1.0, 2.0, &mut r);

        let loss_of = |x_: &Tensor| -> f32 {
            let mut bn = BatchNorm2d::new("bn", 2);
            // Non-trivial affine so gamma/beta gradients matter.
            bn.gamma.value.data_mut().copy_from_slice(&[1.5, 0.7]);
            bn.beta.value.data_mut().copy_from_slice(&[0.2, -0.3]);
            let y = bn.forward(&ExecCtx::serial(), x_, Mode::Train);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };

        let mut bn = BatchNorm2d::new("bn", 2);
        bn.gamma.value.data_mut().copy_from_slice(&[1.5, 0.7]);
        bn.beta.value.data_mut().copy_from_slice(&[0.2, -0.3]);
        let y = bn.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = bn.backward(&ExecCtx::serial(), &y); // dL/dy = y for L = ½‖y‖²

        let eps = 1e-2;
        for i in [0usize, 17, 50] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss_of(&xp) - loss_of(&xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "dx[{i}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn freezing_marks_both_affine_params() {
        let mut bn = BatchNorm2d::new("bn", 4);
        bn.set_frozen(true);
        let mut frozen = Vec::new();
        bn.for_each_param(&mut |p| frozen.push(p.frozen));
        assert_eq!(frozen, vec![true, true]);
    }

    #[test]
    fn state_includes_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 2);
        let mut names = Vec::new();
        bn.for_each_state(&mut |n, _| names.push(n.to_string()));
        assert_eq!(
            names,
            vec!["bn.gamma", "bn.beta", "bn.running_mean", "bn.running_var"]
        );
    }
}
