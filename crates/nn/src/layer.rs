//! The layer contract.

use ams_tensor::{ExecCtx, Tensor};

use crate::param::Param;

/// Whether a forward pass is part of training or evaluation.
///
/// Training mode caches activations for the backward pass and uses batch
/// statistics in [`crate::BatchNorm2d`]; evaluation mode uses running
/// statistics and skips caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: cache for backward, batch-norm uses batch statistics.
    Train,
    /// Evaluation: no caching, batch-norm uses running statistics.
    #[default]
    Eval,
}

impl Mode {
    /// Returns `true` in [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A network layer with explicit forward and backward passes.
///
/// Layers are stateful: `forward` in [`Mode::Train`] caches whatever the
/// subsequent `backward` call needs, and `backward` *accumulates* parameter
/// gradients (callers zero them via the optimizer step or
/// [`Layer::zero_grads`]).
///
/// The contract mirrors classic layer-based frameworks and is deliberately
/// minimal so the quantized/AMS layers in `ams-models` can implement it
/// directly.
///
/// Both passes take an [`ExecCtx`]: layers never own threads (or thread
/// configuration) themselves — the caller decides, once, how parallel the
/// whole stack runs, and results are bit-identical for any thread count.
/// Use `&ExecCtx::serial()` when no context is at hand (tests, examples).
pub trait Layer {
    /// Computes the layer output for `input`.
    ///
    /// In [`Mode::Train`], caches intermediate state for [`Layer::backward`].
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad_output` (gradient of the loss with respect to this
    /// layer's output) to the input, accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding
    /// [`Mode::Train`] forward pass.
    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor;

    /// Visits every trainable parameter (mutably), in a stable order.
    ///
    /// The default implementation visits nothing (activation layers,
    /// pooling, ...).
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Visits every persistent state tensor by name — parameters *and*
    /// non-trainable buffers such as batch-norm running statistics — for
    /// checkpoint save/load.
    ///
    /// The default implementation visits the parameters only.
    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.for_each_param(&mut |p| {
            let name = p.name().to_string();
            f(&name, &mut p.value);
        });
    }

    /// A short, stable, human-readable layer name.
    fn name(&self) -> &str;

    /// Zeroes the gradients of all parameters.
    fn zero_grads(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_eval() {
        assert_eq!(Mode::default(), Mode::Eval);
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }
}
