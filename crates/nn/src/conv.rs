//! Plain (full-precision) 2-D convolution layer.

use ams_tensor::{rng, Density, ExecCtx, Tensor};
use rand::Rng;

use crate::functional::{conv2d_backward, conv2d_forward, ConvCache};
use crate::layer::{Layer, Mode};
use crate::param::Param;

/// A 2-D convolution over NCHW tensors with square kernels.
///
/// Weights are Kaiming-initialized. Bias is optional — ResNet convolutions
/// that feed a batch-norm layer conventionally omit it.
///
/// # Example
///
/// ```
/// use ams_nn::{Conv2d, Layer, Mode};
/// use ams_tensor::{rng, Density, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(1);
/// let mut conv = Conv2d::new("stem", 3, 8, 3, 1, 1, true, &mut r);
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&ExecCtx::serial(), &x, Mode::Eval);
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Option<Param>,
    cache: Option<ConvCache>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if any of `c_in`, `c_out`, `k` or `stride` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        assert!(
            c_in > 0 && c_out > 0 && k > 0 && stride > 0,
            "Conv2d: zero-sized configuration"
        );
        let name = name.into();
        let mut w = Tensor::zeros(&[c_out, c_in, k, k]);
        rng::fill_kaiming(&mut w, c_in * k * k, rng);
        let weight = Param::new(format!("{name}.weight"), w);
        let bias =
            bias.then(|| Param::new_no_decay(format!("{name}.bias"), Tensor::zeros(&[c_out])));
        Conv2d {
            name,
            c_in,
            c_out,
            k,
            stride,
            pad,
            weight,
            bias,
            cache: None,
        }
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// `N_tot` for this layer: multiplications per output activation
    /// (`C_in · K · K`), the quantity the AMS error model (paper Eq. 2)
    /// needs.
    pub fn n_tot(&self) -> usize {
        self.c_in * self.k * self.k
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.forward", self.name));
        let wmat = self
            .weight
            .value
            .reshaped(&[self.c_out, self.c_in * self.k * self.k]);
        let bias = self.bias.as_ref().map(|b| b.value.data());
        let (y, cache) = conv2d_forward(
            ctx,
            input,
            &wmat,
            Density::Sample,
            bias,
            self.k,
            self.k,
            self.stride,
            self.pad,
            mode.is_train(),
        );
        self.cache = cache;
        y
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.backward", self.name));
        let cache = self
            .cache
            .as_ref()
            .expect("Conv2d::backward without a Train-mode forward");
        let (dx, dw, db) = conv2d_backward(ctx, cache, grad_output);
        let dw = dw
            .reshape(&[self.c_out, self.c_in, self.k, self.k])
            .expect("weight grad shape");
        self.weight.grad.add_assign(&dw);
        if let Some(b) = &mut self.bias {
            for (g, d) in b.grad.data_mut().iter_mut().zip(&db) {
                *g += d;
            }
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_with_stride() {
        let mut r = rng::seeded(0);
        let mut conv = Conv2d::new("c", 3, 6, 3, 2, 1, false, &mut r);
        let x = Tensor::zeros(&[4, 3, 8, 8]);
        let y = conv.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_eq!(y.dims(), &[4, 6, 4, 4]);
        assert_eq!(conv.n_tot(), 27);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut r = rng::seeded(1);
        let mut conv = Conv2d::new("c", 1, 2, 3, 1, 1, true, &mut r);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dy = Tensor::ones(y.dims());
        let dx = conv.backward(&ExecCtx::serial(), &dy);
        assert_eq!(dx.dims(), x.dims());
        let g1 = conv.weight().grad.clone();
        // Backward again: gradients accumulate (doubling).
        conv.forward(&ExecCtx::serial(), &x, Mode::Train);
        conv.backward(&ExecCtx::serial(), &dy);
        let g2 = conv.weight().grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "without a Train-mode forward")]
    fn backward_requires_train_forward() {
        let mut r = rng::seeded(2);
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, false, &mut r);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let y = conv.forward(&ExecCtx::serial(), &x, Mode::Eval);
        conv.backward(&ExecCtx::serial(), &y);
    }

    #[test]
    fn zero_grads_clears() {
        let mut r = rng::seeded(3);
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, false, &mut r);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = conv.forward(&ExecCtx::serial(), &x, Mode::Train);
        conv.backward(&ExecCtx::serial(), &y.zeros_like().map(|_| 1.0));
        conv.zero_grads();
        assert_eq!(conv.weight().grad.max_abs(), 0.0);
    }
}
