//! Plain (full-precision) fully-connected layer.

use ams_tensor::{rng, ExecCtx, Tensor};
use rand::Rng;

use crate::functional::{linear_backward, linear_forward, LinearCache};
use crate::layer::{Layer, Mode};
use crate::param::Param;

/// A fully-connected layer `y = x · Wᵀ + b` over `(N, in_features)` inputs.
///
/// # Example
///
/// ```
/// use ams_nn::{Layer, Linear, Mode};
/// use ams_tensor::{rng, ExecCtx, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut fc = Linear::new("fc", 16, 10, &mut r);
/// let y = fc.forward(&ExecCtx::serial(), &Tensor::zeros(&[4, 16]), Mode::Eval);
/// assert_eq!(y.dims(), &[4, 10]);
/// ```
#[derive(Debug)]
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cache: Option<LinearCache>,
}

impl Linear {
    /// Creates a fully-connected layer with Xavier-uniform weights and zero
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new<R: Rng + ?Sized>(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "Linear: zero-sized configuration"
        );
        let name = name.into();
        let mut w = Tensor::zeros(&[out_features, in_features]);
        rng::fill_xavier(&mut w, in_features, out_features, rng);
        let weight = Param::new(format!("{name}.weight"), w);
        let bias = Param::new_no_decay(format!("{name}.bias"), Tensor::zeros(&[out_features]));
        Linear {
            name,
            in_features,
            out_features,
            weight,
            bias,
            cache: None,
        }
    }

    /// Input feature count (`N_tot` for the AMS error model on this layer).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Linear {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.forward", self.name));
        let (y, cache) = linear_forward(
            ctx,
            input,
            &self.weight.value,
            Some(self.bias.value.data()),
            mode.is_train(),
        );
        self.cache = cache;
        y
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let _t = ctx
            .metrics()
            .scope(|| format!("layer.{}.backward", self.name));
        let cache = self
            .cache
            .as_ref()
            .expect("Linear::backward without a Train-mode forward");
        let (dx, dw, db) = linear_backward(ctx, cache, grad_output);
        self.weight.grad.add_assign(&dw);
        for (g, d) in self.bias.grad.data_mut().iter_mut().zip(&db) {
            *g += d;
        }
        dx
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_params() {
        let mut r = rng::seeded(0);
        let mut fc = Linear::new("fc", 8, 3, &mut r);
        let y = fc.forward(&ExecCtx::serial(), &Tensor::ones(&[2, 8]), Mode::Train);
        assert_eq!(y.dims(), &[2, 3]);
        let mut names = Vec::new();
        fc.for_each_param(&mut |p| names.push(p.name().to_string()));
        assert_eq!(names, vec!["fc.weight", "fc.bias"]);
    }

    #[test]
    fn backward_shapes() {
        let mut r = rng::seeded(1);
        let mut fc = Linear::new("fc", 5, 2, &mut r);
        let x = Tensor::ones(&[3, 5]);
        let y = fc.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = fc.backward(&ExecCtx::serial(), &Tensor::ones(y.dims()));
        assert_eq!(dx.dims(), &[3, 5]);
        assert_eq!(fc.weight().grad.dims(), &[2, 5]);
    }
}
