//! Elementwise activation layers.

use ams_tensor::{ExecCtx, Tensor};

use crate::layer::{Layer, Mode};

/// Rectified linear unit, `y = max(x, 0)`.
///
/// # Example
///
/// ```
/// use ams_nn::{Layer, Mode, Relu};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let mut relu = Relu::new("relu");
/// let x = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]).unwrap();
/// assert_eq!(relu.forward(&ExecCtx::serial(), &x, Mode::Eval).data(), &[0.0, 0.0, 2.0]);
/// ```
#[derive(Debug)]
pub struct Relu {
    name: String,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Relu {
            name: name.into(),
            mask: None,
        }
    }
}

impl Layer for Relu {
    fn forward(&mut self, _ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        }
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, _ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward without a Train-mode forward");
        assert_eq!(
            mask.len(),
            grad_output.len(),
            "Relu::backward: shape changed since forward"
        );
        let data = grad_output
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_output.dims(), data).expect("mask preserves length")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// DoReFa's bounded activation, `y = clamp(x, 0, 1)`.
///
/// The paper (§2) notes that DoReFa "replaces every activation function with
/// a ReLU that clips at 1", which bounds the next layer's activations so
/// they can be quantized to `B_X` bits without a scale search. The gradient
/// passes only where `0 < x < 1`.
///
/// # Example
///
/// ```
/// use ams_nn::{ClippedRelu, Layer, Mode};
/// use ams_tensor::{ExecCtx, Tensor};
///
/// let mut act = ClippedRelu::new("relu1");
/// let x = Tensor::from_vec(&[3], vec![-0.5, 0.5, 1.5]).unwrap();
/// assert_eq!(act.forward(&ExecCtx::serial(), &x, Mode::Eval).data(), &[0.0, 0.5, 1.0]);
/// ```
#[derive(Debug)]
pub struct ClippedRelu {
    name: String,
    mask: Option<Vec<bool>>,
}

impl ClippedRelu {
    /// Creates a clipped-ReLU (ReLU-1) layer.
    pub fn new(name: impl Into<String>) -> Self {
        ClippedRelu {
            name: name.into(),
            mask: None,
        }
    }
}

impl Layer for ClippedRelu {
    fn forward(&mut self, _ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        if mode.is_train() {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0 && x < 1.0).collect());
        }
        input.map(|x| x.clamp(0.0, 1.0))
    }

    fn backward(&mut self, _ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("ClippedRelu::backward without a Train-mode forward");
        assert_eq!(
            mask.len(),
            grad_output.len(),
            "ClippedRelu::backward: shape changed since forward"
        );
        let data = grad_output
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_output.dims(), data).expect("mask preserves length")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_gradient_masks_negatives() {
        let mut relu = Relu::new("r");
        let x = Tensor::from_vec(&[4], vec![-2.0, -0.1, 0.1, 3.0]).unwrap();
        relu.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = relu.backward(&ExecCtx::serial(), &Tensor::ones(&[4]));
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn clipped_relu_gradient_masks_both_sides() {
        let mut act = ClippedRelu::new("r1");
        let x = Tensor::from_vec(&[5], vec![-0.5, 0.25, 0.75, 1.0, 2.0]).unwrap();
        act.forward(&ExecCtx::serial(), &x, Mode::Train);
        let dx = act.backward(&ExecCtx::serial(), &Tensor::ones(&[5]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn clipped_output_is_bounded() {
        let mut act = ClippedRelu::new("r1");
        let x = Tensor::from_vec(&[3], vec![-10.0, 0.3, 42.0]).unwrap();
        let y = act.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert!(y.min() >= 0.0 && y.max() <= 1.0);
    }
}
