//! Trainable parameters.

use ams_tensor::Tensor;

/// A trainable parameter: value, accumulated gradient, optimizer state and
/// metadata.
///
/// Layers own their `Param`s and expose them to the optimizer through
/// [`crate::Layer::for_each_param`]. Freezing a parameter (paper Table 2)
/// keeps its gradient flowing to earlier layers but skips its update.
///
/// # Example
///
/// ```
/// use ams_nn::Param;
/// use ams_tensor::Tensor;
///
/// let mut p = Param::new("conv1.weight", Tensor::zeros(&[4, 3, 3, 3]));
/// assert_eq!(p.name(), "conv1.weight");
/// p.frozen = true; // excluded from optimizer updates
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    name: String,
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the owning layer's backward pass.
    pub grad: Tensor,
    /// Momentum buffer owned by the optimizer.
    pub velocity: Tensor,
    /// When `true`, the optimizer skips this parameter (Table 2 freezing).
    pub frozen: bool,
    /// Whether weight decay applies (convention: not for biases and
    /// batch-norm affine parameters).
    pub decay: bool,
}

impl Param {
    /// Creates a parameter with zeroed gradient and momentum, decay enabled.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = value.zeros_like();
        let velocity = value.zeros_like();
        Param {
            name: name.into(),
            value,
            grad,
            velocity,
            frozen: false,
            decay: true,
        }
    }

    /// Creates a parameter with weight decay disabled (biases, batch-norm
    /// gamma/beta).
    pub fn new_no_decay(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.decay = false;
        p
    }

    /// The parameter's stable, hierarchical name (e.g.
    /// `"stage1.block0.conv1.weight"`), used for checkpointing and freezing
    /// policies.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Zeroes the accumulated gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_matching_buffers() {
        let p = Param::new("w", Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.velocity.dims(), &[2, 3]);
        assert!(!p.frozen);
        assert!(p.decay);
    }

    #[test]
    fn no_decay_constructor() {
        let p = Param::new_no_decay("b", Tensor::zeros(&[8]));
        assert!(!p.decay);
    }
}
