//! Randomized finite-difference gradient checks for every layer type.
//!
//! The straight-through estimators in downstream crates only make sense if
//! the *exact* layers here have correct gradients; these tests pin them
//! against central differences on random configurations.

use ams_nn::{
    BatchNorm2d, ClippedRelu, Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2d, Mode, Relu,
    Sequential,
};
use ams_tensor::{rng, ExecCtx, Tensor};

/// ½‖y‖² loss: dL/dy = y, so one forward gives the backward seed.
fn loss_and_seed(layer: &mut dyn Layer, x: &Tensor) -> (f32, Tensor) {
    let y = layer.forward(&ExecCtx::serial(), x, Mode::Train);
    (0.5 * y.data().iter().map(|v| v * v).sum::<f32>(), y)
}

fn loss_only(layer: &mut dyn Layer, x: &Tensor) -> f32 {
    let y = layer.forward(&ExecCtx::serial(), x, Mode::Train);
    0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
}

/// Central-difference check of dL/dx on a sample of coordinates.
///
/// `fresh` must build an identical layer every call (weights included),
/// since layers mutate caches during forward.
fn check_input_gradient(
    mut fresh: impl FnMut() -> Box<dyn Layer>,
    x: &Tensor,
    eps: f32,
    tol: f32,
    skip_small: f32,
) {
    let mut layer = fresh();
    let (_, y) = loss_and_seed(layer.as_mut(), x);
    let dx = layer.backward(&ExecCtx::serial(), &y);
    let stride = (x.len() / 7).max(1);
    let mut checked = 0;
    for i in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lp = loss_only(fresh().as_mut(), &xp);
        let lm = loss_only(fresh().as_mut(), &xm);
        let l0 = loss_only(fresh().as_mut(), x);
        let num = (lp - lm) / (2.0 * eps);
        let ana = dx.data()[i];
        if num.abs() < skip_small && ana.abs() < skip_small {
            continue; // non-smooth kink (ReLU boundary, pooling tie)
        }
        // A kink inside [x−ε, x+ε] makes the central difference
        // meaningless. Through batch norm a single-coordinate perturbation
        // shifts every activation in the batch, so any ReLU corner or
        // pooling argmax switch anywhere can be crossed — detect it by the
        // two one-sided differences disagreeing beyond curvature effects
        // (for smooth f they differ by O(ε·f″), far below `tol` here).
        let fwd = (lp - l0) / eps;
        let bwd = (l0 - lm) / eps;
        if (fwd - bwd).abs() > tol * (1.0 + num.abs().max(ana.abs())) {
            continue;
        }
        assert!(
            (num - ana).abs() < tol * (1.0 + ana.abs()),
            "coordinate {i}: numeric {num} vs analytic {ana}"
        );
        checked += 1;
    }
    assert!(checked > 0, "no coordinates were checkable");
}

fn random_input(dims: &[usize], seed: u64, lo: f32, hi: f32) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, lo, hi, &mut r);
    t
}

#[test]
fn conv2d_input_gradient() {
    let x = random_input(&[2, 3, 6, 6], 1, -1.0, 1.0);
    check_input_gradient(
        || {
            let mut r = rng::seeded(2);
            Box::new(Conv2d::new("c", 3, 4, 3, 1, 1, true, &mut r))
        },
        &x,
        1e-2,
        0.08,
        0.0,
    );
}

#[test]
fn conv2d_strided_input_gradient() {
    let x = random_input(&[1, 2, 7, 7], 3, -1.0, 1.0);
    check_input_gradient(
        || {
            let mut r = rng::seeded(4);
            Box::new(Conv2d::new("c", 2, 3, 3, 2, 1, false, &mut r))
        },
        &x,
        1e-2,
        0.08,
        0.0,
    );
}

#[test]
fn linear_input_gradient() {
    let x = random_input(&[3, 8], 5, -1.0, 1.0);
    check_input_gradient(
        || {
            let mut r = rng::seeded(6);
            Box::new(Linear::new("fc", 8, 5, &mut r))
        },
        &x,
        1e-3,
        0.05,
        0.0,
    );
}

#[test]
fn batchnorm_input_gradient() {
    // ½‖y‖² is *invariant* under batch norm (Σx̂² is pinned by the
    // normalization), so use an elementwise-weighted loss
    // L = ½·Σ wᵢ·yᵢ² with fixed random weights to break the symmetry.
    let x = random_input(&[4, 3, 3, 3], 7, -2.0, 2.0);
    let w = random_input(&[4, 3, 3, 3], 77, 0.2, 2.0);
    let loss_of = |x_: &Tensor| -> f32 {
        let mut bn = BatchNorm2d::new("bn", 3);
        let y = bn.forward(&ExecCtx::serial(), x_, Mode::Train);
        0.5 * y
            .data()
            .iter()
            .zip(w.data())
            .map(|(v, wi)| wi * v * v)
            .sum::<f32>()
    };
    let mut bn = BatchNorm2d::new("bn", 3);
    let y = bn.forward(&ExecCtx::serial(), &x, Mode::Train);
    let seed = y.mul(&w); // dL/dy = w ⊙ y
    let dx = bn.backward(&ExecCtx::serial(), &seed);
    let eps = 1e-2;
    let mut checked = 0;
    for i in (0..x.len()).step_by(13) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let num = (loss_of(&xp) - loss_of(&xm)) / (2.0 * eps);
        let ana = dx.data()[i];
        assert!(
            (num - ana).abs() < 0.1 * (1.0 + ana.abs()),
            "coordinate {i}: numeric {num} vs analytic {ana}"
        );
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn relu_chain_input_gradient() {
    let x = random_input(&[2, 2, 4, 4], 8, -1.0, 2.0);
    check_input_gradient(
        || {
            let mut net = Sequential::new("net");
            net.push(Relu::new("r"));
            net.push(ClippedRelu::new("c"));
            Box::new(net)
        },
        &x,
        1e-3,
        0.05,
        1e-2, // skip kink coordinates
    );
}

#[test]
fn pooling_input_gradients() {
    let x = random_input(&[2, 2, 4, 4], 9, -1.0, 1.0);
    check_input_gradient(|| Box::new(MaxPool2d::new("p", 2)), &x, 1e-3, 0.05, 1e-2);
    check_input_gradient(|| Box::new(GlobalAvgPool::new("g")), &x, 1e-3, 0.05, 0.0);
}

#[test]
fn deep_chain_gradient() {
    // conv → bn → relu1 → pool: exercise composition through caches.
    let x = random_input(&[2, 2, 6, 6], 10, -1.0, 1.0);
    check_input_gradient(
        || {
            let mut r = rng::seeded(11);
            let mut net = Sequential::new("net");
            net.push(Conv2d::new("c", 2, 3, 3, 1, 1, false, &mut r));
            net.push(BatchNorm2d::new("bn", 3));
            net.push(ClippedRelu::new("a"));
            net.push(MaxPool2d::new("p", 2));
            Box::new(net)
        },
        &x,
        1e-2,
        0.15,
        5e-3,
    );
}

#[test]
fn parameter_gradients_via_sgd_descend_loss() {
    // A full training sanity: repeated steps on a fixed batch must reduce
    // the ½‖y − target‖² loss for a conv+bn+fc stack.
    let mut r = rng::seeded(12);
    let mut net = Sequential::new("net");
    net.push(Conv2d::new("c", 1, 2, 3, 1, 1, true, &mut r));
    net.push(ams_nn::Flatten::new("f"));
    net.push(Linear::new("fc", 2 * 16, 4, &mut r));
    let x = random_input(&[4, 1, 4, 4], 13, -1.0, 1.0);
    let labels = [0usize, 1, 2, 3];
    let opt = ams_nn::Sgd::with_momentum(0.05, 0.9);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..30 {
        let logits = net.forward(&ExecCtx::serial(), &x, Mode::Train);
        let (loss, grad) = ams_nn::softmax_cross_entropy(&logits, &labels);
        net.backward(&ExecCtx::serial(), &grad);
        opt.step(&mut net);
        first.get_or_insert(loss);
        last = loss;
    }
    assert!(
        last < first.expect("ran") * 0.5,
        "loss should halve: {first:?} -> {last}"
    );
}
