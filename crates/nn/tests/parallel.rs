//! Parallel ≡ serial determinism of the layer cores: the [`ExecCtx`]
//! contract promises bit-identical outputs for any thread count, so these
//! tests compare with `assert_eq!` — no tolerances.

use ams_nn::functional::{conv2d_backward, conv2d_forward, linear_backward, linear_forward};
use ams_tensor::{rng, Density, ExecCtx, Parallelism, Tensor};
use proptest::prelude::*;

fn random(dims: &[usize], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, -1.0, 1.0, &mut r);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward and backward convolution are bit-identical across thread
    /// counts for arbitrary geometries.
    #[test]
    fn conv_cores_bit_identical(
        n in 1usize..3,
        c_in in 1usize..4,
        c_out in 1usize..5,
        hw in 4usize..8,
        k in 1usize..4,
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        prop_assume!(hw >= k);
        let x = random(&[n, c_in, hw, hw], seed);
        let wmat = random(&[c_out, c_in * k * k], seed + 1);
        let bias = random(&[c_out], seed + 2);
        let serial = ExecCtx::serial();
        let par = ExecCtx::new(Parallelism { threads, min_work: 0 });

        let (y_s, cache_s) = conv2d_forward(&serial, &x, &wmat, Density::Sample, Some(bias.data()), k, k, 1, k / 2, true);
        let (y_p, cache_p) = conv2d_forward(&par, &x, &wmat, Density::Sample, Some(bias.data()), k, k, 1, k / 2, true);
        prop_assert_eq!(&y_s, &y_p);

        let grad = random(y_s.dims(), seed + 3);
        let (dx_s, dw_s, db_s) = conv2d_backward(&serial, &cache_s.unwrap(), &grad);
        let (dx_p, dw_p, db_p) = conv2d_backward(&par, &cache_p.unwrap(), &grad);
        prop_assert_eq!(dx_s, dx_p);
        prop_assert_eq!(dw_s, dw_p);
        prop_assert_eq!(db_s, db_p);
    }

    /// Forward and backward linear are bit-identical across thread counts.
    #[test]
    fn linear_cores_bit_identical(
        batch in 1usize..9,
        d_in in 1usize..12,
        d_out in 1usize..12,
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        let x = random(&[batch, d_in], seed);
        let w = random(&[d_out, d_in], seed + 1);
        let bias = random(&[d_out], seed + 2);
        let serial = ExecCtx::serial();
        let par = ExecCtx::new(Parallelism { threads, min_work: 0 });

        let (y_s, cache_s) = linear_forward(&serial, &x, &w, Some(bias.data()), true);
        let (y_p, cache_p) = linear_forward(&par, &x, &w, Some(bias.data()), true);
        prop_assert_eq!(&y_s, &y_p);

        let grad = random(y_s.dims(), seed + 3);
        let (dx_s, dw_s, db_s) = linear_backward(&serial, &cache_s.unwrap(), &grad);
        let (dx_p, dw_p, db_p) = linear_backward(&par, &cache_p.unwrap(), &grad);
        prop_assert_eq!(dx_s, dx_p);
        prop_assert_eq!(dw_s, dw_p);
        prop_assert_eq!(db_s, db_p);
    }
}
