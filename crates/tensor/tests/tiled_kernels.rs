//! Bit-identity of the tiled matmul kernels against the retained naive
//! reference kernels, across odd shapes, thread counts, and both sides
//! of the sparse gate.
//!
//! The tiled kernels promise *exact* equality with the references: each
//! output element is one accumulation chain over `k` ascending, so
//! packing and tiling change where operands are read, never the order
//! they combine. These tests therefore compare with `assert_eq!` on the
//! `Tensor`s (f32 bit patterns included via `to_bits`) — no tolerances.

use ams_tensor::rng;
use ams_tensor::{
    matmul_a_bt_in, matmul_a_bt_reference, matmul_at_b_in, matmul_at_b_reference, matmul_hinted_in,
    matmul_reference, Density, ExecCtx, Tensor,
};
use proptest::prelude::*;

fn random(dims: &[usize], seed: u64) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let mut r = rng::seeded(seed);
    rng::fill_uniform(&mut t, -4.0, 4.0, &mut r);
    t
}

/// A mostly-zero tensor (one nonzero per row) to drive the sparse branch.
fn sparse(rows: usize, cols: usize, seed: u64) -> Tensor {
    use rand::Rng;
    let mut r = rng::seeded(seed);
    let mut data = vec![0.0f32; rows * cols];
    for row in 0..rows {
        let c = r.gen_range(0..cols);
        data[row * cols + c] = (r.gen_range(0..8001) as f32) / 1000.0 - 4.0;
    }
    Tensor::from_vec(&[rows, cols], data).expect("length matches")
}

fn assert_bitwise_eq(got: &Tensor, want: &Tensor) {
    assert_eq!(got.dims(), want.dims());
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "element {i}: {g} vs {w} (bitwise)"
        );
    }
}

const THREADS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled `C = A·B` is bit-identical to the naive reference at every
    /// thread count, including ragged shapes that don't divide the
    /// `MR×NR` tile.
    #[test]
    fn tiled_matmul_bit_identical(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let a = random(&[m, k], seed);
        let b = random(&[k, n], seed.wrapping_add(1));
        let want = matmul_reference(&a, &b);
        for threads in THREADS {
            let ctx = ExecCtx::with_threads(threads);
            let got = matmul_hinted_in(&ctx, &a, &b, Density::Dense);
            assert_bitwise_eq(&got, &want);
        }
    }

    /// Tiled `C = Aᵀ·B` (the backward-pass kernel, with its lhs
    /// zero-skip) is bit-identical to the reference at every thread
    /// count.
    #[test]
    fn tiled_at_b_bit_identical(
        k in 1usize..36,
        m in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let a = random(&[k, m], seed);
        let b = random(&[k, n], seed.wrapping_add(1));
        let want = matmul_at_b_reference(&a, &b);
        for threads in THREADS {
            let ctx = ExecCtx::with_threads(threads);
            let got = matmul_at_b_in(&ctx, &a, &b);
            assert_bitwise_eq(&got, &want);
        }
    }

    /// Tiled `C = A·Bᵀ` is bit-identical to the reference at every
    /// thread count.
    #[test]
    fn tiled_a_bt_bit_identical(
        m in 1usize..24,
        k in 1usize..36,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let a = random(&[m, k], seed);
        let b = random(&[n, k], seed.wrapping_add(1));
        let want = matmul_a_bt_reference(&a, &b);
        for threads in THREADS {
            let ctx = ExecCtx::with_threads(threads);
            let got = matmul_a_bt_in(&ctx, &a, &b);
            assert_bitwise_eq(&got, &want);
        }
    }

    /// The sparse (row-skipping) branch agrees bitwise with the dense
    /// tiled branch *and* the reference: `0.0` lhs entries contribute
    /// nothing in every kernel, and skipping them preserves each output
    /// element's accumulation chain.
    #[test]
    fn sparse_and_dense_branches_agree(
        m in 1usize..32,
        k in 1usize..32,
        n in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let a = sparse(m, k, seed);
        let b = random(&[k, n], seed.wrapping_add(1));
        let want = matmul_reference(&a, &b);
        for threads in THREADS {
            let ctx = ExecCtx::with_threads(threads);
            // Forced sparse: the row-skipping kernel.
            let s = matmul_hinted_in(&ctx, &a, &b, Density::Sparse);
            assert_bitwise_eq(&s, &want);
            // Forced dense: the tiled kernel on the same operands.
            let d = matmul_hinted_in(&ctx, &a, &b, Density::Dense);
            assert_bitwise_eq(&d, &want);
        }
    }
}

/// Shapes chosen to straddle the small-product gate and exercise ragged
/// tile tails in both dimensions, at a size big enough to split across 8
/// workers.
#[test]
fn tiled_matmul_fixed_shapes_all_threads() {
    for (m, k, n) in [
        (1, 1, 1),
        (4, 8, 8),
        (33, 17, 29),
        (65, 40, 67),
        (7, 128, 31),
        (130, 65, 130),
    ] {
        let mut a = Tensor::zeros(&[m, k]);
        let mut b = Tensor::zeros(&[k, n]);
        let mut r = rng::seeded(m as u64 * 1000 + n as u64);
        rng::fill_uniform(&mut a, -2.0, 2.0, &mut r);
        rng::fill_uniform(&mut b, -2.0, 2.0, &mut r);
        let want = matmul_reference(&a, &b);
        for threads in THREADS {
            let ctx = ExecCtx::with_threads(threads);
            assert_bitwise_eq(&matmul_hinted_in(&ctx, &a, &b, Density::Dense), &want);
            assert_bitwise_eq(&matmul_hinted_in(&ctx, &a, &b, Density::Sample), &want);
        }
    }
}

/// Negative zero on the lhs must NOT be skipped: `x + (-0.0)·b` can flip
/// the sign of a `+0.0` partial sum, so only exact `+0.0`/`-0.0` == 0.0
/// comparisons that the reference also performs are allowed. This pins
/// the skip predicate (`== 0.0` matches both zeros in the reference and
/// the tiled kernel alike — they must agree, not be IEEE-clever).
#[test]
fn signed_zero_agreement_at_b() {
    let a = Tensor::from_vec(&[3, 2], vec![-0.0, 1.0, 0.0, -2.0, 3.5, -0.0]).unwrap();
    let b = Tensor::from_vec(
        &[3, 4],
        vec![
            1.0, -1.0, 0.5, -0.0, 2.0, 0.25, -0.5, 0.0, 1.5, -3.0, 0.0, -0.0,
        ],
    )
    .unwrap();
    let want = matmul_at_b_reference(&a, &b);
    for threads in THREADS {
        let ctx = ExecCtx::with_threads(threads);
        assert_bitwise_eq(&matmul_at_b_in(&ctx, &a, &b), &want);
    }
}
