//! Round-trip and overflow properties of the i8 GEMM panel layout.
//!
//! The integer kernel packs its lhs row-major and its rhs
//! transpose-widened into k-contiguous i16 columns; these tests pin the
//! layout with the public `pack_*`/`unpack_*` pairs (inverse on every
//! shape, including remainder tiles around the packing block size) and
//! pin the split-K accumulator widening at reductions long enough that a
//! plain i32 accumulator would wrap.

use ams_tensor::rng;
use ams_tensor::{
    matmul_i8_in, matmul_i8_reference, pack_cols_i16, pack_rows_i16, unpack_cols_i16,
    unpack_rows_i16, ExecCtx,
};
use proptest::prelude::*;
use rand::Rng;

const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Seeded codes over the full i8 range, rails included.
fn codes(len: usize, seed: u64) -> Vec<i8> {
    let mut r = rng::seeded(seed);
    (0..len)
        .map(|_| (r.gen_range(0..256) as i32 - 128) as i8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Row panels: pack then unpack is the identity, and packing is a
    /// pure widening (the panel holds exactly the codes, order intact).
    #[test]
    fn row_panel_round_trips(
        m in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let src = codes(m * k, seed);
        let mut panel = vec![0i16; m * k];
        pack_rows_i16(&src, &mut panel);
        for (p, &c) in panel.iter().zip(&src) {
            prop_assert_eq!(*p, i16::from(c));
        }
        let mut back = vec![0i8; m * k];
        unpack_rows_i16(&panel, &mut back);
        prop_assert_eq!(back, src);
    }

    /// Column panels: the transpose-widen and its inverse round-trip on
    /// every shape, including `kdim` straddling the internal packing
    /// block, and the panel layout is exactly
    /// `panel[j·kdim + kk] = src[kk·n + j]`.
    #[test]
    fn col_panel_round_trips(
        kdim in 1usize..100,
        n in 1usize..40,
        seed in 0u64..1_000_000,
    ) {
        let src = codes(kdim * n, seed);
        let mut panel = vec![0i16; kdim * n];
        pack_cols_i16(&src, kdim, n, &mut panel);
        for j in 0..n {
            for kk in 0..kdim {
                prop_assert_eq!(panel[j * kdim + kk], i16::from(src[kk * n + j]));
            }
        }
        let mut back = vec![0i8; kdim * n];
        unpack_cols_i16(&panel, kdim, n, &mut back);
        prop_assert_eq!(back, src);
    }
}

/// At `K = 140_000` with every code at the ±127 rail, the reduction
/// reaches `140_000 · 127² ≈ 2.26e9 > i32::MAX`: a non-widening i32
/// accumulator would wrap to a negative value. The split-K path must
/// return the exact count, at every thread count and on both sparsity
/// branches.
#[test]
fn long_k_rails_do_not_wrap() {
    let k = 140_000usize;
    let expect = (k as i64) * 127 * 127;
    assert!(expect > i64::from(i32::MAX), "test must exceed i32 range");
    let a = vec![127i8; k];
    let b: Vec<i8> = (0..k)
        .map(|i| if i % 2 == 0 { 127 } else { -127 })
        .collect();
    // Column of all +127 (aligned signs) and a ±alternating column.
    let rhs: Vec<i8> = (0..k).flat_map(|i| [127i8, b[i]]).collect();
    let alt: i64 = b.iter().map(|&v| 127 * i64::from(v)).sum();
    for threads in THREADS {
        let ctx = ExecCtx::with_threads(threads);
        for sparse in [false, true] {
            let y = matmul_i8_in(&ctx, 1, k, 2, &a, &rhs, 1.0, sparse);
            assert_eq!(
                y.data(),
                &[expect as f32, alt as f32],
                "threads {threads} sparse {sparse}"
            );
        }
    }
}

/// Mixed-sign codes at a reduction just past the split-K chunk size:
/// the chunk seam is invisible — the kernel still matches the serial
/// i64 oracle exactly.
#[test]
fn split_k_seam_matches_oracle() {
    let k = (1usize << 16) + 37; // one full chunk plus a remainder
    let a = codes(2 * k, 7);
    let b = codes(3 * k, 11);
    let want = matmul_i8_reference(2, k, 3, &a, &b, 0.5);
    for threads in THREADS {
        let got = matmul_i8_in(&ExecCtx::with_threads(threads), 2, k, 3, &a, &b, 0.5, false);
        assert_eq!(got, want, "threads {threads}");
    }
}
