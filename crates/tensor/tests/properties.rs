//! Property-based tests of the tensor substrate.

use ams_tensor::{
    col2im, im2col, im2col_in, matmul, matmul_a_bt, matmul_a_bt_in, matmul_at_b, matmul_at_b_in,
    matmul_in, ConvGeom, ExecCtx, Parallelism, ShapeExt, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n = dims.numel();
    proptest::collection::vec(-4.0f32..4.0, n..=n)
        .prop_map(move |data| Tensor::from_vec(&dims, data).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) within floating-point tolerance.
    #[test]
    fn matmul_associative(
        a in tensor_strategy(vec![3, 4]),
        b in tensor_strategy(vec![4, 5]),
        c in tensor_strategy(vec![5, 2]),
    ) {
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-2 * (1.0 + l.abs()), "{l} vs {r}");
        }
    }

    /// A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributive(
        a in tensor_strategy(vec![4, 3]),
        b in tensor_strategy(vec![3, 4]),
        c in tensor_strategy(vec![3, 4]),
    ) {
        let left = matmul(&a, &b.add(&c));
        let right = matmul(&a, &b).add(&matmul(&a, &c));
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-3 * (1.0 + l.abs()));
        }
    }

    /// The transpose kernels agree with explicit transposition.
    #[test]
    fn transpose_kernels_consistent(
        a in tensor_strategy(vec![5, 3]),
        b in tensor_strategy(vec![5, 4]),
    ) {
        // Aᵀ·B via matmul_at_b vs manual transpose.
        let mut at = Tensor::zeros(&[3, 5]);
        for i in 0..5 {
            for j in 0..3 {
                at.set(&[j, i], a.at(&[i, j]));
            }
        }
        let got = matmul_at_b(&a, &b);
        let want = matmul(&at, &b);
        for (g, w) in got.data().iter().zip(want.data()) {
            prop_assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()));
        }
        // A·Bᵀ: (Aᵀ)ᵀ·Bᵀ — check against matmul with manual transpose of b.
        let mut bt = Tensor::zeros(&[4, 5]);
        for i in 0..5 {
            for j in 0..4 {
                bt.set(&[j, i], b.at(&[i, j]));
            }
        }
        let got = matmul_a_bt(&at, &at.clone());
        let want = matmul(&at, &a);
        prop_assert_eq!(got.dims(), want.dims());
        let _ = bt;
    }

    /// col2im is the exact adjoint of im2col for random geometry:
    /// <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn im2col_adjointness(
        n in 1usize..3,
        c in 1usize..4,
        hw in 4usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let geom = ConvGeom::new(n, c, hw, hw, k, k, stride, pad);
        use ams_tensor::rng;
        use rand::Rng;
        let mut r = rng::seeded(seed);
        let mut x = Tensor::zeros(&[n, c, hw, hw]);
        for v in x.data_mut() { *v = r.gen::<f32>() - 0.5; }
        let mut y = Tensor::zeros(&[geom.rows(), geom.cols()]);
        for v in y.data_mut() { *v = r.gen::<f32>() - 0.5; }
        let lhs: f64 = im2col(&x, &geom).data().iter().zip(y.data())
            .map(|(a, b)| f64::from(*a) * f64::from(*b)).sum();
        let rhs: f64 = x.data().iter().zip(col2im(&y, &geom).data())
            .map(|(a, b)| f64::from(*a) * f64::from(*b)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Parallel matmul kernels are bit-identical to the serial ones for
    /// arbitrary shapes and thread counts — the determinism contract of
    /// [`ExecCtx`] (each output row is accumulated by exactly one worker
    /// in serial k-order, so not even rounding may differ).
    #[test]
    fn parallel_matmul_bit_identical(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        use ams_tensor::rng;
        let mut r = rng::seeded(seed);
        let mut a = Tensor::zeros(&[m, k]);
        rng::fill_uniform(&mut a, -2.0, 2.0, &mut r);
        let mut b = Tensor::zeros(&[k, n]);
        rng::fill_uniform(&mut b, -2.0, 2.0, &mut r);
        let serial = ExecCtx::serial();
        // min_work: 0 forces worker dispatch even for tiny shapes.
        let par = ExecCtx::new(Parallelism { threads, min_work: 0 });
        prop_assert_eq!(matmul_in(&serial, &a, &b), matmul_in(&par, &a, &b));

        let mut at = Tensor::zeros(&[k, m]);
        rng::fill_uniform(&mut at, -2.0, 2.0, &mut r);
        prop_assert_eq!(matmul_at_b_in(&serial, &at, &b), matmul_at_b_in(&par, &at, &b));

        let mut bt = Tensor::zeros(&[n, k]);
        rng::fill_uniform(&mut bt, -2.0, 2.0, &mut r);
        prop_assert_eq!(matmul_a_bt_in(&serial, &a, &bt), matmul_a_bt_in(&par, &a, &bt));
    }

    /// Parallel im2col lowers to exactly the serial patch matrix.
    #[test]
    fn parallel_im2col_bit_identical(
        n in 1usize..4,
        c in 1usize..4,
        hw in 4usize..8,
        k in 1usize..4,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw >= k);
        let geom = ConvGeom::new(n, c, hw, hw, k, k, 1, k / 2);
        use ams_tensor::rng;
        let mut r = rng::seeded(seed);
        let mut x = Tensor::zeros(&[n, c, hw, hw]);
        rng::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        let par = ExecCtx::new(Parallelism { threads, min_work: 0 });
        prop_assert_eq!(im2col_in(&ExecCtx::serial(), &x, &geom), im2col_in(&par, &x, &geom));
    }

    /// Reshape round-trips preserve data exactly.
    #[test]
    fn reshape_round_trip(t in tensor_strategy(vec![2, 3, 4])) {
        let flat = t.clone().reshape(&[24]).expect("same length");
        let back = flat.reshape(&[2, 3, 4]).expect("same length");
        prop_assert_eq!(t, back);
    }

    /// Elementwise algebra: (a + b) - b == a exactly for representable sums.
    #[test]
    fn add_sub_inverse(a in tensor_strategy(vec![16]), b in tensor_strategy(vec![16])) {
        let round = a.add(&b).sub(&b);
        for (x, y) in round.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Channel statistics match a brute-force computation.
    #[test]
    fn channel_stats_bruteforce(t in tensor_strategy(vec![3, 2, 2, 3])) {
        let means = t.channel_means();
        let vars = t.channel_vars(&means);
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..3 {
                for hi in 0..2 {
                    for wi in 0..3 {
                        vals.push(t.at(&[ni, ci, hi, wi]));
                    }
                }
            }
            let m: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let v: f32 = vals.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / vals.len() as f32;
            prop_assert!((means[ci] - m).abs() < 1e-4);
            prop_assert!((vars[ci] - v).abs() < 1e-3);
        }
    }
}
