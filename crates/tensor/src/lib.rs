//! Dense `f32` tensor substrate for the `ams-dnn` workspace.
//!
//! This crate is the numerical foundation under the reproduction of
//! *"Analog/Mixed-Signal Hardware Error Modeling for Deep Learning
//! Inference"* (Rekhi et al., DAC 2019). It provides exactly the pieces a
//! small convolutional-network training framework needs on a CPU:
//!
//! * [`Tensor`] — an owned, contiguous, row-major n-dimensional `f32` array
//!   with elementwise arithmetic, reductions and reshaping;
//! * [`matmul`], [`matmul_at_b`], [`matmul_a_bt`] — cache-blocked matrix
//!   products (the backbone of im2col convolution and its backward pass);
//! * [`im2col`] / [`col2im`] — lowering of NCHW convolutions to matrix
//!   products and the adjoint scatter used for gradients;
//! * [`rng`] — seeded random sources, a Box–Muller Gaussian, and the weight
//!   initializers (Kaiming / Xavier) used by the network layers;
//! * [`exec`] — the [`ExecCtx`] execution context threaded through the
//!   whole stack: a scoped worker pool with deterministic (bit-identical
//!   for any thread count) parallel dispatch, and the counter-derived
//!   RNG-stream allocator [`noise_stream_seed`].
//!
//! # Example
//!
//! ```
//! use ams_tensor::{Tensor, matmul};
//!
//! # fn main() -> Result<(), ams_tensor::TensorError> {
//! let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0])?;
//! let c = matmul(&a, &b);
//! assert_eq!(c.dims(), &[2, 2]);
//! assert_eq!(c.data(), &[4.0, 5.0, 10.0, 11.0]);
//! # Ok(())
//! # }
//! ```
//!
//! Design notes: all data is `f32` (matching the paper's FP32 baseline and
//! the fact that quantization is *simulated* in floating point, as in
//! Distiller/DoReFa); shapes are validated eagerly and shape errors either
//! return [`TensorError`] (constructors, reshape) or panic with a precise
//! message (hot-path operators, documented under *Panics*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
pub mod exec;
mod matmul;
pub mod matmul_i8;
mod ops;
pub mod rng;
mod shape;
mod tensor;
mod workspace;

/// Re-export of the metrics layer so downstream crates can record through
/// `ExecCtx::metrics()` without a direct `ams-obs` dependency.
pub use ams_obs as obs;
pub use ams_obs::MetricsSink;
pub use conv::{
    col2im, col2im_in, im2col, im2col_in, mat_to_nchw, mat_to_nchw_in, nchw_to_mat, nchw_to_mat_in,
    ConvGeom,
};
pub use exec::{noise_stream_seed, ExecCtx, KernelDispatch, Parallelism};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_in, matmul_a_bt_reference, matmul_at_b, matmul_at_b_in,
    matmul_at_b_reference, matmul_hinted_in, matmul_in, matmul_reference, Density,
};
pub use matmul_i8::{
    matmul_i8_a_bt_in, matmul_i8_in, matmul_i8_reference, pack_cols_i16, pack_rows_i16,
    quantize_symmetric_i8, unpack_cols_i16, unpack_rows_i16,
};
pub use shape::{ShapeExt, TensorError};
pub use tensor::Tensor;
pub use workspace::Workspace;
