//! Execution context: worker threads, parallel dispatch, and RNG-stream
//! allocation.
//!
//! [`ExecCtx`] is threaded through every compute layer of the workspace —
//! kernels ([`crate::matmul_in`], [`crate::im2col_in`]), network layers
//! (`ams-nn`), models (`ams-models`) and the experiment runner
//! (`ams-exp`) — so that one value decides, in one place, how much
//! parallelism the whole stack uses.
//!
//! # Determinism guarantee
//!
//! Every parallel primitive here partitions work so that each output
//! element is computed by **exactly one** closure invocation running the
//! identical sequential code, and results are placed by index. No
//! floating-point reduction ever crosses a partition boundary, so results
//! are bit-identical for any thread count (1, 2, 8, ...). Randomness
//! never flows through the pool either: noise streams are allocated by
//! [`noise_stream_seed`] from `(seed, layer_index)` counters, not from
//! whichever thread happens to run a task.
//!
//! # Scheduling model
//!
//! Worker threads are scoped (`std::thread::scope`) per dispatch: there
//! is no long-lived pool, no `unsafe`, and nothing to shut down. An op
//! runs serially unless its estimated scalar work exceeds
//! [`Parallelism::min_work`] — small tensors are cheaper to compute than
//! to hand to threads.

use crate::workspace::Workspace;
use ams_obs::MetricsSink;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How much parallelism the stack may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum worker threads per dispatch; `1` means fully serial.
    pub threads: usize,
    /// Minimum estimated scalar operations before an op goes parallel;
    /// below this, dispatch overhead exceeds the win.
    pub min_work: usize,
}

/// Default parallelism threshold: roughly the work of a 64×64×16 matmul.
pub const DEFAULT_MIN_WORK: usize = 1 << 16;

impl Parallelism {
    /// Fully serial execution (also what [`ExecCtx::serial`] uses).
    pub const fn serial() -> Self {
        Parallelism {
            threads: 1,
            min_work: usize::MAX,
        }
    }

    /// `threads` workers with the default work threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "Parallelism: thread count must be at least 1");
        Parallelism {
            threads,
            min_work: DEFAULT_MIN_WORK,
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Parallelism::with_threads(threads)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Which GEMM implementation eval-time layers dispatch to.
///
/// Carried by [`ExecCtx`] so one flag near `main` (`--kernel f32|i8` on
/// the experiment binaries) decides the arithmetic for the whole stack.
/// The default [`KernelDispatch::F32`] keeps every committed golden
/// byte-identical; [`KernelDispatch::I8`] routes quantized layer
/// evaluation through the packed i8×i8→i32 fast path, which is validated
/// *statistically* against the f32 kernels (see `crates/tensor`'s
/// `matmul_i8` module) rather than bit-for-bit. Training always runs the
/// f32 kernels regardless of the dispatch, so checkpoints are shared
/// between the two paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelDispatch {
    /// The tiled f32 kernels — bit-identical to the reference kernels and
    /// to every committed golden. The default.
    #[default]
    F32,
    /// The packed i8×i8→i32 integer fast path with a fused dequantize
    /// epilogue; exact in integer arithmetic, statistically bounded
    /// against f32.
    I8,
}

impl KernelDispatch {
    /// Short identifier used in CLI flags and artifact names.
    pub fn key(&self) -> &'static str {
        match self {
            KernelDispatch::F32 => "f32",
            KernelDispatch::I8 => "i8",
        }
    }

    /// Parses the CLI spelling (`"f32"` or `"i8"`).
    ///
    /// # Errors
    ///
    /// Returns the unknown name so callers can report it.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "f32" => Ok(KernelDispatch::F32),
            "i8" => Ok(KernelDispatch::I8),
            other => Err(format!("unknown kernel {other:?}; expected f32|i8")),
        }
    }
}

impl std::fmt::Display for KernelDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// The execution context threaded through kernels, layers, models and
/// experiments.
///
/// Cheap to borrow everywhere (`&ExecCtx`); create once near `main` and
/// pass down. [`ExecCtx::serial`] is a `const fn`, so tests and examples
/// can use `&ExecCtx::serial()` inline.
#[derive(Debug)]
pub struct ExecCtx {
    par: Parallelism,
    /// Dispatches that actually ran on the pool (observability/tests).
    parallel_dispatches: AtomicUsize,
    /// Metrics sink; disabled (free) unless attached via [`ExecCtx::with_metrics`].
    metrics: MetricsSink,
    /// Reusable-buffer arena so steady-state passes allocate nothing.
    workspace: Workspace,
    /// Which GEMM family quantized eval forwards dispatch to.
    kernel: KernelDispatch,
}

impl Clone for ExecCtx {
    fn clone(&self) -> Self {
        // Dispatch statistics and the buffer workspace are per-instance
        // (a clone starts with a fresh, empty arena so contexts never
        // contend on a pool lock), but the metrics sink and kernel
        // dispatch travel with the context so clones record into the same
        // registry and compute on the same arithmetic path.
        ExecCtx::new(self.par)
            .with_metrics(self.metrics.clone())
            .with_kernel(self.kernel)
    }
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::auto()
    }
}

impl ExecCtx {
    /// A context with explicit parallelism settings.
    pub const fn new(par: Parallelism) -> Self {
        ExecCtx {
            par,
            parallel_dispatches: AtomicUsize::new(0),
            metrics: MetricsSink::disabled(),
            workspace: Workspace::new(),
            kernel: KernelDispatch::F32,
        }
    }

    /// Selects the GEMM dispatch quantized eval forwards use. The default
    /// [`KernelDispatch::F32`] reproduces every committed golden
    /// byte-identically; [`KernelDispatch::I8`] enables the integer fast
    /// path (statistically gated — see the `matmul_i8` module docs).
    pub fn with_kernel(mut self, kernel: KernelDispatch) -> Self {
        self.kernel = kernel;
        self
    }

    /// The GEMM dispatch quantized eval forwards use.
    pub fn kernel(&self) -> KernelDispatch {
        self.kernel
    }

    /// Attaches a metrics sink; every layer holding this context (or a
    /// clone of it) records into the sink's registry. The default sink is
    /// [`MetricsSink::disabled`], which reduces every recording call to a
    /// branch on a `None`.
    pub fn with_metrics(mut self, sink: MetricsSink) -> Self {
        self.metrics = sink;
        self
    }

    /// Replaces the metrics sink in place, keeping the context's
    /// workspace (and its warmed buffer pool) intact — unlike
    /// rebuilding the context via `clone().with_metrics(..)`.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.metrics = sink;
    }

    /// The attached metrics sink (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// The reusable-buffer arena kernels and layers draw scratch and
    /// output storage from. See [`Workspace`] for the lifetime rules.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// The always-serial context: every op runs inline on the caller's
    /// thread. Bit-identical to any parallel context by construction.
    pub const fn serial() -> Self {
        ExecCtx::new(Parallelism::serial())
    }

    /// A context using every available hardware thread.
    pub fn auto() -> Self {
        ExecCtx::new(Parallelism::auto())
    }

    /// A context sized from the `AMS_THREADS` environment variable (a
    /// positive integer), falling back to [`ExecCtx::auto`] when unset or
    /// unparseable. This is how CI's thread matrix pins the pool width
    /// without threading a flag through every binary — results are
    /// bit-identical for any value, so only wall-clock changes.
    pub fn from_env() -> Self {
        match std::env::var("AMS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            Some(n) => ExecCtx::with_threads(n),
            None => ExecCtx::auto(),
        }
    }

    /// A context with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        ExecCtx::new(Parallelism::with_threads(threads))
    }

    /// The configured parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Maximum worker threads per dispatch.
    pub fn threads(&self) -> usize {
        self.par.threads
    }

    /// Whether an op with `work` estimated scalar operations should be
    /// dispatched to the pool.
    pub fn should_parallelize(&self, work: usize) -> bool {
        self.par.threads > 1 && work >= self.par.min_work
    }

    /// How many dispatches actually ran multi-threaded so far.
    pub fn parallel_dispatch_count(&self) -> usize {
        self.parallel_dispatches.load(Ordering::Relaxed)
    }

    /// Runs `f(chunk_index, chunk)` over `out` split into consecutive
    /// `chunk_len` pieces, in parallel when worthwhile.
    ///
    /// Each chunk is processed by exactly one invocation, so as long as
    /// `f` is deterministic per chunk (it must not mutate shared state),
    /// the result is bit-identical to the serial loop for any thread
    /// count. `work_per_chunk` is the estimated scalar operations per
    /// chunk, used for the serial/parallel decision.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not a multiple of `chunk_len` (for
    /// non-empty `out`).
    pub fn for_each_chunk<F>(&self, out: &mut [f32], chunk_len: usize, work_per_chunk: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        if out.is_empty() {
            return;
        }
        assert_eq!(
            out.len() % chunk_len,
            0,
            "for_each_chunk: output length {} is not a multiple of chunk length {chunk_len}",
            out.len()
        );
        let n_chunks = out.len() / chunk_len;
        let workers = self.par.threads.min(n_chunks);
        if workers <= 1 || !self.should_parallelize(n_chunks.saturating_mul(work_per_chunk)) {
            self.metrics.inc("exec.for_each_chunk.serial");
            let _t = self.metrics.scope(|| "exec.for_each_chunk".to_string());
            for (idx, chunk) in out.chunks_mut(chunk_len).enumerate() {
                f(idx, chunk);
            }
            return;
        }
        self.parallel_dispatches.fetch_add(1, Ordering::Relaxed);
        self.metrics.inc("exec.for_each_chunk.parallel");
        let _t = self.metrics.scope(|| "exec.for_each_chunk".to_string());
        // Contiguous near-equal partition: worker t takes chunk range
        // [t*q + min(t, r), ...) where q = n/workers, r = n % workers.
        let q = n_chunks / workers;
        let r = n_chunks % workers;
        std::thread::scope(|scope| {
            let mut rest = out;
            let mut start = 0usize;
            for t in 0..workers {
                let count = q + usize::from(t < r);
                let (mine, tail) = rest.split_at_mut(count * chunk_len);
                rest = tail;
                let fr = &f;
                scope.spawn(move || {
                    for (off, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                        fr(start + off, chunk);
                    }
                });
                start += count;
            }
        });
    }

    /// Runs `f(first_chunk_index, span)` over `out` split into consecutive
    /// `chunk_len` pieces, handing each worker its whole contiguous run of
    /// chunks in **one** invocation (the last chunk may be ragged when
    /// `out.len()` is not a multiple of `chunk_len`).
    ///
    /// This is the primitive for kernels that want to reorder loops
    /// *across* the chunks they own — e.g. the tiled matmul keeps one
    /// packed rhs panel hot across all of a worker's row bands. The
    /// determinism contract is therefore stronger than
    /// [`ExecCtx::for_each_chunk`]'s: `f` must compute each output element
    /// identically regardless of how chunks are grouped into spans (no
    /// accumulator may be carried from one chunk to another), so results
    /// stay bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn for_each_span<F>(&self, out: &mut [f32], chunk_len: usize, work_per_chunk: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        if out.is_empty() {
            return;
        }
        assert!(
            chunk_len > 0,
            "for_each_span: chunk length must be positive"
        );
        let n_chunks = out.len().div_ceil(chunk_len);
        let workers = self.par.threads.min(n_chunks);
        if workers <= 1 || !self.should_parallelize(n_chunks.saturating_mul(work_per_chunk)) {
            self.metrics.inc("exec.for_each_span.serial");
            let _t = self.metrics.scope(|| "exec.for_each_span".to_string());
            f(0, out);
            return;
        }
        self.parallel_dispatches.fetch_add(1, Ordering::Relaxed);
        self.metrics.inc("exec.for_each_span.parallel");
        let _t = self.metrics.scope(|| "exec.for_each_span".to_string());
        // Same contiguous near-equal partition as `for_each_chunk`.
        let q = n_chunks / workers;
        let r = n_chunks % workers;
        std::thread::scope(|scope| {
            let mut rest = out;
            let mut start = 0usize;
            for t in 0..workers {
                let count = q + usize::from(t < r);
                let take = (count * chunk_len).min(rest.len());
                let (mine, tail) = rest.split_at_mut(take);
                rest = tail;
                let fr = &f;
                let first = start;
                scope.spawn(move || fr(first, mine));
                start += count;
            }
        });
    }

    /// Maps `f` over `items` on the pool, returning results in input
    /// order.
    ///
    /// Items are claimed from an atomic queue (good load balance for
    /// uneven work like experiment sweep arms) but each result is placed
    /// at its item's index, so output order — and, provided `f` is
    /// deterministic per item, output *content* — is independent of
    /// thread count and scheduling.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.par.threads.min(items.len());
        if workers <= 1 {
            self.metrics.inc("exec.parallel_map.serial");
            let _t = self.metrics.scope(|| "exec.parallel_map".to_string());
            return items.iter().map(f).collect();
        }
        self.parallel_dispatches.fetch_add(1, Ordering::Relaxed);
        self.metrics.inc("exec.parallel_map.parallel");
        let _t = self.metrics.scope(|| "exec.parallel_map".to_string());
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    *slots[i].lock() = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every slot filled by exactly one worker")
            })
            .collect()
    }
}

/// Derives a decorrelated per-layer RNG stream seed from a network-level
/// seed and a layer counter (SplitMix64-style finalizer).
///
/// This is the workspace's single RNG-stream allocation point: layers
/// never invent their own mixing, so streams stay decorrelated across
/// layers and reproducible across runs and thread counts. Moved here from
/// `ams-models` so kernels, layers and experiments share one scheme.
pub fn noise_stream_seed(network_seed: u64, layer_index: u64) -> u64 {
    let mut z = network_seed ^ layer_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ctx_is_const_and_inline() {
        // `serial` is a const fn, so a context can live in a static.
        static CTX: ExecCtx = ExecCtx::serial();
        assert_eq!(CTX.threads(), 1);
        assert!(!CTX.should_parallelize(usize::MAX));
    }

    #[test]
    fn for_each_chunk_matches_serial_for_any_thread_count() {
        let chunk = 16usize;
        let n = 64usize;
        let kernel = |idx: usize, out: &mut [f32]| {
            for (j, v) in out.iter_mut().enumerate() {
                *v = ((idx * 31 + j) as f32).sin();
            }
        };
        let mut want = vec![0.0f32; n * chunk];
        ExecCtx::serial().for_each_chunk(&mut want, chunk, usize::MAX, kernel);
        for threads in [2, 3, 8, 64, 77] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            let mut got = vec![0.0f32; n * chunk];
            ctx.for_each_chunk(&mut got, chunk, usize::MAX, kernel);
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(ctx.parallel_dispatch_count(), 1);
        }
    }

    #[test]
    fn small_work_stays_serial() {
        let ctx = ExecCtx::with_threads(8);
        let mut out = vec![0.0f32; 8];
        ctx.for_each_chunk(&mut out, 1, 1, |i, c| c[0] = i as f32);
        assert_eq!(ctx.parallel_dispatch_count(), 0);
        assert_eq!(out, (0..8).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..40).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 7, 40] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            let got = ctx.parallel_map(&items, |x| x * x);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn metrics_sink_travels_with_clones_and_counts_dispatches() {
        let sink = MetricsSink::recording();
        let ctx = ExecCtx::new(Parallelism {
            threads: 4,
            min_work: 0,
        })
        .with_metrics(sink.clone());
        let cloned = ctx.clone();
        let mut out = vec![0.0f32; 64];
        cloned.for_each_chunk(&mut out, 16, usize::MAX, |i, c| c.fill(i as f32));
        let report = sink.registry().unwrap().report();
        assert_eq!(
            report
                .counter("exec.for_each_chunk.parallel")
                .unwrap()
                .value,
            1
        );
        assert_eq!(report.timer("exec.for_each_chunk").unwrap().count, 1);
    }

    #[test]
    fn disabled_metrics_by_default() {
        assert!(!ExecCtx::serial().metrics().enabled());
    }

    #[test]
    fn stream_seeds_decorrelate() {
        assert_ne!(noise_stream_seed(1, 0), noise_stream_seed(1, 1));
        assert_ne!(noise_stream_seed(1, 0), noise_stream_seed(2, 0));
        assert_eq!(noise_stream_seed(7, 3), noise_stream_seed(7, 3));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_chunks() {
        ExecCtx::serial().for_each_chunk(&mut [0.0; 5], 2, 1, |_, _| {});
    }

    #[test]
    fn for_each_span_matches_serial_with_ragged_tail() {
        // 7 chunks of 16 plus a ragged chunk of 5.
        let total = 7 * 16 + 5;
        let kernel = |first: usize, span: &mut [f32]| {
            for (off, chunk) in span.chunks_mut(16).enumerate() {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (((first + off) * 131 + j) as f32).cos();
                }
            }
        };
        let mut want = vec![0.0f32; total];
        ExecCtx::serial().for_each_span(&mut want, 16, usize::MAX, kernel);
        for threads in [2, 3, 5, 8, 64] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            let mut got = vec![0.0f32; total];
            ctx.for_each_span(&mut got, 16, usize::MAX, kernel);
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(ctx.parallel_dispatch_count(), 1);
        }
    }

    #[test]
    fn kernel_dispatch_defaults_to_f32_and_travels_with_clones() {
        let ctx = ExecCtx::serial();
        assert_eq!(ctx.kernel(), KernelDispatch::F32);
        let i8ctx = ExecCtx::with_threads(2).with_kernel(KernelDispatch::I8);
        assert_eq!(i8ctx.kernel(), KernelDispatch::I8);
        assert_eq!(i8ctx.clone().kernel(), KernelDispatch::I8);
        assert_eq!(KernelDispatch::by_name("i8"), Ok(KernelDispatch::I8));
        assert_eq!(KernelDispatch::by_name("f32"), Ok(KernelDispatch::F32));
        assert!(KernelDispatch::by_name("f16").is_err());
        assert_eq!(KernelDispatch::I8.to_string(), "i8");
    }

    #[test]
    fn workspace_is_per_context() {
        let ctx = ExecCtx::serial();
        let t = ctx.workspace().take_tensor(&[8, 8]);
        ctx.workspace().recycle(t);
        assert_eq!(ctx.workspace().fresh_allocs(), 1);
        let cloned = ctx.clone();
        assert_eq!(
            cloned.workspace().fresh_allocs(),
            0,
            "clones start with an empty workspace"
        );
    }

    #[test]
    fn set_metrics_keeps_the_workspace() {
        let mut ctx = ExecCtx::serial();
        let t = ctx.workspace().take_tensor(&[64]);
        ctx.workspace().recycle(t);
        ctx.set_metrics(MetricsSink::recording());
        assert!(ctx.metrics().enabled());
        let _t = ctx.workspace().take_tensor(&[64]);
        assert_eq!(ctx.workspace().pool_hits(), 1, "pool survived set_metrics");
    }
}
