//! A reusable-buffer arena so steady-state forward/backward passes make
//! zero heap allocations in the hot path.
//!
//! Every kernel that needs scratch or output storage takes a buffer from
//! the [`Workspace`] carried on [`crate::ExecCtx`] instead of calling the
//! global allocator. Callers return buffers with [`Workspace::recycle`] /
//! [`Workspace::recycle_vec`] when a tensor's lifetime ends (e.g. the
//! previous iteration's activations), and the next `take` of a similar
//! size reuses the allocation.
//!
//! # Capacity classes
//!
//! Buffers are pooled by *capacity class*: the next power of two at or
//! above the requested length (minimum 64). A `take(1000)` therefore
//! returns a buffer with capacity 1024, and recycling it files it back
//! under class 1024, so repeated passes with identical shapes always hit
//! the pool. Taken buffers are zero-filled — kernels that rely on
//! zero-initialized output (im2col padding, col2im scatter-add) stay
//! correct.
//!
//! # Lifetime rules
//!
//! * The workspace is `const`-constructible, so `ExecCtx::serial()` (and
//!   statics holding it) keep working.
//! * Recycling is always optional: a tensor whose buffer came from the
//!   workspace can simply be dropped; the allocation is then returned to
//!   the global allocator rather than the pool. Nothing dangles.
//! * Cloned `ExecCtx`s start with a *fresh, empty* workspace — pooled
//!   buffers never travel between contexts, so sweep arms running on
//!   separate cloned contexts never contend on a pool lock.
//! * Pools are bounded ([`MAX_POOLED_PER_CLASS`] buffers per class), so a
//!   one-off giant temporary cannot pin unbounded memory.

use crate::shape::ShapeExt;
use crate::tensor::Tensor;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Smallest capacity class; requests below this still get a 64-element
/// buffer so tiny tensors round-trip through the pool too.
const MIN_CLASS: usize = 64;

/// Upper bound on pooled buffers per capacity class. Steady-state
/// forward/backward passes keep well under this; the cap only guards
/// against unbounded growth from pathological recycle patterns.
const MAX_POOLED_PER_CLASS: usize = 32;

/// One free-list of same-class buffers.
#[derive(Debug)]
struct Pool {
    class: usize,
    buffers: Vec<Vec<f32>>,
}

/// A bump-style pool of reusable `Vec<f32>` buffers keyed by capacity
/// class, carried on [`crate::ExecCtx`].
///
/// # Example
///
/// ```
/// use ams_tensor::ExecCtx;
///
/// let ctx = ExecCtx::serial();
/// let ws = ctx.workspace();
/// let t = ws.take_tensor(&[4, 8]);      // fresh allocation
/// ws.recycle(t);
/// let _t2 = ws.take_tensor(&[4, 8]);    // reuses the same buffer
/// assert_eq!(ws.fresh_allocs(), 1);
/// assert_eq!(ws.pool_hits(), 1);
/// ```
#[derive(Debug)]
pub struct Workspace {
    pools: Mutex<Vec<Pool>>,
    fresh: AtomicUsize,
    hits: AtomicUsize,
}

impl Workspace {
    /// An empty workspace (`const`, so it can live inside
    /// `ExecCtx::serial()` statics).
    pub const fn new() -> Self {
        Workspace {
            pools: Mutex::new(Vec::new()),
            fresh: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// The capacity class a request of `len` elements is served from.
    fn class_of(len: usize) -> usize {
        len.max(MIN_CLASS).next_power_of_two()
    }

    /// Takes a zero-filled buffer of exactly `len` elements, reusing a
    /// pooled allocation of the matching capacity class when one exists.
    pub fn take(&self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        let class = Self::class_of(len);
        let pooled = {
            let mut pools = self.pools.lock();
            pools
                .iter_mut()
                .find(|p| p.class == class)
                .and_then(|p| p.buffers.pop())
        };
        match pooled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // Capacity is at least `class >= len` by the recycle
                // invariant, so this never reallocates.
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                let mut buf = Vec::with_capacity(class);
                buf.resize(len, 0.0);
                buf
            }
        }
    }

    /// Takes a zero-filled tensor of the given shape from the pool.
    pub fn take_tensor(&self, dims: &[usize]) -> Tensor {
        Tensor::from_vec(dims, self.take(dims.numel()))
            .expect("workspace buffer length matches the requested shape")
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// Buffers whose capacity is below the minimum class, or whose class
    /// pool is full, are dropped (freed) instead — recycling is a hint,
    /// never an obligation.
    pub fn recycle_vec(&self, buf: Vec<f32>) {
        // File under the largest class the capacity fully covers, so a
        // later `take` of that class never needs to grow the buffer.
        // Workspace-originated buffers have power-of-two capacity and
        // round-trip under their original class.
        let cap = buf.capacity();
        if cap < MIN_CLASS {
            return;
        }
        let class = 1usize << (usize::BITS - 1 - cap.leading_zeros());
        let mut pools = self.pools.lock();
        match pools.iter_mut().find(|p| p.class == class) {
            Some(p) => {
                if p.buffers.len() < MAX_POOLED_PER_CLASS {
                    p.buffers.push(buf);
                }
            }
            None => pools.push(Pool {
                class,
                buffers: vec![buf],
            }),
        }
    }

    /// Returns a tensor's backing buffer to the pool for reuse.
    pub fn recycle(&self, t: Tensor) {
        let (_, data) = t.into_parts();
        self.recycle_vec(data);
    }

    /// Copies `src` into a pooled buffer (a `clone` that avoids the
    /// allocator in steady state).
    pub fn clone_tensor(&self, src: &Tensor) -> Tensor {
        let mut buf = self.take(src.len());
        buf.copy_from_slice(src.data());
        Tensor::from_vec(src.dims(), buf).expect("buffer length matches source")
    }

    /// Maps `f` elementwise over `src` into a pooled buffer (the
    /// allocation-free counterpart of `Tensor::map`).
    pub fn map_tensor(&self, src: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
        let mut buf = self.take(src.len());
        for (o, &x) in buf.iter_mut().zip(src.data()) {
            *o = f(x);
        }
        Tensor::from_vec(src.dims(), buf).expect("buffer length matches source")
    }

    /// How many `take` requests were served by a fresh heap allocation.
    ///
    /// In a steady-state loop this counter must stay flat — that is the
    /// zero-allocation property the workspace exists for, and what the
    /// workspace-reuse tests assert.
    pub fn fresh_allocs(&self) -> usize {
        self.fresh.load(Ordering::Relaxed)
    }

    /// How many `take` requests were served from the pool.
    pub fn pool_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_the_allocation() {
        let ws = Workspace::new();
        let a = ws.take(1000);
        let ptr = a.as_ptr() as usize;
        assert!(a.capacity() >= 1024, "rounded up to the capacity class");
        assert!(a.iter().all(|&v| v == 0.0));
        ws.recycle_vec(a);
        let b = ws.take(1010); // same class (1024)
        assert_eq!(b.as_ptr() as usize, ptr, "same-class take reuses buffer");
        assert_eq!(b.len(), 1010);
        assert_eq!(ws.fresh_allocs(), 1);
        assert_eq!(ws.pool_hits(), 1);
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        let ws = Workspace::new();
        let mut a = ws.take(128);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle_vec(a);
        let b = ws.take(128);
        assert!(b.iter().all(|&v| v == 0.0), "takes must be zero-filled");
    }

    #[test]
    fn distinct_classes_do_not_share_buffers() {
        let ws = Workspace::new();
        let a = ws.take(64);
        let ptr = a.as_ptr() as usize;
        ws.recycle_vec(a);
        let b = ws.take(4096);
        assert_ne!(b.as_ptr() as usize, ptr);
        assert_eq!(ws.fresh_allocs(), 2);
    }

    #[test]
    fn take_tensor_round_trip() {
        let ws = Workspace::new();
        let t = ws.take_tensor(&[3, 5]);
        assert_eq!(t.dims(), &[3, 5]);
        ws.recycle(t);
        let t2 = ws.take_tensor(&[5, 3]);
        assert_eq!(ws.pool_hits(), 1, "same class despite different dims");
        assert_eq!(t2.dims(), &[5, 3]);
    }

    #[test]
    fn clone_and_map_use_the_pool() {
        let ws = Workspace::new();
        let src = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0]).unwrap();
        let c = ws.clone_tensor(&src);
        assert_eq!(c, src);
        ws.recycle(c);
        let m = ws.map_tensor(&src, f32::abs);
        assert_eq!(ws.pool_hits(), 1);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn zero_len_take_is_a_noop() {
        let ws = Workspace::new();
        let v = ws.take(0);
        assert!(v.is_empty());
        assert_eq!(ws.fresh_allocs(), 0);
    }

    #[test]
    fn pool_depth_is_bounded() {
        let ws = Workspace::new();
        for _ in 0..(MAX_POOLED_PER_CLASS + 8) {
            ws.recycle_vec(vec![0.0; 64]);
        }
        let pools = ws.pools.lock();
        assert_eq!(pools.len(), 1);
        assert!(pools[0].buffers.len() <= MAX_POOLED_PER_CLASS);
    }

    #[test]
    fn const_constructible() {
        static WS: Workspace = Workspace::new();
        let v = WS.take(100);
        assert_eq!(v.len(), 100);
    }
}
