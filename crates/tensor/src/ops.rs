//! Elementwise arithmetic, reductions and the small set of broadcast
//! operations the network layers need.

use crate::shape::assert_same_dims;
use crate::tensor::Tensor;

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(self.dims(), data).expect("map preserves length")
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_same_dims("zip_map", self.dims(), other.dims());
        let data = self
            .data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(self.dims(), data).expect("zip_map preserves length")
    }

    /// `self += other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_same_dims("add_assign", self.dims(), other.dims());
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b;
        }
    }

    /// `self -= other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_same_dims("sub_assign", self.dims(), other.dims());
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a -= b;
        }
    }

    /// `self += alpha * other` (axpy), elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_same_dims("add_scaled", self.dims(), other.dims());
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in self.data_mut() {
            *x *= alpha;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.fill(0.0);
    }

    /// Sets every element to `value` (reusing the allocation).
    pub fn fill(&mut self, value: f32) {
        for x in self.data_mut() {
            *x = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value of any element (`0` for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Elementwise sum, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, producing a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// For a 2-D `(rows, cols)` tensor, the column index of the maximum in
    /// each row (ties resolve to the lowest index).
    ///
    /// This is the top-1 classification decision for a logits matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        assert!(cols > 0, "argmax_rows requires at least one column");
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data()[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        out
    }

    /// Per-channel mean over the `(N, H, W)` axes of an NCHW tensor.
    ///
    /// Returns a length-`C` vector. This is the statistic batch
    /// normalization computes in training mode.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn channel_means(&self) -> Vec<f32> {
        let (n, c, h, w) = self.dims4();
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut means = vec![0.0f32; c];
        for ni in 0..n {
            for (ci, mean) in means.iter_mut().enumerate() {
                let base = (ni * c + ci) * plane;
                let s: f32 = self.data()[base..base + plane].iter().sum();
                *mean += s;
            }
        }
        for m in &mut means {
            *m /= count;
        }
        means
    }

    /// Per-channel biased variance over the `(N, H, W)` axes of an NCHW
    /// tensor, given precomputed channel means.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D or `means.len() != C`.
    pub fn channel_vars(&self, means: &[f32]) -> Vec<f32> {
        let (n, c, h, w) = self.dims4();
        assert_eq!(
            means.len(),
            c,
            "channel_vars: means length != channel count"
        );
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut vars = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let m = means[ci];
                let s: f32 = self.data()[base..base + plane]
                    .iter()
                    .map(|&x| (x - m) * (x - m))
                    .sum();
                vars[ci] += s;
            }
        }
        for v in &mut vars {
            *v /= count;
        }
        vars
    }

    /// Interprets `self` as 4-D NCHW and returns `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(
            self.rank(),
            4,
            "expected a 4-D NCHW tensor, got rank {}",
            self.rank()
        );
        let d = self.dims();
        (d[0], d[1], d[2], d[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1.0, -2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]).unwrap();
        assert_eq!(a.add(&b).data(), &[1.5, -1.5, 3.5]);
        assert_eq!(a.sub(&b).data(), &[0.5, -2.5, 2.5]);
        assert_eq!(a.mul(&b).data(), &[0.5, -1.0, 1.5]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(&[2]);
        let g = Tensor::from_vec(&[2], vec![2.0, 4.0]).unwrap();
        a.add_scaled(&g, -0.5);
        assert_eq!(a.data(), &[0.0, -1.0]);
        a.scale(3.0);
        assert_eq!(a.data(), &[0.0, -3.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[4], vec![1.0, -5.0, 2.0, 2.0]).unwrap();
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -5.0);
        assert_eq!(a.max_abs(), 5.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 2.0, 2.0, 5.0, 1.0, -1.0]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn channel_stats_match_manual() {
        // N=2, C=2, H=1, W=2
        let t = Tensor::from_vec(
            &[2, 2, 1, 2],
            vec![
                1.0, 3.0, // n0 c0
                10.0, 10.0, // n0 c1
                5.0, 7.0, // n1 c0
                20.0, 20.0, // n1 c1
            ],
        )
        .unwrap();
        let means = t.channel_means();
        assert_eq!(means, vec![4.0, 15.0]);
        let vars = t.channel_vars(&means);
        // c0: values 1,3,5,7 -> var = mean((x-4)^2) = (9+1+1+9)/4 = 5
        // c1: values 10,10,20,20 -> var = 25
        assert_eq!(vars, vec![5.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_add_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
