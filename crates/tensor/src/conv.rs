//! im2col / col2im lowering for NCHW convolutions.
//!
//! A convolution of an `(N, C_in, H, W)` input with `(C_out, C_in, K_h, K_w)`
//! weights lowers to the matrix product `W_mat · cols` where
//! `W_mat: (C_out, C_in·K_h·K_w)` and `cols: (C_in·K_h·K_w, N·OH·OW)`.
//! [`col2im`] is the exact adjoint of [`im2col`] (a scatter-add), which is
//! what the convolution backward pass needs — a property checked by a
//! dedicated adjointness test.

use serde::{Deserialize, Serialize};

use crate::exec::ExecCtx;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution: input size, kernel, stride and padding.
///
/// Constructed once per layer; provides the derived output size and the
/// `N_tot` count (multiplies per output activation) the AMS error model
/// needs.
///
/// # Example
///
/// ```
/// use ams_tensor::ConvGeom;
/// let g = ConvGeom::new(4, 3, 16, 16, 3, 3, 1, 1);
/// assert_eq!((g.oh, g.ow), (16, 16));
/// assert_eq!(g.n_tot(), 3 * 3 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeom {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height, derived.
    pub oh: usize,
    /// Output width, derived.
    pub ow: usize,
}

impl ConvGeom {
    /// Computes the full geometry from the basic parameters.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (minus padding) does not fit in the input,
    /// `stride == 0`, or the padded extent `h + 2·pad` / `w + 2·pad`
    /// overflows `usize` (adversarial inputs must fail loudly, not wrap
    /// into a bogus geometry).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        c_in: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        let padded = |extent: usize, axis: &str| {
            pad.checked_mul(2)
                .and_then(|p2| extent.checked_add(p2))
                .unwrap_or_else(|| {
                    panic!(
                        "ConvGeom: padded {axis} extent overflows usize \
                         ({axis}={extent}, pad={pad})"
                    )
                })
        };
        let (ph, pw) = (padded(h, "h"), padded(w, "w"));
        assert!(
            ph >= kh && pw >= kw,
            "kernel {kh}x{kw} does not fit input {h}x{w} with padding {pad}"
        );
        let oh = (ph - kh) / stride + 1;
        let ow = (pw - kw) / stride + 1;
        ConvGeom {
            n,
            c_in,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
            oh,
            ow,
        }
    }

    /// Number of multiplications needed per output activation
    /// (`N_tot = C_in · K_h · K_w` in the paper's notation).
    pub fn n_tot(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// Number of columns in the lowered matrix (`N · OH · OW`).
    pub fn cols(&self) -> usize {
        self.n * self.oh * self.ow
    }

    /// Number of rows in the lowered matrix (`C_in · K_h · K_w`).
    pub fn rows(&self) -> usize {
        self.n_tot()
    }
}

/// Lowers an `(N, C, H, W)` input to the `(C·K_h·K_w, N·OH·OW)` column
/// matrix of a convolution with the given geometry.
///
/// Serial wrapper over [`im2col_in`]. Out-of-bounds taps (padding)
/// contribute zeros.
///
/// # Panics
///
/// Panics if `input` is not 4-D or disagrees with `geom`.
pub fn im2col(input: &Tensor, geom: &ConvGeom) -> Tensor {
    im2col_in(&ExecCtx::serial(), input, geom)
}

/// [`im2col`] splitting the `(ci, ki, kj)` tap rows of the column matrix
/// across the context's workers.
///
/// Each row of the output is written by exactly one worker running the
/// same gather loop as the serial version, so results are bit-identical
/// for any thread count.
///
/// # Panics
///
/// Panics if `input` is not 4-D or disagrees with `geom`.
pub fn im2col_in(ctx: &ExecCtx, input: &Tensor, geom: &ConvGeom) -> Tensor {
    let (n, c, h, w) = input.dims4();
    assert_eq!(
        (n, c, h, w),
        (geom.n, geom.c_in, geom.h, geom.w),
        "im2col: input dims disagree with geometry"
    );
    let cols_n = geom.cols();
    let rows_n = geom.rows();
    // Pooled and zero-filled: padding taps rely on the zeros.
    let mut cols = ctx.workspace().take_tensor(&[rows_n, cols_n]);
    if rows_n == 0 || cols_n == 0 {
        return cols;
    }
    let src = input.data();
    let (kh, kw, stride, pad, oh, ow) = (geom.kh, geom.kw, geom.stride, geom.pad, geom.oh, geom.ow);
    ctx.for_each_chunk(cols.data_mut(), cols_n, cols_n, |row, drow| {
        let ci = row / (kh * kw);
        let ki = row / kw % kh;
        let kj = row % kw;
        for ni in 0..n {
            let src_plane = &src[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            for ohi in 0..oh {
                let ih = (ohi * stride + ki) as isize - pad as isize;
                let dbase = (ni * oh + ohi) * ow;
                if ih < 0 || ih >= h as isize {
                    continue; // whole output row reads padding for this tap
                }
                let ih = ih as usize;
                for owi in 0..ow {
                    let iw = (owi * stride + kj) as isize - pad as isize;
                    if iw < 0 || iw >= w as isize {
                        continue;
                    }
                    drow[dbase + owi] = src_plane[ih * w + iw as usize];
                }
            }
        }
    });
    cols
}

/// Adjoint of [`im2col`]: scatter-adds a `(C·K_h·K_w, N·OH·OW)` column
/// matrix back into an `(N, C, H, W)` tensor.
///
/// Serial wrapper over [`col2im_in`]. Used for the input-gradient of a
/// convolution.
///
/// # Panics
///
/// Panics if `cols` is not 2-D or disagrees with `geom`.
pub fn col2im(cols: &Tensor, geom: &ConvGeom) -> Tensor {
    col2im_in(&ExecCtx::serial(), cols, geom)
}

/// [`col2im`] splitting the `(n, c)` output planes across the context's
/// workers.
///
/// Kernel taps scatter into *overlapping* input pixels, so the tap rows
/// that parallelize [`im2col_in`] would race here; output planes are
/// disjoint instead, and within a plane the per-element accumulation
/// order (`ki`, `kj`, `ohi`, `owi` ascending) is exactly the serial
/// kernel's, so results are bit-identical for any thread count.
///
/// # Panics
///
/// Panics if `cols` is not 2-D or disagrees with `geom`.
pub fn col2im_in(ctx: &ExecCtx, cols: &Tensor, geom: &ConvGeom) -> Tensor {
    assert_eq!(cols.rank(), 2, "col2im: expected a 2-D column matrix");
    assert_eq!(
        cols.dims(),
        &[geom.rows(), geom.cols()],
        "col2im: column matrix dims disagree with geometry"
    );
    let (n, c, h, w) = (geom.n, geom.c_in, geom.h, geom.w);
    // Pooled and zero-filled: the scatter-add needs a zero base.
    let mut out = ctx.workspace().take_tensor(&[n, c, h, w]);
    let plane = h * w;
    if n * c == 0 || plane == 0 {
        return out;
    }
    let src = cols.data();
    let cols_n = geom.cols();
    let (kh, kw, stride, pad, oh, ow) = (geom.kh, geom.kw, geom.stride, geom.pad, geom.oh, geom.ow);
    ctx.for_each_chunk(out.data_mut(), plane, kh * kw * oh * ow, |pi, dplane| {
        let (ni, ci) = (pi / c, pi % c);
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let srow = &src[row * cols_n..(row + 1) * cols_n];
                for ohi in 0..oh {
                    let ih = (ohi * stride + ki) as isize - pad as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    let ih = ih as usize;
                    let sbase = (ni * oh + ohi) * ow;
                    for owi in 0..ow {
                        let iw = (owi * stride + kj) as isize - pad as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        dplane[ih * w + iw as usize] += srow[sbase + owi];
                    }
                }
            }
        }
    });
    out
}

/// Reinterprets a `(C_out, N·OH·OW)` product matrix as an `(N, C_out, OH, OW)`
/// activation tensor.
///
/// # Panics
///
/// Panics if the matrix dims disagree with the geometry / `c_out`.
pub fn mat_to_nchw(mat: &Tensor, geom: &ConvGeom, c_out: usize) -> Tensor {
    mat_to_nchw_in(&ExecCtx::serial(), mat, geom, c_out)
}

/// [`mat_to_nchw`] drawing the output buffer from the context's
/// workspace (the copy itself is memory-bound and stays serial).
///
/// # Panics
///
/// Panics if the matrix dims disagree with the geometry / `c_out`.
pub fn mat_to_nchw_in(ctx: &ExecCtx, mat: &Tensor, geom: &ConvGeom, c_out: usize) -> Tensor {
    assert_eq!(
        mat.dims(),
        &[c_out, geom.cols()],
        "mat_to_nchw: matrix dims disagree with geometry"
    );
    let (n, oh, ow) = (geom.n, geom.oh, geom.ow);
    let plane = oh * ow;
    let mut out = ctx.workspace().take_tensor(&[n, c_out, oh, ow]);
    let src = mat.data();
    let dst = out.data_mut();
    for co in 0..c_out {
        let srow = &src[co * n * plane..(co + 1) * n * plane];
        for ni in 0..n {
            let dbase = (ni * c_out + co) * plane;
            dst[dbase..dbase + plane].copy_from_slice(&srow[ni * plane..(ni + 1) * plane]);
        }
    }
    out
}

/// Inverse of [`mat_to_nchw`]: flattens an `(N, C, OH, OW)` tensor into a
/// `(C, N·OH·OW)` matrix (used to lower output gradients).
///
/// # Panics
///
/// Panics if the tensor is not 4-D or disagrees with the geometry.
pub fn nchw_to_mat(t: &Tensor, geom: &ConvGeom) -> Tensor {
    nchw_to_mat_in(&ExecCtx::serial(), t, geom)
}

/// [`nchw_to_mat`] drawing the output buffer from the context's
/// workspace (the copy itself is memory-bound and stays serial).
///
/// # Panics
///
/// Panics if the tensor is not 4-D or disagrees with the geometry.
pub fn nchw_to_mat_in(ctx: &ExecCtx, t: &Tensor, geom: &ConvGeom) -> Tensor {
    let (n, c, oh, ow) = t.dims4();
    assert_eq!(
        (n, oh, ow),
        (geom.n, geom.oh, geom.ow),
        "nchw_to_mat: tensor dims disagree with geometry"
    );
    let plane = oh * ow;
    let mut out = ctx.workspace().take_tensor(&[c, n * plane]);
    let src = t.data();
    let dst = out.data_mut();
    for ci in 0..c {
        let drow = &mut dst[ci * n * plane..(ci + 1) * n * plane];
        for ni in 0..n {
            let sbase = (ni * c + ci) * plane;
            drow[ni * plane..(ni + 1) * plane].copy_from_slice(&src[sbase..sbase + plane]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basic() {
        let g = ConvGeom::new(1, 1, 5, 5, 3, 3, 2, 1);
        assert_eq!((g.oh, g.ow), (3, 3));
        assert_eq!(g.n_tot(), 9);
        assert_eq!(g.cols(), 9);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: cols should equal the input
        // flattened per channel.
        let g = ConvGeom::new(2, 3, 4, 4, 1, 1, 1, 0);
        let input = Tensor::from_vec(&[2, 3, 4, 4], (0..96).map(|i| i as f32).collect()).unwrap();
        let cols = im2col(&input, &g);
        assert_eq!(cols.dims(), &[3, 32]);
        // Row ci, column (n, oh, ow) = input[n, ci, oh, ow].
        assert_eq!(cols.at(&[1, 0]), input.at(&[0, 1, 0, 0]));
        assert_eq!(cols.at(&[2, 31]), input.at(&[1, 2, 3, 3]));
    }

    #[test]
    fn im2col_padding_zeros() {
        let g = ConvGeom::new(1, 1, 2, 2, 3, 3, 1, 1);
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&input, &g);
        assert_eq!(cols.dims(), &[9, 4]);
        // Center tap (ki=1,kj=1) always lands inside: all ones.
        for j in 0..4 {
            assert_eq!(cols.at(&[4, j]), 1.0);
        }
        // Top-left tap (ki=0,kj=0) is in-bounds only for output (1,1).
        assert_eq!(cols.at(&[0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 3]), 1.0);
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        use crate::matmul::matmul;
        let g = ConvGeom::new(1, 2, 4, 4, 3, 3, 1, 1);
        let input = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|i| (i as f32 * 0.37).sin()).collect(),
        )
        .unwrap();
        let weight = Tensor::from_vec(
            &[3, 2, 3, 3],
            (0..54).map(|i| (i as f32 * 0.11).cos()).collect(),
        )
        .unwrap();
        let cols = im2col(&input, &g);
        let wmat = weight.reshaped(&[3, 18]);
        let ymat = matmul(&wmat, &cols);
        let y = mat_to_nchw(&ymat, &g, 3);

        // Direct convolution.
        for co in 0..3 {
            for ohi in 0..4usize {
                for owi in 0..4usize {
                    let mut acc = 0.0f32;
                    for ci in 0..2 {
                        for ki in 0..3usize {
                            for kj in 0..3usize {
                                let ih = ohi as isize + ki as isize - 1;
                                let iw = owi as isize + kj as isize - 1;
                                if !(0..4).contains(&ih) || !(0..4).contains(&iw) {
                                    continue;
                                }
                                acc += weight.at(&[co, ci, ki, kj])
                                    * input.at(&[0, ci, ih as usize, iw as usize]);
                            }
                        }
                    }
                    let got = y.at(&[0, co, ohi, owi]);
                    assert!(
                        (got - acc).abs() < 1e-4,
                        "mismatch at {co},{ohi},{owi}: {got} vs {acc}"
                    );
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        use crate::rng;
        use rand::Rng;
        let mut r = rng::seeded(42);
        let g = ConvGeom::new(2, 3, 5, 5, 3, 3, 2, 1);
        let mut x = Tensor::zeros(&[2, 3, 5, 5]);
        for v in x.data_mut() {
            *v = r.gen::<f32>() - 0.5;
        }
        let mut y = Tensor::zeros(&[g.rows(), g.cols()]);
        for v in y.data_mut() {
            *v = r.gen::<f32>() - 0.5;
        }
        let lhs: f32 = im2col(&x, &g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3,
            "adjointness violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn parallel_im2col_bit_identical_to_serial() {
        use crate::exec::Parallelism;
        use crate::rng;
        let g = ConvGeom::new(3, 4, 9, 7, 3, 2, 2, 1);
        let mut x = Tensor::zeros(&[3, 4, 9, 7]);
        let mut r = rng::seeded(9);
        rng::fill_uniform(&mut x, -1.0, 1.0, &mut r);
        let want = im2col_in(&ExecCtx::serial(), &x, &g);
        for threads in [2, 5, 8] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            assert_eq!(im2col_in(&ctx, &x, &g), want, "threads = {threads}");
            assert!(ctx.parallel_dispatch_count() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn geometry_rejects_pad_overflow() {
        // h + 2*pad wraps: must panic with a clear message, not compute a
        // garbage output size.
        let _ = ConvGeom::new(1, 1, 8, 8, 3, 3, 1, usize::MAX / 2 + 1);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn geometry_rejects_extent_overflow() {
        let _ = ConvGeom::new(1, 1, usize::MAX - 1, 8, 3, 3, 1, 1);
    }

    #[test]
    fn parallel_col2im_bit_identical_to_serial() {
        use crate::exec::Parallelism;
        use crate::rng;
        // Overlapping taps (stride < kernel) so the scatter-add actually
        // accumulates, plus a ragged plane count.
        let g = ConvGeom::new(3, 5, 9, 7, 3, 3, 1, 1);
        let mut y = Tensor::zeros(&[g.rows(), g.cols()]);
        let mut r = rng::seeded(17);
        rng::fill_uniform(&mut y, -1.0, 1.0, &mut r);
        let want = col2im_in(&ExecCtx::serial(), &y, &g);
        for threads in [2, 3, 8] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            let got = col2im_in(&ctx, &y, &g);
            assert_eq!(got, want, "threads = {threads}");
            assert!(ctx.parallel_dispatch_count() > 0);
        }
    }

    #[test]
    fn mat_nchw_round_trip() {
        let g = ConvGeom::new(2, 1, 3, 3, 1, 1, 1, 0);
        let t = Tensor::from_vec(&[2, 4, 3, 3], (0..72).map(|i| i as f32).collect()).unwrap();
        let mat = nchw_to_mat(&t, &g);
        let back = mat_to_nchw(&mat, &g, 4);
        assert_eq!(t, back);
    }
}
