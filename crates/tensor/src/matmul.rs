//! Cache-friendly matrix products.
//!
//! These three kernels are the computational backbone of the workspace:
//! im2col convolution is `W · cols`, its weight gradient is `dY · colsᵀ`
//! ([`matmul_a_bt`]) and its input gradient is `Wᵀ · dY` ([`matmul_at_b`]).
//! All kernels use an i-k-j loop order so the innermost loop streams over
//! contiguous rows, which the compiler auto-vectorizes.
//!
//! Each kernel has two forms: the `*_in` form takes an [`ExecCtx`] and
//! splits output rows across its workers, and the plain form is a serial
//! wrapper (`matmul(a, b)` ≡ `matmul_in(&ExecCtx::serial(), a, b)`).
//! Every output element is accumulated by exactly one worker in the same
//! k-ascending order as the serial loop, so results are bit-identical for
//! any thread count.
//!
//! The dense inner loop carries no per-element zero test — a branch there
//! defeats auto-vectorization. Instead [`matmul_in`] measures the lhs
//! density once per call and only switches to a row-skipping kernel when
//! the lhs is mostly zeros (e.g. aggressively quantized weights); the
//! gate depends only on the data, never on the thread count.

use crate::exec::ExecCtx;
use crate::tensor::Tensor;

/// Zero fraction of the lhs above which [`matmul_in`] uses the
/// zero-skipping kernel instead of the dense vectorizable one.
const SPARSE_GATE: f32 = 0.5;

fn dims2(name: &str, t: &Tensor) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{name}: expected a 2-D tensor, got rank {}",
        t.rank()
    );
    (t.dims()[0], t.dims()[1])
}

/// `C = A · B` for 2-D tensors `A: (m, k)` and `B: (k, n)`.
///
/// Serial wrapper over [`matmul_in`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ams_tensor::{Tensor, matmul};
/// # fn main() -> Result<(), ams_tensor::TensorError> {
/// let a = Tensor::from_vec(&[1, 2], vec![3.0, 4.0])?;
/// let b = Tensor::from_vec(&[2, 1], vec![10.0, 100.0])?;
/// assert_eq!(matmul(&a, &b).data(), &[430.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_in(&ExecCtx::serial(), a, b)
}

/// `C = A · B`, splitting rows of `C` across the context's workers.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
pub fn matmul_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul lhs", a);
    let (kb, n) = dims2("matmul rhs", b);
    assert_eq!(ka, kb, "matmul: inner dimensions disagree ({ka} vs {kb})");
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return c;
    }
    let (ad, bd) = (a.data(), b.data());
    let sparse_lhs = is_mostly_zero(ad);
    ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
        let arow = &ad[i * ka..(i + 1) * ka];
        if sparse_lhs {
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        } else {
            for (k, &aik) in arow.iter().enumerate() {
                let brow = &bd[k * n..(k + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    });
    c
}

/// Whether at least [`SPARSE_GATE`] of `data` is exactly zero.
fn is_mostly_zero(data: &[f32]) -> bool {
    if data.is_empty() {
        return false;
    }
    let zeros = data.iter().filter(|v| **v == 0.0).count();
    (zeros as f32) >= SPARSE_GATE * data.len() as f32
}

/// `C = Aᵀ · B` for `A: (k, m)` and `B: (k, n)`, without materializing `Aᵀ`.
///
/// Serial wrapper over [`matmul_at_b_in`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_in(&ExecCtx::serial(), a, b)
}

/// `C = Aᵀ · B`, splitting rows of `C` (columns of `A`) across the
/// context's workers.
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at_b_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2("matmul_at_b lhs", a);
    let (kb, n) = dims2("matmul_at_b rhs", b);
    assert_eq!(
        ka, kb,
        "matmul_at_b: leading dimensions disagree ({ka} vs {kb})"
    );
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return c;
    }
    let (ad, bd) = (a.data(), b.data());
    ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
        // Column i of A is strided, but the j loop streams contiguously
        // over rows of B and C, which is what vectorizes.
        for k in 0..ka {
            let aki = ad[k * m + i];
            if aki == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aki * bj;
            }
        }
    });
    c
}

/// `C = A · Bᵀ` for `A: (m, k)` and `B: (n, k)`, without materializing `Bᵀ`.
///
/// Serial wrapper over [`matmul_a_bt_in`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_in(&ExecCtx::serial(), a, b)
}

/// `C = A · Bᵀ`, splitting rows of `C` across the context's workers.
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul_a_bt lhs", a);
    let (n, kb) = dims2("matmul_a_bt rhs", b);
    assert_eq!(
        ka, kb,
        "matmul_a_bt: trailing dimensions disagree ({ka} vs {kb})"
    );
    let mut c = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return c;
    }
    let (ad, bd) = (a.data(), b.data());
    ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
        let arow = &ad[i * ka..(i + 1) * ka];
        for (j, cj) in crow.iter_mut().enumerate() {
            let brow = &bd[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cj = acc;
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Parallelism;

    fn t(dims: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(dims, v).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = t(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree_with_plain_matmul() {
        let a = t(&[3, 2], vec![1.0, -1.0, 2.0, 0.5, -3.0, 4.0]);
        let b = t(&[3, 4], (0..12).map(|i| i as f32 * 0.25 - 1.0).collect());
        // Aᵀ·B via explicit transpose.
        let mut at = Tensor::zeros(&[2, 3]);
        for i in 0..3 {
            for j in 0..2 {
                at.set(&[j, i], a.at(&[i, j]));
            }
        }
        assert_eq!(matmul_at_b(&a, &b), matmul(&at, &b));

        let c = t(&[4, 2], (0..8).map(|i| (i as f32).sin()).collect());
        let mut ct = Tensor::zeros(&[2, 4]);
        for i in 0..4 {
            for j in 0..2 {
                ct.set(&[j, i], c.at(&[i, j]));
            }
        }
        let lhs = t(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let got = matmul_a_bt(&lhs, &c);
        let want = matmul(&lhs, &ct);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 2]);
    }

    fn random(dims: &[usize], seed: u64) -> Tensor {
        use crate::rng;
        let mut t = Tensor::zeros(dims);
        let mut r = rng::seeded(seed);
        rng::fill_uniform(&mut t, -1.0, 1.0, &mut r);
        t
    }

    #[test]
    fn parallel_kernels_bit_identical_to_serial() {
        let a = random(&[33, 17], 1);
        let b = random(&[17, 29], 2);
        let at = random(&[17, 33], 3);
        let bt = random(&[29, 17], 4);
        let serial = ExecCtx::serial();
        for threads in [2, 3, 8] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            assert_eq!(matmul_in(&serial, &a, &b), matmul_in(&ctx, &a, &b));
            assert_eq!(
                matmul_at_b_in(&serial, &at, &b),
                matmul_at_b_in(&ctx, &at, &b)
            );
            assert_eq!(
                matmul_a_bt_in(&serial, &a, &bt),
                matmul_a_bt_in(&ctx, &a, &bt)
            );
            assert!(ctx.parallel_dispatch_count() >= 3, "threads = {threads}");
        }
    }

    #[test]
    fn sparse_gate_matches_reference_result() {
        // A mostly-zero lhs takes the skipping kernel; it must agree with
        // a naive reference product (and a dense lhs must too).
        for sparse in [true, false] {
            let mut a = random(&[12, 24], 5);
            if sparse {
                for (i, v) in a.data_mut().iter_mut().enumerate() {
                    if i % 4 != 0 {
                        *v = 0.0;
                    }
                }
            }
            assert_eq!(is_mostly_zero(a.data()), sparse);
            let b = random(&[24, 9], 6);
            let got = matmul(&a, &b);
            for i in 0..12 {
                for j in 0..9 {
                    let mut want = 0.0f32;
                    for k in 0..24 {
                        want += a.at(&[i, k]) * b.at(&[k, j]);
                    }
                    assert!((got.at(&[i, j]) - want).abs() < 1e-5);
                }
            }
        }
    }
}
