//! Cache-friendly matrix products.
//!
//! These three kernels are the computational backbone of the workspace:
//! im2col convolution is `W · cols`, its weight gradient is `dY · colsᵀ`
//! ([`matmul_a_bt`]) and its input gradient is `Wᵀ · dY` ([`matmul_at_b`]).
//! All kernels use an i-k-j loop order so the innermost loop streams over
//! contiguous rows, which the compiler auto-vectorizes.

use crate::tensor::Tensor;

fn dims2(name: &str, t: &Tensor) -> (usize, usize) {
    assert_eq!(t.rank(), 2, "{name}: expected a 2-D tensor, got rank {}", t.rank());
    (t.dims()[0], t.dims()[1])
}

/// `C = A · B` for 2-D tensors `A: (m, k)` and `B: (k, n)`.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ams_tensor::{Tensor, matmul};
/// # fn main() -> Result<(), ams_tensor::TensorError> {
/// let a = Tensor::from_vec(&[1, 2], vec![3.0, 4.0])?;
/// let b = Tensor::from_vec(&[2, 1], vec![10.0, 100.0])?;
/// assert_eq!(matmul(&a, &b).data(), &[430.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul lhs", a);
    let (kb, n) = dims2("matmul rhs", b);
    assert_eq!(ka, kb, "matmul: inner dimensions disagree ({ka} vs {kb})");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        let crow = &mut cd[i * n..(i + 1) * n];
        for k in 0..ka {
            let aik = ad[i * ka + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
    c
}

/// `C = Aᵀ · B` for `A: (k, m)` and `B: (k, n)`, without materializing `Aᵀ`.
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2("matmul_at_b lhs", a);
    let (kb, n) = dims2("matmul_at_b rhs", b);
    assert_eq!(ka, kb, "matmul_at_b: leading dimensions disagree ({ka} vs {kb})");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aki * bj;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` for `A: (m, k)` and `B: (n, k)`, without materializing `Bᵀ`.
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul_a_bt lhs", a);
    let (n, kb) = dims2("matmul_a_bt rhs", b);
    assert_eq!(ka, kb, "matmul_a_bt: trailing dimensions disagree ({ka} vs {kb})");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bd[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            cd[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(dims, v).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = t(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree_with_plain_matmul() {
        let a = t(&[3, 2], vec![1.0, -1.0, 2.0, 0.5, -3.0, 4.0]);
        let b = t(&[3, 4], (0..12).map(|i| i as f32 * 0.25 - 1.0).collect());
        // Aᵀ·B via explicit transpose.
        let mut at = Tensor::zeros(&[2, 3]);
        for i in 0..3 {
            for j in 0..2 {
                at.set(&[j, i], a.at(&[i, j]));
            }
        }
        assert_eq!(matmul_at_b(&a, &b), matmul(&at, &b));

        let c = t(&[4, 2], (0..8).map(|i| (i as f32).sin()).collect());
        let mut ct = Tensor::zeros(&[2, 4]);
        for i in 0..4 {
            for j in 0..2 {
                ct.set(&[j, i], c.at(&[i, j]));
            }
        }
        let lhs = t(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let got = matmul_a_bt(&lhs, &c);
        let want = matmul(&lhs, &ct);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 2]);
    }
}
