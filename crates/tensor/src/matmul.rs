//! Cache-blocked, register-tiled matrix products.
//!
//! These three kernels are the computational backbone of the workspace:
//! im2col convolution is `W · cols`, its weight gradient is `dY · colsᵀ`
//! ([`matmul_a_bt`]) and its input gradient is `Wᵀ · dY` ([`matmul_at_b`]).
//!
//! # Kernel architecture
//!
//! Large products run a GotoBLAS-style tiled kernel: both operands are
//! first *packed* into contiguous panel buffers (lhs in `MR`-row bands,
//! rhs in `NR`-column slivers, both laid out k-major), and an `MR×NR`
//! register microkernel then accumulates each output tile over the full
//! reduction dimension. The packed layout makes every microkernel load
//! sequential, and a worker keeps one rhs panel hot in cache across all
//! of its row bands. The microkernel is plain indexed Rust over
//! `chunks_exact` slices — no intrinsics, no `unsafe` — which LLVM
//! auto-vectorizes. Products too small to amortize packing
//! (`m·n·k <` [`TILE_GATE`]) fall back to a naive i-k-j loop that computes
//! the identical per-element operation chain.
//!
//! # Bit-identity
//!
//! Every output element is a single accumulation chain over `k` in
//! ascending order, started from `0.0`, exactly as in the naive loops the
//! [`matmul_reference`] kernels retain — tiling changes *where* operands
//! are read from, never the order they are combined in. Work is split by
//! output rows and each element is written by exactly one worker, so
//! results are bit-identical for any thread count *and* to the reference
//! kernels (a property the proptest suite asserts via `f32::to_bits`).
//!
//! Each kernel has two forms: the `*_in` form takes an [`ExecCtx`] and
//! splits output row bands across its workers (drawing pack buffers from
//! the context's [`crate::Workspace`]), and the plain form is a serial
//! wrapper (`matmul(a, b)` ≡ `matmul_in(&ExecCtx::serial(), a, b)`).
//!
//! # Sparse lhs gate
//!
//! The dense microkernel carries no per-element zero test — a branch
//! there defeats auto-vectorization. Instead [`matmul_in`] checks the lhs
//! density once per call and switches to a row-skipping kernel when the
//! lhs is mostly zeros (e.g. aggressively quantized weights). Callers
//! that know their operand's density ahead of time (weights are measured
//! once at quantize time) pass a [`Density`] hint to
//! [`matmul_hinted_in`]; ad-hoc callers get a sampled scan of the first
//! [`DENSITY_SAMPLE`] elements. The gate depends only on the data, never
//! on the thread count.

use crate::exec::ExecCtx;
use crate::tensor::Tensor;

/// Zero fraction of the lhs above which [`matmul_in`] uses the
/// zero-skipping kernel instead of the dense vectorizable one.
const SPARSE_GATE: f32 = 0.5;

/// How many leading elements a [`Density::Sample`] scan inspects.
pub const DENSITY_SAMPLE: usize = 4096;

/// Rows per lhs panel band (microkernel height). With `NR = 8` the
/// accumulator tile is 8 SSE registers — within the baseline x86-64
/// budget, so LLVM keeps the whole tile in registers.
const MR: usize = 4;

/// Columns per rhs panel sliver (microkernel width).
const NR: usize = 8;

/// Products below this many scalar multiply-adds skip packing and run the
/// naive loop (which computes the identical operation chain).
const TILE_GATE: usize = 4096;

/// Caller-supplied knowledge about the zero fraction of a matmul lhs,
/// deciding the dense-vs-skipping kernel without rescanning the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Density {
    /// Unknown: sample the first [`DENSITY_SAMPLE`] elements.
    #[default]
    Sample,
    /// Known mostly nonzero; always use the dense kernel.
    Dense,
    /// Known mostly zero; always use the row-skipping kernel.
    Sparse,
}

impl Density {
    /// Resolves the hint against the data (only [`Density::Sample`]
    /// actually reads it).
    fn is_sparse(self, data: &[f32]) -> bool {
        match self {
            Density::Dense => false,
            Density::Sparse => true,
            Density::Sample => {
                let sample = &data[..data.len().min(DENSITY_SAMPLE)];
                mostly_zero(sample)
            }
        }
    }

    /// Measures a full slice: the hint quantized-weight producers cache.
    pub fn measure(data: &[f32]) -> Density {
        if mostly_zero(data) {
            Density::Sparse
        } else {
            Density::Dense
        }
    }
}

/// Whether at least [`SPARSE_GATE`] of `data` is exactly zero.
fn mostly_zero(data: &[f32]) -> bool {
    if data.is_empty() {
        return false;
    }
    let zeros = data.iter().filter(|v| **v == 0.0).count();
    (zeros as f32) >= SPARSE_GATE * data.len() as f32
}

fn dims2(name: &str, t: &Tensor) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "{name}: expected a 2-D tensor, got rank {}",
        t.rank()
    );
    (t.dims()[0], t.dims()[1])
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs `width`-wide column slivers of a row-major `src` (row stride
/// `row_len`, `kdim` rows) into k-major panels of width `panel_w`:
/// `out[p][kk*panel_w + jr] = src[kk*row_len + p*panel_w + jr]`.
/// Pad lanes (`jr >= width` in the last panel) are left untouched — the
/// caller provides a zeroed buffer.
fn pack_panels(
    src: &[f32],
    row_len: usize,
    kdim: usize,
    total: usize,
    panel_w: usize,
    out: &mut [f32],
) {
    let mut j0 = 0;
    let mut panel = 0;
    while j0 < total {
        let width = panel_w.min(total - j0);
        let dst = &mut out[panel * panel_w * kdim..(panel + 1) * panel_w * kdim];
        for kk in 0..kdim {
            let s = &src[kk * row_len + j0..kk * row_len + j0 + width];
            dst[kk * panel_w..kk * panel_w + width].copy_from_slice(s);
        }
        j0 += panel_w;
        panel += 1;
    }
}

/// Transposed variant of [`pack_panels`]: slivers are taken along the
/// *rows* of `src` (length-`kdim` each, row stride `row_len`):
/// `out[p][kk*panel_w + jr] = src[(p*panel_w + jr)*row_len + kk]`.
fn pack_panels_t(
    src: &[f32],
    row_len: usize,
    kdim: usize,
    total: usize,
    panel_w: usize,
    out: &mut [f32],
) {
    let mut j0 = 0;
    let mut panel = 0;
    while j0 < total {
        let width = panel_w.min(total - j0);
        let dst = &mut out[panel * panel_w * kdim..(panel + 1) * panel_w * kdim];
        for jr in 0..width {
            let srow = &src[(j0 + jr) * row_len..(j0 + jr) * row_len + kdim];
            for (kk, &v) in srow.iter().enumerate() {
                dst[kk * panel_w + jr] = v;
            }
        }
        j0 += panel_w;
        panel += 1;
    }
}

// ---------------------------------------------------------------------------
// Microkernels
// ---------------------------------------------------------------------------

/// The `MR×NR` register tile: accumulates `ap · bp` over the full
/// reduction dimension, `k` ascending, one chain per tile element.
#[inline]
fn microkernel(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ak, bk) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (accr, &a) in acc.iter_mut().zip(ak) {
            for (cv, &b) in accr.iter_mut().zip(bk) {
                *cv += a * b;
            }
        }
    }
}

/// [`microkernel`] with the lhs zero-skip the naive `matmul_at_b` kernel
/// always had: `x + 0.0·b` is not a bitwise no-op for `-0.0`/`NaN`/`Inf`
/// operands, so skipping must happen in the tiled kernel too to stay
/// bit-identical to the reference.
#[inline]
fn microkernel_skip_zero(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ak, bk) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (accr, &a) in acc.iter_mut().zip(ak) {
            if a == 0.0 {
                continue;
            }
            for (cv, &b) in accr.iter_mut().zip(bk) {
                *cv += a * b;
            }
        }
    }
}

/// One worker's share of the tiled product: all `MR`-row bands of `span`
/// (the bands starting at global band index `band0`) against every rhs
/// panel. The rhs panel loop is outermost so each `NR·k` panel stays
/// cache-hot across all of the span's bands.
///
/// A free function, not a closure body, on purpose: when this code lives
/// inside the `for_each_span` closure, the optimizer keeps the capture
/// environment in memory (the closure is also reachable from the spawn
/// path) and re-loads the pack pointers inside the microkernel loop,
/// spilling the accumulator tile — a ~6× slowdown. With plain slice
/// parameters the microkernel keeps its `MR×NR` accumulators in
/// registers.
fn gemm_span(
    band0: usize,
    span: &mut [f32],
    n: usize,
    kdim: usize,
    apack: &[f32],
    bpack: &[f32],
    skip_zero_lhs: bool,
) {
    let n_blocks = n.div_ceil(NR);
    let rows_here = span.len() / n;
    for jb in 0..n_blocks {
        let j0 = jb * NR;
        let cols = NR.min(n - j0);
        let bp = &bpack[jb * NR * kdim..(jb + 1) * NR * kdim];
        let mut bi = 0;
        while bi * MR < rows_here {
            let rows = MR.min(rows_here - bi * MR);
            let ap = &apack[(band0 + bi) * MR * kdim..(band0 + bi + 1) * MR * kdim];
            let mut acc = [[0.0f32; NR]; MR];
            if skip_zero_lhs {
                microkernel_skip_zero(ap, bp, &mut acc);
            } else {
                microkernel(ap, bp, &mut acc);
            }
            for (ir, accr) in acc.iter().enumerate().take(rows) {
                let base = (bi * MR + ir) * n + j0;
                span[base..base + cols].copy_from_slice(&accr[..cols]);
            }
            bi += 1;
        }
    }
}

/// Shared tiled driver: `out` is the `(m, n)` output, `apack`/`bpack` the
/// fully packed operands. Work splits by `MR`-row bands across workers;
/// each worker's contiguous span is handed to [`gemm_span`].
fn tiled_gemm(
    ctx: &ExecCtx,
    n: usize,
    kdim: usize,
    apack: &[f32],
    bpack: &[f32],
    skip_zero_lhs: bool,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len() % n.max(1), 0);
    ctx.for_each_span(out, MR * n, MR * n * kdim, |band0, span| {
        gemm_span(band0, span, n, kdim, apack, bpack, skip_zero_lhs);
    });
}

// ---------------------------------------------------------------------------
// matmul: C = A · B
// ---------------------------------------------------------------------------

/// `C = A · B` for 2-D tensors `A: (m, k)` and `B: (k, n)`.
///
/// Serial wrapper over [`matmul_in`]; pass an [`ExecCtx`] to the `_in`
/// variant to split the work across worker threads (results are
/// bit-identical either way).
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ams_tensor::{matmul, matmul_in, ExecCtx, Tensor};
/// # fn main() -> Result<(), ams_tensor::TensorError> {
/// let a = Tensor::from_vec(&[1, 2], vec![3.0, 4.0])?;
/// let b = Tensor::from_vec(&[2, 1], vec![10.0, 100.0])?;
/// assert_eq!(matmul(&a, &b).data(), &[430.0]);
/// // The parallel form gives bit-identical results for any thread count:
/// let ctx = ExecCtx::with_threads(4);
/// assert_eq!(matmul_in(&ctx, &a, &b), matmul(&a, &b));
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_in(&ExecCtx::serial(), a, b)
}

/// `C = A · B`, splitting row bands of `C` across the context's workers.
///
/// The lhs density is sampled per call; callers that already know it
/// should use [`matmul_hinted_in`].
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
pub fn matmul_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor) -> Tensor {
    matmul_hinted_in(ctx, a, b, Density::Sample)
}

/// [`matmul_in`] with a caller-supplied lhs [`Density`] hint, so hot
/// paths that quantize their weights once per forward do not rescan them
/// here.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
pub fn matmul_hinted_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor, lhs_density: Density) -> Tensor {
    let (m, ka) = dims2("matmul lhs", a);
    let (kb, n) = dims2("matmul rhs", b);
    assert_eq!(ka, kb, "matmul: inner dimensions disagree ({ka} vs {kb})");
    let ws = ctx.workspace();
    let mut c = ws.take_tensor(&[m, n]);
    if m == 0 || n == 0 || ka == 0 {
        return c;
    }
    let (ad, bd) = (a.data(), b.data());
    if lhs_density.is_sparse(ad) {
        // Row-skipping kernel for mostly-zero lhs.
        ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
            let arow = &ad[i * ka..(i + 1) * ka];
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        });
        return c;
    }
    if m * n * ka < TILE_GATE {
        ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
            let arow = &ad[i * ka..(i + 1) * ka];
            for (k, &aik) in arow.iter().enumerate() {
                let brow = &bd[k * n..(k + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        });
        return c;
    }
    // A is (m, k) row-major: bands along m pack transposed rows.
    let mut apack = ws.take(m.div_ceil(MR) * MR * ka);
    pack_panels_t(ad, ka, ka, m, MR, &mut apack);
    // B is (k, n) row-major: slivers along n pack directly.
    let mut bpack = ws.take(n.div_ceil(NR) * NR * ka);
    pack_panels(bd, n, ka, n, NR, &mut bpack);
    tiled_gemm(ctx, n, ka, &apack, &bpack, false, c.data_mut());
    ws.recycle_vec(apack);
    ws.recycle_vec(bpack);
    c
}

// ---------------------------------------------------------------------------
// matmul_at_b: C = Aᵀ · B
// ---------------------------------------------------------------------------

/// `C = Aᵀ · B` for `A: (k, m)` and `B: (k, n)`, without materializing `Aᵀ`.
///
/// Serial wrapper over [`matmul_at_b_in`] (the parallel variant).
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_at_b_in(&ExecCtx::serial(), a, b)
}

/// `C = Aᵀ · B`, splitting row bands of `C` (columns of `A`) across the
/// context's workers.
///
/// Keeps the per-`k` lhs zero skip of the original kernel (the lhs here
/// is typically a quantized weight matrix), in the tiled and the naive
/// path alike.
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at_b_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2("matmul_at_b lhs", a);
    let (kb, n) = dims2("matmul_at_b rhs", b);
    assert_eq!(
        ka, kb,
        "matmul_at_b: leading dimensions disagree ({ka} vs {kb})"
    );
    let ws = ctx.workspace();
    let mut c = ws.take_tensor(&[m, n]);
    if m == 0 || n == 0 || ka == 0 {
        return c;
    }
    let (ad, bd) = (a.data(), b.data());
    if m * n * ka < TILE_GATE {
        ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
            // Column i of A is strided, but the j loop streams contiguously
            // over rows of B and C, which is what vectorizes.
            for k in 0..ka {
                let aki = ad[k * m + i];
                if aki == 0.0 {
                    continue;
                }
                let brow = &bd[k * n..(k + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aki * bj;
                }
            }
        });
        return c;
    }
    // Aᵀ's rows are A's columns: slivers along m pack directly from the
    // (k, m) layout.
    let mut apack = ws.take(m.div_ceil(MR) * MR * ka);
    pack_panels(ad, m, ka, m, MR, &mut apack);
    let mut bpack = ws.take(n.div_ceil(NR) * NR * ka);
    pack_panels(bd, n, ka, n, NR, &mut bpack);
    tiled_gemm(ctx, n, ka, &apack, &bpack, true, c.data_mut());
    ws.recycle_vec(apack);
    ws.recycle_vec(bpack);
    c
}

// ---------------------------------------------------------------------------
// matmul_a_bt: C = A · Bᵀ
// ---------------------------------------------------------------------------

/// `C = A · Bᵀ` for `A: (m, k)` and `B: (n, k)`, without materializing `Bᵀ`.
///
/// Serial wrapper over [`matmul_a_bt_in`] (the parallel variant).
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_a_bt_in(&ExecCtx::serial(), a, b)
}

/// `C = A · Bᵀ`, splitting row bands of `C` across the context's workers.
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt_in(ctx: &ExecCtx, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul_a_bt lhs", a);
    let (n, kb) = dims2("matmul_a_bt rhs", b);
    assert_eq!(
        ka, kb,
        "matmul_a_bt: trailing dimensions disagree ({ka} vs {kb})"
    );
    let ws = ctx.workspace();
    let mut c = ws.take_tensor(&[m, n]);
    if m == 0 || n == 0 || ka == 0 {
        return c;
    }
    let (ad, bd) = (a.data(), b.data());
    if m * n * ka < TILE_GATE {
        ctx.for_each_chunk(c.data_mut(), n, ka * n, |i, crow| {
            let arow = &ad[i * ka..(i + 1) * ka];
            for (j, cj) in crow.iter_mut().enumerate() {
                let brow = &bd[j * kb..(j + 1) * kb];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *cj = acc;
            }
        });
        return c;
    }
    // Both operands are k-minor: both pack transposed.
    let mut apack = ws.take(m.div_ceil(MR) * MR * ka);
    pack_panels_t(ad, ka, ka, m, MR, &mut apack);
    let mut bpack = ws.take(n.div_ceil(NR) * NR * ka);
    pack_panels_t(bd, ka, ka, n, NR, &mut bpack);
    tiled_gemm(ctx, n, ka, &apack, &bpack, false, c.data_mut());
    ws.recycle_vec(apack);
    ws.recycle_vec(bpack);
    c
}

// ---------------------------------------------------------------------------
// Reference kernels
// ---------------------------------------------------------------------------

/// The naive serial `C = A · B` the tiled [`matmul`] must match
/// bit-for-bit: i-k-j loops, `k` ascending, with the same full-scan
/// sparse-lhs gate the pre-tiling kernel had. Retained as the oracle for
/// the bit-identity proptests and the `bench_report` baseline.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul lhs", a);
    let (kb, n) = dims2("matmul rhs", b);
    assert_eq!(ka, kb, "matmul: inner dimensions disagree ({ka} vs {kb})");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let sparse_lhs = mostly_zero(ad);
    for (i, crow) in c.data_mut().chunks_mut(n.max(1)).enumerate().take(m) {
        let arow = &ad[i * ka..(i + 1) * ka];
        for (k, &aik) in arow.iter().enumerate() {
            if sparse_lhs && aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
    c
}

/// The naive serial `C = Aᵀ · B` (with the per-`k` lhs zero skip) the
/// tiled [`matmul_at_b`] must match bit-for-bit.
///
/// # Panics
///
/// Panics if either input is not 2-D or the leading dimensions disagree.
pub fn matmul_at_b_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = dims2("matmul_at_b lhs", a);
    let (kb, n) = dims2("matmul_at_b rhs", b);
    assert_eq!(
        ka, kb,
        "matmul_at_b: leading dimensions disagree ({ka} vs {kb})"
    );
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    for (i, crow) in c.data_mut().chunks_mut(n.max(1)).enumerate().take(m) {
        for k in 0..ka {
            let aki = ad[k * m + i];
            if aki == 0.0 {
                continue;
            }
            let brow = &bd[k * n..(k + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aki * bj;
            }
        }
    }
    c
}

/// The naive serial `C = A · Bᵀ` (per-element dot products, `k`
/// ascending) the tiled [`matmul_a_bt`] must match bit-for-bit.
///
/// # Panics
///
/// Panics if either input is not 2-D or the trailing dimensions disagree.
pub fn matmul_a_bt_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = dims2("matmul_a_bt lhs", a);
    let (n, kb) = dims2("matmul_a_bt rhs", b);
    assert_eq!(
        ka, kb,
        "matmul_a_bt: trailing dimensions disagree ({ka} vs {kb})"
    );
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    for (i, crow) in c.data_mut().chunks_mut(n.max(1)).enumerate().take(m) {
        let arow = &ad[i * ka..(i + 1) * ka];
        for (j, cj) in crow.iter_mut().enumerate() {
            let brow = &bd[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cj = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Parallelism;

    fn t(dims: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(dims, v).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = t(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_agree_with_plain_matmul() {
        let a = t(&[3, 2], vec![1.0, -1.0, 2.0, 0.5, -3.0, 4.0]);
        let b = t(&[3, 4], (0..12).map(|i| i as f32 * 0.25 - 1.0).collect());
        // Aᵀ·B via explicit transpose.
        let mut at = Tensor::zeros(&[2, 3]);
        for i in 0..3 {
            for j in 0..2 {
                at.set(&[j, i], a.at(&[i, j]));
            }
        }
        assert_eq!(matmul_at_b(&a, &b), matmul(&at, &b));

        let c = t(&[4, 2], (0..8).map(|i| (i as f32).sin()).collect());
        let mut ct = Tensor::zeros(&[2, 4]);
        for i in 0..4 {
            for j in 0..2 {
                ct.set(&[j, i], c.at(&[i, j]));
            }
        }
        let lhs = t(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let got = matmul_a_bt(&lhs, &c);
        let want = matmul(&lhs, &ct);
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 2]);
    }

    fn random(dims: &[usize], seed: u64) -> Tensor {
        use crate::rng;
        let mut t = Tensor::zeros(dims);
        let mut r = rng::seeded(seed);
        rng::fill_uniform(&mut t, -1.0, 1.0, &mut r);
        t
    }

    #[test]
    fn parallel_kernels_bit_identical_to_serial() {
        let a = random(&[33, 17], 1);
        let b = random(&[17, 29], 2);
        let at = random(&[17, 33], 3);
        let bt = random(&[29, 17], 4);
        let serial = ExecCtx::serial();
        for threads in [2, 3, 8] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            assert_eq!(matmul_in(&serial, &a, &b), matmul_in(&ctx, &a, &b));
            assert_eq!(
                matmul_at_b_in(&serial, &at, &b),
                matmul_at_b_in(&ctx, &at, &b)
            );
            assert_eq!(
                matmul_a_bt_in(&serial, &a, &bt),
                matmul_a_bt_in(&ctx, &a, &bt)
            );
            assert!(ctx.parallel_dispatch_count() >= 3, "threads = {threads}");
        }
    }

    #[test]
    fn tiled_kernels_bit_identical_to_reference() {
        // Shapes straddle the tile gate and have ragged m/n/k tails.
        for (m, k, n, seed) in [
            (33, 17, 29, 1),
            (4, 8, 8, 9),
            (65, 40, 67, 2),
            (7, 128, 31, 3),
        ] {
            let a = random(&[m, k], seed);
            let b = random(&[k, n], seed + 100);
            let at = random(&[k, m], seed + 200);
            let bt = random(&[n, k], seed + 300);
            let ctx = ExecCtx::serial();
            assert_eq!(matmul_in(&ctx, &a, &b), matmul_reference(&a, &b));
            assert_eq!(
                matmul_at_b_in(&ctx, &at, &b),
                matmul_at_b_reference(&at, &b)
            );
            assert_eq!(
                matmul_a_bt_in(&ctx, &a, &bt),
                matmul_a_bt_reference(&a, &bt)
            );
        }
    }

    #[test]
    fn sparse_gate_matches_reference_result() {
        // A mostly-zero lhs takes the skipping kernel; it must agree with
        // a naive reference product (and a dense lhs must too).
        for sparse in [true, false] {
            let mut a = random(&[12, 24], 5);
            if sparse {
                for (i, v) in a.data_mut().iter_mut().enumerate() {
                    if i % 4 != 0 {
                        *v = 0.0;
                    }
                }
            }
            assert_eq!(mostly_zero(a.data()), sparse);
            assert_eq!(
                Density::measure(a.data()),
                if sparse {
                    Density::Sparse
                } else {
                    Density::Dense
                }
            );
            let b = random(&[24, 9], 6);
            let got = matmul(&a, &b);
            for i in 0..12 {
                for j in 0..9 {
                    let mut want = 0.0f32;
                    for k in 0..24 {
                        want += a.at(&[i, k]) * b.at(&[k, j]);
                    }
                    assert!((got.at(&[i, j]) - want).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn density_hint_overrides_the_scan() {
        // A dense matrix forced down the Sparse branch must still be
        // numerically correct (the skip kernel is exact on nonzeros).
        let a = random(&[20, 30], 7);
        let b = random(&[30, 10], 8);
        let ctx = ExecCtx::serial();
        let dense = matmul_hinted_in(&ctx, &a, &b, Density::Dense);
        let forced = matmul_hinted_in(&ctx, &a, &b, Density::Sparse);
        for (x, y) in dense.data().iter().zip(forced.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn pack_buffers_are_recycled() {
        let ctx = ExecCtx::serial();
        let a = random(&[32, 32], 10);
        let b = random(&[32, 32], 11);
        let c1 = matmul_in(&ctx, &a, &b);
        ctx.workspace().recycle(c1);
        let fresh = ctx.workspace().fresh_allocs();
        let c2 = matmul_in(&ctx, &a, &b);
        assert_eq!(
            ctx.workspace().fresh_allocs(),
            fresh,
            "second product must run allocation-free"
        );
        drop(c2);
    }
}
