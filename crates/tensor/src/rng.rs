//! Seeded random sources and weight initializers.
//!
//! Everything in the workspace that is stochastic — dataset generation,
//! weight initialization, AMS error injection — draws from an explicitly
//! seeded [`rand::rngs::StdRng`], so every experiment is reproducible from a
//! single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Creates a deterministic random generator from a `u64` seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = ams_tensor::rng::seeded(7);
/// let mut b = ams_tensor::rng::seeded(7);
/// assert_eq!(a.gen::<u32>(), b.gen::<u32>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A serializable snapshot of a [`StdRng`]'s exact position in its
/// stream — the "RNG stream cursor" of the crash-safe resume protocol
/// (DESIGN.md §9).
///
/// Capturing the state and later restoring it yields a generator whose
/// next draw continues the original stream bit-exactly, so a training run
/// checkpointed at an epoch boundary and resumed in a fresh process
/// replays the identical shuffles, augmentations and injected noise it
/// would have produced uninterrupted.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// use ams_tensor::rng::{seeded, RngState};
///
/// let mut a = seeded(7);
/// a.gen::<u64>(); // advance the stream
/// let cursor = RngState::capture(&a);
/// let mut b = cursor.restore();
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// Raw xoshiro256++ state words.
    words: [u64; 4],
}

impl RngState {
    /// Snapshots the generator's current stream position.
    pub fn capture(rng: &StdRng) -> Self {
        RngState { words: rng.state() }
    }

    /// Rebuilds a generator positioned exactly at the captured cursor.
    pub fn restore(&self) -> StdRng {
        StdRng::from_state(self.words)
    }
}

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// `rand` alone provides only uniform sources; the Gaussian needed by the
/// AMS error injector (paper Eq. 2 treats the total error as approximately
/// normal) is synthesized here rather than adding a distribution crate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Fills a tensor with independent `U(lo, hi)` samples.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn fill_uniform<R: Rng + ?Sized>(t: &mut Tensor, lo: f32, hi: f32, rng: &mut R) {
    assert!(lo <= hi, "fill_uniform: lo {lo} > hi {hi}");
    for v in t.data_mut() {
        *v = lo + (hi - lo) * rng.gen::<f32>();
    }
}

/// Fills a tensor with independent `N(mean, std²)` samples.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn fill_normal<R: Rng + ?Sized>(t: &mut Tensor, mean: f32, std: f32, rng: &mut R) {
    assert!(std >= 0.0, "fill_normal: negative std {std}");
    for v in t.data_mut() {
        *v = mean + std * standard_normal(rng);
    }
}

/// Kaiming/He normal initialization for layers followed by a ReLU:
/// `N(0, 2 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn fill_kaiming<R: Rng + ?Sized>(t: &mut Tensor, fan_in: usize, rng: &mut R) {
    assert!(fan_in > 0, "fill_kaiming: fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    fill_normal(t, 0.0, std, rng);
}

/// Xavier/Glorot uniform initialization: `U(±√(6 / (fan_in + fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn fill_xavier<R: Rng + ?Sized>(t: &mut Tensor, fan_in: usize, fan_out: usize, rng: &mut R) {
    assert!(fan_in + fan_out > 0, "fill_xavier: zero fan");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    fill_uniform(t, -bound, bound, rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_state_round_trips_through_serde_mid_stream() {
        let mut rng = seeded(42);
        // Advance through a mixed draw pattern like training does.
        for _ in 0..100 {
            standard_normal(&mut rng);
        }
        rng.gen_range(0..17);
        let state = RngState::capture(&rng);
        let json = serde_json::to_string(&state).unwrap();
        let restored: RngState = serde_json::from_str(&json).unwrap();
        let mut replay = restored.restore();
        for _ in 0..64 {
            assert_eq!(rng.gen::<u64>(), replay.gen::<u64>());
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(9);
        let mut t = Tensor::zeros(&[1000]);
        fill_uniform(&mut t, -0.25, 0.75, &mut rng);
        assert!(t.min() >= -0.25 && t.max() <= 0.75);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = seeded(11);
        let mut t = Tensor::zeros(&[4096]);
        fill_kaiming(&mut t, 128, &mut rng);
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / 128.0;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }
}
