//! The owned, contiguous, row-major `f32` tensor.

use serde::{Deserialize, Serialize};

use crate::shape::{ShapeExt, TensorError};

/// An owned n-dimensional `f32` array in contiguous row-major layout.
///
/// `Tensor` is the single numeric container used throughout the workspace:
/// network activations are `(N, C, H, W)` tensors, convolution weights are
/// `(C_out, C_in, K_h, K_w)`, matrices are 2-D, and biases are 1-D.
///
/// # Example
///
/// ```
/// use ams_tensor::Tensor;
///
/// # fn main() -> Result<(), ams_tensor::TensorError> {
/// let mut t = Tensor::zeros(&[2, 2]);
/// t.set(&[0, 1], 3.5);
/// assert_eq!(t.at(&[0, 1]), 3.5);
/// assert_eq!(t.sum(), 3.5);
///
/// let u = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(u.mean(), 2.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given dimensions filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Self::full(dims, 0.0)
    }

    /// Creates a tensor of the given dimensions filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor of the given dimensions filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor {
            dims: dims.to_vec(),
            data: vec![value; dims.numel()],
        }
    }

    /// Creates a 0-dimensional-like tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            dims: vec![1],
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat `Vec` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self, TensorError> {
        let expected = dims.numel();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                got: data.len(),
            });
        }
        Ok(Tensor {
            dims: dims.to_vec(),
            data,
        })
    }

    /// Creates a tensor with the same dimensions as `self`, filled with zeros.
    pub fn zeros_like(&self) -> Self {
        Tensor::zeros(&self.dims)
    }

    /// The dimension list of this tensor.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its dimensions and storage.
    pub fn into_parts(self) -> (Vec<usize>, Vec<f32>) {
        (self.dims, self.data)
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != self.rank()` or any index is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.dims.len(),
            "index rank {} != tensor rank {}",
            idx.len(),
            self.dims.len()
        );
        let mut off = 0;
        for (i, (&ix, &d)) in idx.iter().zip(&self.dims).enumerate() {
            assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            off = off * d + ix;
        }
        off
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds (see [`Tensor::offset`]).
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds (see [`Tensor::offset`]).
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data viewed under new dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(self, dims: &[usize]) -> Result<Self, TensorError> {
        let expected = dims.numel();
        if self.data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                got: self.data.len(),
            });
        }
        Ok(Tensor {
            dims: dims.to_vec(),
            data: self.data,
        })
    }

    /// Like [`Tensor::reshape`] but borrowing: clones only the dimension
    /// list, not the data, when called on an owned value via `clone()`.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, dims: &[usize]) -> Self {
        self.clone()
            .reshape(dims)
            .expect("reshaped: element count mismatch")
    }
}

impl Default for Tensor {
    /// An empty 1-D tensor (zero elements).
    fn default() -> Self {
        Tensor {
            dims: vec![0],
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.rank(), 3);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(&[2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.at(&[2, 1]), 5.0);
    }

    #[test]
    fn reshape_rejects_bad_length() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }

    #[test]
    fn clone_and_eq() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u = t.clone();
        assert_eq!(t, u);
        assert_ne!(t, Tensor::zeros(&[2, 2]));
    }
}
