//! Shape utilities and the crate error type.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor constructors and shape changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Number of elements implied by the requested dimensions.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
    },
    /// A dimension list is invalid (empty, or contains a zero in a place
    /// where the operation cannot support it).
    InvalidShape {
        /// The offending dimension list.
        dims: Vec<usize>,
        /// Human-readable reason the shape is invalid.
        reason: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "length mismatch: shape requires {expected} elements, got {got}"
                )
            }
            TensorError::InvalidShape { dims, reason } => {
                write!(f, "invalid shape {dims:?}: {reason}")
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience methods on dimension slices.
///
/// ```
/// use ams_tensor::ShapeExt;
/// assert_eq!([2usize, 3, 4].numel(), 24);
/// ```
pub trait ShapeExt {
    /// Total number of elements implied by this dimension list.
    fn numel(&self) -> usize;
}

impl ShapeExt for [usize] {
    fn numel(&self) -> usize {
        self.iter().product()
    }
}

impl<const N: usize> ShapeExt for [usize; N] {
    fn numel(&self) -> usize {
        self.iter().product()
    }
}

/// Panics with a consistent message when two dimension lists differ.
///
/// Used by the hot-path elementwise operators, which are documented to
/// panic on mismatched shapes rather than return a `Result`.
pub(crate) fn assert_same_dims(op: &str, a: &[usize], b: &[usize]) {
    assert_eq!(a, b, "{op}: shape mismatch ({a:?} vs {b:?})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_products() {
        assert_eq!([1usize].numel(), 1);
        assert_eq!([2usize, 3].numel(), 6);
        assert_eq!([4usize, 0, 7].numel(), 0);
    }

    #[test]
    fn error_display_is_lowercase_and_concise() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            got: 5,
        };
        let msg = e.to_string();
        assert!(msg.starts_with("length mismatch"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
