//! Packed i8×i8→i32 GEMM fast path with a fused dequantize epilogue.
//!
//! The paper's DoReFa-quantized layers carry ≤8-bit operands, so at eval
//! time the matmul inner loop can run on `i8` codes instead of f32 — the
//! arithmetic AMS hardware actually performs. The integer kernel mirrors
//! the tiled f32 kernels in [`crate::matmul`] in spirit (pack once, then
//! stream cache-resident panels) but uses a layout tuned for what LLVM
//! can actually vectorize into packed multiply-accumulate instructions:
//!
//! * both operands are packed **k-contiguous** and pre-widened to `i16`
//!   ([`pack_rows_i16`] / [`pack_cols_i16`]), sliced to a 64-byte-aligned
//!   start so every vector load stays within one cache line;
//! * the microkernel is a plain single-accumulator `i16·i16→i32` dot
//!   product ([`BAND_I8`] rows share one L1-resident rhs column). This
//!   exact reduction shape is what LLVM's x86 partial-reduction pass
//!   rewrites into `pmaddwd` (8 multiply-adds per instruction — 4 i8
//!   lanes per f32 lane, the whole point of the integer path). Register
//!   tiles or multi-output dots break that pattern match and fall back to
//!   scalar-ish code half as fast, which is why the loop nest here is
//!   blocked for cache ([`JB_I8`]-column rhs blocks against
//!   [`BAND_I8`]-row lhs bands) rather than for registers;
//! * dequantization (and an optional bias) is fused into the epilogue:
//!   the integer accumulator is scaled straight into the f32 output, so
//!   callers never materialize an f32 copy of the quantized operand.
//!
//! The workspace `.cargo/config.toml` passes
//! `-C llvm-args=-vectorizer-maximize-bandwidth` so the vectorizer picks
//! the 16-lane i16 factor instead of sizing by the i32 accumulator; the
//! flag changes no instruction-set requirements and no f32 semantics
//! (Rust never licenses reassociation or FMA contraction), it only
//! unlocks the `pmaddwd` form of this loop.
//!
//! # Overflow safety (split-K)
//!
//! An i8·i8 product fits in an i16 (|p| ≤ 127² = 16129) and an i32 chain
//! of them is safe for up to `i32::MAX / 16129 ≈ 133 000` terms. Long
//! reductions therefore run **split-K**: i32 partial dots over
//! [`K_CHUNK`]-term chunks (`K_CHUNK · 16129 < i32::MAX`, so no i32
//! intermediate — including `pmaddwd`'s pairwise sums — can wrap), each
//! chunk widened into an i64 total. Integer accumulation is exact and
//! associative, so — unlike the f32 kernels, whose bit-identity contract
//! forbids k-blocking — splitting the reduction changes nothing, and
//! results are bit-identical for any thread count *and* any K.
//!
//! # Statistical, not bitwise, gating
//!
//! The integer path cannot be bitwise-equal to the f32 kernels: operands
//! are re-quantized onto a symmetric 127-level grid and the accumulation
//! order differs. Following arXiv 2109.01262, it is validated
//! *statistically*: the integer part is exact, so the end-to-end error is
//! bounded by the quantization step sizes alone —
//! `|Σ a·w − s_a·s_w·Σ â·ŵ| ≤ K · (max|a|·s_w/2 + max|w|·s_a/2 + s_a·s_w/4)`
//! with `s = max|·|/127` — plus the f32 reference's own rounding. The
//! repo-root `tests/i8_gemm.rs` harness asserts this bound (and ULP /
//! relative-error distributions) over odd shapes, thread counts,
//! saturation edges and the sparse/dense branches.

use crate::exec::ExecCtx;
use crate::tensor::Tensor;

/// Rows per lhs band: how many output rows share one L1-resident rhs
/// column before the kernel moves on (the i32 accumulator for a band is
/// just `BAND_I8` scalars, so nothing ever spills).
pub const BAND_I8: usize = 4;

/// Columns per rhs block: one block of k-major columns
/// (`JB_I8 · kdim · 2` bytes for typical layer K) stays L2-resident while
/// every lhs band streams over it.
pub const JB_I8: usize = 112;

/// Maximum reduction terms accumulated in i32 before widening to i64:
/// `K_CHUNK · 127² = 65 536 · 16 129 ≈ 1.06e9 < i32::MAX`.
pub const K_CHUNK: usize = 1 << 16;

/// Products below this many scalar multiply-adds skip packing and run a
/// naive loop (same constant as the f32 kernels' tile gate).
const TILE_GATE_I8: usize = 4096;

/// The symmetric i8 code clamp: codes span `[-127, 127]` (−128 is never
/// produced, keeping the grid symmetric around zero).
pub const I8_QMAX: f32 = 127.0;

/// Packed panels start 64-byte-aligned; `vec` allocations only guarantee
/// element alignment, so buffers are padded by this many i16 elements and
/// sliced at the aligned offset.
const ALIGN_PAD: usize = 32;

// ---------------------------------------------------------------------------
// Symmetric quantization
// ---------------------------------------------------------------------------

/// Quantizes an f32 slice onto the symmetric i8 grid, returning the codes
/// and the dequantization scale (`v ≈ scale · code`).
///
/// `scale = max|v| / 127`, `code = round(v / scale)` clamped to ±127, so
/// the largest-magnitude element always maps exactly onto ±127 and no
/// in-range value ever saturates. An all-zero (or empty) slice returns
/// zero codes with `scale = 0.0` — the dequantized product is then exactly
/// zero, which is correct.
pub fn quantize_symmetric_i8(src: &[f32]) -> (Vec<i8>, f32) {
    let max_abs = src.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        return (vec![0i8; src.len()], 0.0);
    }
    let scale = max_abs / I8_QMAX;
    let inv = I8_QMAX / max_abs;
    let codes = src
        .iter()
        .map(|&v| (v * inv).round().clamp(-I8_QMAX, I8_QMAX) as i8)
        .collect();
    (codes, scale)
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Allocates a zeroed i16 panel buffer with [`ALIGN_PAD`] slack and
/// returns it with the element offset of the first 64-byte-aligned slot.
fn aligned_i16_buf(len: usize) -> (Vec<i16>, usize) {
    let buf = vec![0i16; len + ALIGN_PAD];
    let off = buf.as_ptr().align_offset(64).min(ALIGN_PAD);
    (buf, off)
}

/// Widens i8 codes into an i16 panel, preserving layout: the pack step
/// for an operand whose reduction axis is already contiguous (lhs rows,
/// or the rhs of an `A·Bᵀ` product). `out.len()` must equal `src.len()`.
pub fn pack_rows_i16(src: &[i8], out: &mut [i16]) {
    for (dst, &v) in out.iter_mut().zip(src.iter()) {
        *dst = v as i16;
    }
}

/// Transpose-widens a row-major `(kdim, n)` i8 matrix into an i16 panel
/// of `n` k-contiguous columns: `out[j·kdim + kk] = src[kk·n + j]`.
/// Blocked over `kk` so the strided reads stay cache-resident.
pub fn pack_cols_i16(src: &[i8], kdim: usize, n: usize, out: &mut [i16]) {
    const KB: usize = 64;
    let mut k0 = 0;
    while k0 < kdim {
        let k1 = (k0 + KB).min(kdim);
        for j in 0..n {
            let col = &mut out[j * kdim + k0..j * kdim + k1];
            for (kk, dst) in col.iter_mut().enumerate() {
                *dst = src[(k0 + kk) * n + j] as i16;
            }
        }
        k0 = k1;
    }
}

/// Inverse of [`pack_rows_i16`]: narrows an i16 panel back to i8 codes
/// (lossless for panels produced by packing). The proptest oracle for the
/// row-panel layout.
pub fn unpack_rows_i16(panel: &[i16], dst: &mut [i8]) {
    for (d, &v) in dst.iter_mut().zip(panel.iter()) {
        *d = v as i8;
    }
}

/// Inverse of [`pack_cols_i16`]: scatters the k-contiguous columns back
/// into a row-major `(kdim, n)` i8 matrix.
pub fn unpack_cols_i16(panel: &[i16], kdim: usize, n: usize, dst: &mut [i8]) {
    for j in 0..n {
        for kk in 0..kdim {
            dst[kk * n + j] = panel[j * kdim + kk] as i8;
        }
    }
}

// ---------------------------------------------------------------------------
// Microkernels
// ---------------------------------------------------------------------------

/// One ≤[`K_CHUNK`] slice of the reduction: a single-accumulator
/// `i16·i16→i32` dot product, unrolled in 32-element chunks. The chunk
/// bound guarantees no i32 intermediate can wrap (`wrapping_add` makes
/// that independent of debug overflow checks), so the result is exact.
#[inline]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    let mut acc = 0i32;
    let ac = a.chunks_exact(32);
    let bc = b.chunks_exact(32);
    let (ar, br) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        let mut s = 0i32;
        for (&x, &y) in ca.iter().zip(cb.iter()) {
            s = s.wrapping_add(x as i32 * y as i32);
        }
        acc = acc.wrapping_add(s);
    }
    for (&x, &y) in ar.iter().zip(br.iter()) {
        acc = acc.wrapping_add(x as i32 * y as i32);
    }
    acc
}

/// [`dot_i16`] with a lhs zero skip for mostly-zero operands (ReLU'd
/// activations, aggressively quantized weights). Integer accumulation is
/// exact, so this returns bit-identical results to the dense dot — the
/// branch is purely a throughput trade.
#[inline]
fn dot_i16_skip_zero(a: &[i16], b: &[i16]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x != 0 {
            acc = acc.wrapping_add(x as i32 * y as i32);
        }
    }
    acc
}

/// Full-K exact dot: split-K i32 partial dots widened into an i64 total.
#[inline]
fn dot_full(a: &[i16], b: &[i16], skip_zero_lhs: bool) -> i64 {
    if a.len() <= K_CHUNK {
        // Typical layer K: single chunk, no widening loop.
        let d = if skip_zero_lhs {
            dot_i16_skip_zero(a, b)
        } else {
            dot_i16(a, b)
        };
        return d as i64;
    }
    let mut total = 0i64;
    for (ca, cb) in a.chunks(K_CHUNK).zip(b.chunks(K_CHUNK)) {
        let d = if skip_zero_lhs {
            dot_i16_skip_zero(ca, cb)
        } else {
            dot_i16(ca, cb)
        };
        total += d as i64;
    }
    total
}

/// One worker's share of the blocked integer product: every
/// [`BAND_I8`]-row band of `span` against [`JB_I8`]-column rhs blocks,
/// with the fused dequantize(+bias) epilogue writing f32.
///
/// A free function, not a closure body, for the same reason as the f32
/// `gemm_span`: a closure shared with the spawn path keeps its capture
/// environment in memory and costs measurable throughput in the hot loop.
#[allow(clippy::too_many_arguments)]
fn gemm_span_i8(
    band0: usize,
    span: &mut [f32],
    n: usize,
    kdim: usize,
    apanel: &[i16],
    bpanel: &[i16],
    scale: f32,
    col_bias: Option<&[f32]>,
    skip_zero_lhs: bool,
) {
    let rows_here = span.len() / n;
    let row0 = band0 * BAND_I8;
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + JB_I8).min(n);
        let mut r0 = 0;
        while r0 < rows_here {
            let r1 = (r0 + BAND_I8).min(rows_here);
            for j in j0..j1 {
                let bc = &bpanel[j * kdim..(j + 1) * kdim];
                let bias = col_bias.map_or(0.0, |b| b[j]);
                for r in r0..r1 {
                    let ar = &apanel[(row0 + r) * kdim..(row0 + r + 1) * kdim];
                    let wide = dot_full(ar, bc, skip_zero_lhs);
                    span[r * n + j] = wide as f32 * scale + bias;
                }
            }
            r0 = r1;
        }
        j0 = j1;
    }
}

/// Naive split-K fallback for products too small to amortize packing.
#[allow(clippy::too_many_arguments)]
fn naive_i8(
    ctx: &ExecCtx,
    m: usize,
    kdim: usize,
    n: usize,
    a_row: impl Fn(usize, usize) -> i8 + Sync,
    b_col: impl Fn(usize, usize) -> i8 + Sync,
    scale: f32,
    col_bias: Option<&[f32]>,
    out: &mut [f32],
) {
    let _ = m;
    ctx.for_each_chunk(out, n, kdim * n, |i, crow| {
        for (j, cj) in crow.iter_mut().enumerate() {
            let mut wide = 0i64;
            let mut k0 = 0;
            while k0 < kdim {
                let kc = K_CHUNK.min(kdim - k0);
                let mut acc = 0i32;
                for k in k0..k0 + kc {
                    acc += (a_row(i, k) as i16 * b_col(k, j) as i16) as i32;
                }
                wide += acc as i64;
                k0 += kc;
            }
            *cj = wide as f32 * scale + col_bias.map_or(0.0, |b| b[j]);
        }
    });
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `C = (s · A·B)` for i8 code matrices `A: (m, k)` row-major and
/// `B: (k, n)` row-major, with the dequantization scale `s` (typically
/// `s_a · s_w` from [`quantize_symmetric_i8`] of each operand) fused into
/// the epilogue. The integer part is exact for any K (split-K i64
/// accumulation), so results are bit-identical for any thread count.
///
/// `sparse_lhs` selects the zero-skipping dot — callers that measured
/// their operand density at quantize time pass it down, mirroring the f32
/// kernels' [`crate::Density`] gate; it never changes results.
///
/// The output tensor is drawn from the context's workspace arena;
/// recycle it like any kernel output. Pack buffers are plain `Vec<i16>`
/// allocations (the arena pools f32 only).
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_in(
    ctx: &ExecCtx,
    m: usize,
    kdim: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    scale: f32,
    sparse_lhs: bool,
) -> Tensor {
    assert_eq!(a.len(), m * kdim, "matmul_i8: lhs length mismatch");
    assert_eq!(b.len(), kdim * n, "matmul_i8: rhs length mismatch");
    let ws = ctx.workspace();
    let mut c = ws.take_tensor(&[m, n]);
    if m == 0 || n == 0 || kdim == 0 {
        return c;
    }
    if m * n * kdim < TILE_GATE_I8 {
        naive_i8(
            ctx,
            m,
            kdim,
            n,
            |i, k| a[i * kdim + k],
            |k, j| b[k * n + j],
            scale,
            None,
            c.data_mut(),
        );
        return c;
    }
    // A rows are already k-contiguous: widen in place.
    let (mut abuf, aoff) = aligned_i16_buf(m * kdim);
    pack_rows_i16(a, &mut abuf[aoff..aoff + m * kdim]);
    // B is (k, n) row-major: transpose-widen into k-contiguous columns.
    let (mut bbuf, boff) = aligned_i16_buf(kdim * n);
    pack_cols_i16(b, kdim, n, &mut bbuf[boff..boff + kdim * n]);
    let apanel = &abuf[aoff..aoff + m * kdim];
    let bpanel = &bbuf[boff..boff + kdim * n];
    ctx.for_each_span(
        c.data_mut(),
        BAND_I8 * n,
        BAND_I8 * n * kdim,
        |band0, span| {
            gemm_span_i8(
                band0, span, n, kdim, apanel, bpanel, scale, None, sparse_lhs,
            );
        },
    );
    c
}

/// `C = (s · A·Bᵀ) + bias` for i8 codes `A: (m, k)` and `B: (n, k)`, both
/// row-major, without materializing `Bᵀ` — the integer twin of
/// [`crate::matmul_a_bt_in`] (the linear-layer shape, `x · Wᵀ`). `bias`,
/// when given, is added per output column in the fused epilogue and must
/// have length `n`. Both operands are k-contiguous already, so packing is
/// a pure widen.
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_a_bt_in(
    ctx: &ExecCtx,
    m: usize,
    kdim: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    scale: f32,
    bias: Option<&[f32]>,
    sparse_lhs: bool,
) -> Tensor {
    assert_eq!(a.len(), m * kdim, "matmul_i8_a_bt: lhs length mismatch");
    assert_eq!(b.len(), n * kdim, "matmul_i8_a_bt: rhs length mismatch");
    if let Some(bv) = bias {
        assert_eq!(bv.len(), n, "matmul_i8_a_bt: bias length mismatch");
    }
    let ws = ctx.workspace();
    let mut c = ws.take_tensor(&[m, n]);
    if m == 0 || n == 0 {
        return c;
    }
    if kdim == 0 {
        if let Some(bv) = bias {
            for crow in c.data_mut().chunks_mut(n) {
                crow.copy_from_slice(bv);
            }
        }
        return c;
    }
    if m * n * kdim < TILE_GATE_I8 {
        naive_i8(
            ctx,
            m,
            kdim,
            n,
            |i, k| a[i * kdim + k],
            |k, j| b[j * kdim + k],
            scale,
            bias,
            c.data_mut(),
        );
        return c;
    }
    let (mut abuf, aoff) = aligned_i16_buf(m * kdim);
    pack_rows_i16(a, &mut abuf[aoff..aoff + m * kdim]);
    let (mut bbuf, boff) = aligned_i16_buf(n * kdim);
    pack_rows_i16(b, &mut bbuf[boff..boff + n * kdim]);
    let apanel = &abuf[aoff..aoff + m * kdim];
    let bpanel = &bbuf[boff..boff + n * kdim];
    ctx.for_each_span(
        c.data_mut(),
        BAND_I8 * n,
        BAND_I8 * n * kdim,
        |band0, span| {
            gemm_span_i8(
                band0, span, n, kdim, apanel, bpanel, scale, bias, sparse_lhs,
            );
        },
    );
    c
}

/// The naive serial i8 reference: exact i64 accumulation per element
/// (i-j-k, no chunking — i64 never wraps for any realistic K), then the
/// same dequantize(+bias) epilogue. The oracle the blocked integer kernels
/// must match **bit-for-bit** — integer arithmetic is exact, so unlike
/// the f32 pair this equality is order-independent.
pub fn matmul_i8_reference(
    m: usize,
    kdim: usize,
    n: usize,
    a: &[i8],
    b: &[i8],
    scale: f32,
) -> Tensor {
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for k in 0..kdim {
                acc += a[i * kdim + k] as i64 * b[k * n + j] as i64;
            }
            c.data_mut()[i * n + j] = acc as f32 * scale;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Parallelism;
    use crate::rng;

    fn random_codes(len: usize, seed: u64) -> Vec<i8> {
        let mut t = Tensor::zeros(&[len.max(1)]);
        let mut r = rng::seeded(seed);
        rng::fill_uniform(&mut t, -127.0, 127.0, &mut r);
        t.data().iter().take(len).map(|&v| v as i8).collect()
    }

    #[test]
    fn matches_reference_across_shapes_and_branches() {
        for (m, k, n, seed) in [
            (1, 1, 1, 1),
            (4, 8, 8, 2),
            (33, 17, 29, 3),
            (7, 128, 31, 4),
            (65, 40, 67, 5),
            (9, 300, 130, 6), // crosses both JB_I8 and a band remainder
        ] {
            let a = random_codes(m * k, seed);
            let b = random_codes(k * n, seed + 50);
            let scale = 0.01f32;
            let want = matmul_i8_reference(m, k, n, &a, &b, scale);
            for sparse in [false, true] {
                let got = matmul_i8_in(&ExecCtx::serial(), m, k, n, &a, &b, scale, sparse);
                assert_eq!(got.data(), want.data(), "m={m} k={k} n={n} sparse={sparse}");
            }
        }
    }

    #[test]
    fn thread_count_is_invisible() {
        let (m, k, n) = (37, 53, 41);
        let a = random_codes(m * k, 7);
        let b = random_codes(k * n, 8);
        let want = matmul_i8_in(&ExecCtx::serial(), m, k, n, &a, &b, 0.5, false);
        for threads in [2, 3, 8] {
            let ctx = ExecCtx::new(Parallelism {
                threads,
                min_work: 0,
            });
            let got = matmul_i8_in(&ctx, m, k, n, &a, &b, 0.5, false);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose_with_bias() {
        let (m, k, n) = (19, 23, 13);
        let a = random_codes(m * k, 11);
        let b = random_codes(n * k, 12); // (n, k) row-major
        let mut bt = vec![0i8; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.1 - 0.5).collect();
        let scale = 0.002f32;
        let plain = matmul_i8_reference(m, k, n, &a, &bt, scale);
        let got = matmul_i8_a_bt_in(
            &ExecCtx::serial(),
            m,
            k,
            n,
            &a,
            &b,
            scale,
            Some(&bias),
            false,
        );
        for i in 0..m {
            for (j, &bj) in bias.iter().enumerate() {
                let want = plain.data()[i * n + j] + bj;
                assert_eq!(got.data()[i * n + j], want, "({i}, {j})");
            }
        }
    }

    #[test]
    fn symmetric_quantization_hits_the_endpoints() {
        let (codes, scale) = quantize_symmetric_i8(&[-2.0, 0.5, 2.0, 0.0]);
        assert_eq!(codes, vec![-127, 32, 127, 0]);
        assert!((scale - 2.0 / 127.0).abs() < 1e-9);
        let (zc, zs) = quantize_symmetric_i8(&[0.0, 0.0]);
        assert_eq!(zc, vec![0, 0]);
        assert_eq!(zs, 0.0);
    }

    #[test]
    fn zero_k_a_bt_is_pure_bias() {
        let bias = [1.0f32, -2.0];
        let got = matmul_i8_a_bt_in(
            &ExecCtx::serial(),
            3,
            0,
            2,
            &[],
            &[],
            1.0,
            Some(&bias),
            false,
        );
        assert_eq!(got.dims(), &[3, 2]);
        assert_eq!(got.data(), &[1.0, -2.0, 1.0, -2.0, 1.0, -2.0]);
    }
}
