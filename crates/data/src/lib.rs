//! SynthImageNet: deterministic procedural image-classification datasets.
//!
//! The paper evaluates on ImageNet, which is unavailable in this
//! environment (see DESIGN.md's substitution table). This crate generates
//! the closest synthetic equivalent that exercises the same code paths: a
//! multi-class RGB image dataset that
//!
//! * is **learnable** by a small convolutional network (classes are
//!   oriented textures with distinct color signatures),
//! * is **precision-sensitive**: classes form orientation groups whose
//!   members differ only in a fine texture-amplitude ladder, so low-bit
//!   activations and injected AMS noise destroy class information the
//!   way they do on ImageNet-scale tasks, and
//! * **degrades smoothly** under quantization and injected AMS error —
//!   the property every experiment in the paper measures.
//!
//! Generation is fully deterministic from a single `u64` seed.
//!
//! # Example
//!
//! ```
//! use ams_data::{Batcher, SynthConfig};
//! use ams_tensor::rng;
//!
//! let data = SynthConfig::tiny().generate();
//! assert_eq!(data.train.len(), data.config().classes * data.config().train_per_class);
//! let mut rng = rng::seeded(0);
//! let (images, labels) = Batcher::new(&data.train, 8, &mut rng).next().unwrap();
//! assert_eq!(images.dims()[0], 8);
//! assert_eq!(labels.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod dataset;
mod synth;

pub use batcher::Batcher;
pub use dataset::Dataset;
pub use synth::{SynthConfig, SynthImageNet};
