//! The SynthImageNet generator.

use ams_tensor::{rng, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Configuration of a SynthImageNet instance.
///
/// Classes form orientation groups (distinct **orientation** and
/// **per-channel color weighting**) whose members differ only in a fine
/// **texture-amplitude ladder**; every sample jitters orientation,
/// frequency, phase, translation and amplitude and adds pixel noise.
///
/// # Example
///
/// ```
/// use ams_data::SynthConfig;
///
/// let data = SynthConfig { classes: 4, train_per_class: 8, val_per_class: 4, ..SynthConfig::tiny() }
///     .generate();
/// assert_eq!(data.train.len(), 32);
/// assert_eq!(data.val.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of classes.
    pub classes: usize,
    /// Square image side in pixels.
    pub image_size: usize,
    /// Color channels (3 for RGB).
    pub channels: usize,
    /// Training examples generated per class.
    pub train_per_class: usize,
    /// Validation examples generated per class.
    pub val_per_class: usize,
    /// Standard deviation of additive pixel noise.
    pub noise: f32,
    /// Master seed; the train and validation splits derive disjoint
    /// streams from it.
    pub seed: u64,
}

impl SynthConfig {
    /// The default experiment-scale dataset: 16 closely-spaced classes of
    /// 16×16 RGB, 96 train + 40 val per class. Tuned so an FP32
    /// ResNet-mini lands around 90 % top-1 — off the ceiling, with
    /// headroom for quantization and AMS noise to bite (the paper's
    /// ResNet-50 baseline sits at 77.8 %).
    pub fn quick() -> Self {
        SynthConfig {
            classes: 16,
            image_size: 16,
            channels: 3,
            train_per_class: 96,
            val_per_class: 40,
            noise: 0.03,
            seed: 2019,
        }
    }

    /// A larger instance for `--scale full` runs.
    pub fn full() -> Self {
        SynthConfig {
            classes: 20,
            image_size: 24,
            channels: 3,
            train_per_class: 300,
            val_per_class: 80,
            noise: 0.03,
            seed: 2019,
        }
    }

    /// A minimal instance for unit tests (4 classes of 8×8).
    pub fn tiny() -> Self {
        SynthConfig {
            classes: 4,
            image_size: 8,
            channels: 3,
            train_per_class: 16,
            val_per_class: 8,
            noise: 0.04,
            seed: 7,
        }
    }

    /// Generates the dataset described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `noise` is negative.
    pub fn generate(self) -> SynthImageNet {
        assert!(
            self.classes > 0 && self.image_size > 0 && self.channels > 0,
            "SynthConfig: zero-sized config"
        );
        assert!(
            self.train_per_class > 0 && self.val_per_class > 0,
            "SynthConfig: empty split"
        );
        assert!(self.noise >= 0.0, "SynthConfig: negative noise");
        let train = generate_split(
            &self,
            self.train_per_class,
            self.seed.wrapping_mul(2).wrapping_add(1),
        );
        let val = generate_split(
            &self,
            self.val_per_class,
            self.seed.wrapping_mul(2).wrapping_add(2),
        );
        SynthImageNet {
            config: self,
            train,
            val,
        }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// A generated dataset: train and validation splits plus the configuration
/// that produced them.
#[derive(Debug, Clone)]
pub struct SynthImageNet {
    config: SynthConfig,
    /// Training split.
    pub train: Dataset,
    /// Validation split.
    pub val: Dataset,
}

impl SynthImageNet {
    /// The generating configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }
}

/// Class prototype: the deterministic "identity" every sample of a class
/// jitters around.
struct ClassProto {
    theta: f32,
    freq: f32,
    amp: f32,
    color: [f32; 4], // up to 4 channels supported
}

fn class_proto(class: usize, classes: usize, channels: usize) -> ClassProto {
    // Classes form orientation groups of four that share orientation,
    // frequency and color, and differ ONLY in texture amplitude
    // (contrast), at four closely spaced levels. Orientation is a coarse,
    // quantization-robust cue; the amplitude ladder is a fine cue whose
    // neighbouring rungs sit within one 4-bit activation LSB of each
    // other — low-bit quantization and injected AMS noise destroy it
    // first, giving the dataset the paper's precision-sensitivity
    // (Table 1's 6b/4b drop).
    // Small class counts get a 2-rung ladder with a wider gap so test-
    // scale datasets stay learnable by a tiny network.
    let levels: &[f32] = if classes >= 8 {
        &[0.10, 0.13, 0.165, 0.205]
    } else {
        &[0.12, 0.21]
    };
    let n_orient = classes.div_ceil(levels.len()).max(1);
    let base = class % n_orient;
    let level = class / n_orient;
    let theta = std::f32::consts::PI * base as f32 / n_orient as f32;
    let freq = 2.8;
    let amp = levels[level % levels.len()];
    let mut color = [1.0f32; 4];
    for (ch, c) in color.iter_mut().enumerate().take(channels) {
        // Channel weights depend only on the orientation group `base`,
        // so color never separates an amplitude ladder.
        *c = 0.65 + 0.35 * ((base * (ch + 1)) as f32 * 2.399).sin();
    }
    ClassProto {
        theta,
        freq,
        amp,
        color,
    }
}

fn generate_split(cfg: &SynthConfig, per_class: usize, seed: u64) -> Dataset {
    let n = cfg.classes * per_class;
    let (c, s) = (cfg.channels, cfg.image_size);
    let mut images = Tensor::zeros(&[n, c, s, s]);
    let mut labels = Vec::with_capacity(n);
    let mut r = rng::seeded(seed);
    let data = images.data_mut();
    let mut idx = 0usize;
    for class in 0..cfg.classes {
        let proto = class_proto(class, cfg.classes, c);
        for _ in 0..per_class {
            // Per-sample jitter.
            let theta = proto.theta + (r.gen::<f32>() - 0.5) * 0.20;
            let freq = proto.freq * (1.0 + (r.gen::<f32>() - 0.5) * 0.12);
            let phase = r.gen::<f32>() * std::f32::consts::TAU;
            let dx = (r.gen::<f32>() - 0.5) * 4.0;
            let dy = (r.gen::<f32>() - 0.5) * 4.0;
            let amp = proto.amp * (1.0 + (r.gen::<f32>() - 0.5) * 0.16);
            let (sin_t, cos_t) = theta.sin_cos();
            let scale = std::f32::consts::TAU * freq / s as f32;
            for ch in 0..c {
                let cw = proto.color[ch] * (1.0 + (r.gen::<f32>() - 0.5) * 0.1);
                let base = (idx * c + ch) * s * s;
                for i in 0..s {
                    for j in 0..s {
                        let u = (i as f32 + dy) * cos_t + (j as f32 + dx) * sin_t;
                        let g = (u * scale + phase).sin();
                        let noise = cfg.noise * rng::standard_normal(&mut r);
                        let v = 0.5 + amp * cw * g + noise;
                        data[base + i * s + j] = v.clamp(0.0, 1.0);
                    }
                }
            }
            labels.push(class);
            idx += 1;
        }
    }
    Dataset::new(images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = SynthConfig::tiny().generate();
        let b = SynthConfig::tiny().generate();
        assert_eq!(a.train.images(), b.train.images());
        assert_eq!(a.val.labels(), b.val.labels());
    }

    #[test]
    fn splits_are_disjoint_streams() {
        let d = SynthConfig::tiny().generate();
        // Same class counts but different pixels.
        assert_ne!(
            d.train.images().data()[..64],
            d.val.images().data()[..64],
            "train and val must come from different RNG streams"
        );
    }

    #[test]
    fn pixels_in_unit_range_and_labels_balanced() {
        let d = SynthConfig::tiny().generate();
        assert!(d.train.images().min() >= 0.0 && d.train.images().max() <= 1.0);
        let cfg = d.config();
        for class in 0..cfg.classes {
            let count = d.train.labels().iter().filter(|&&l| l == class).count();
            assert_eq!(count, cfg.train_per_class);
        }
    }

    #[test]
    fn amplitude_ladder_is_statistically_separable() {
        // Classes differ in texture *contrast* (random phase flattens the
        // per-class mean image), so the separating statistic is the mean
        // absolute deviation from mid-gray. The lowest and highest rungs
        // of the ladder must be clearly apart — a cheap learnability
        // proxy for the fine cue the experiments quantize away.
        let d = SynthConfig {
            train_per_class: 32,
            ..SynthConfig::tiny()
        }
        .generate();
        let (n, _, _, _) = d.train.images().dims4();
        let px = d.train.images().len() / n;
        let classes = d.config().classes;
        let mut contrast = vec![0.0f64; classes];
        let mut counts = vec![0usize; classes];
        for i in 0..n {
            let l = d.train.labels()[i];
            counts[l] += 1;
            let img = &d.train.images().data()[i * px..(i + 1) * px];
            contrast[l] += img.iter().map(|&v| f64::from((v - 0.5).abs())).sum::<f64>() / px as f64;
        }
        for (csum, &cnt) in contrast.iter_mut().zip(&counts) {
            *csum /= cnt as f64;
        }
        // Tiny uses a 2-rung ladder: classes [0, half) are low-contrast,
        // [half, classes) high-contrast.
        let half = classes / 2;
        let low: f64 = contrast[..half].iter().sum::<f64>() / half as f64;
        let high: f64 = contrast[half..].iter().sum::<f64>() / (classes - half) as f64;
        assert!(
            high > low * 1.3,
            "amplitude rungs not separable: low {low:.4} vs high {high:.4}"
        );
    }
}
