//! Labeled image collections.

use ams_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labeled set of images stored as one `(N, C, H, W)` tensor with pixel
/// values in `[0, 1]`.
///
/// # Example
///
/// ```
/// use ams_data::Dataset;
/// use ams_tensor::Tensor;
///
/// let images = Tensor::zeros(&[4, 3, 8, 8]);
/// let ds = Dataset::new(images, vec![0, 1, 0, 1]);
/// assert_eq!(ds.len(), 4);
/// let (batch, labels) = ds.select(&[2, 0]);
/// assert_eq!(batch.dims(), &[2, 3, 8, 8]);
/// assert_eq!(labels, vec![0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
}

impl Dataset {
    /// Bundles images and labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not 4-D or the label count differs from the
    /// batch dimension.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        let (n, _, _, _) = images.dims4();
        assert_eq!(
            n,
            labels.len(),
            "Dataset: {n} images but {} labels",
            labels.len()
        );
        Dataset { images, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The full `(N, C, H, W)` image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, index-aligned with the images.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of distinct classes (`max label + 1`; 0 when empty).
    pub fn num_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Copies the examples at `indices` into a new `(len, C, H, W)` batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let (n, c, h, w) = self.images.dims4();
        let example = c * h * w;
        let mut out = Tensor::zeros(&[indices.len(), c, h, w]);
        let src = self.images.data();
        let dst = out.data_mut();
        let mut labels = Vec::with_capacity(indices.len());
        for (bi, &idx) in indices.iter().enumerate() {
            assert!(
                idx < n,
                "Dataset::select: index {idx} out of bounds for {n} examples"
            );
            dst[bi * example..(bi + 1) * example]
                .copy_from_slice(&src[idx * example..(idx + 1) * example]);
            labels.push(self.labels[idx]);
        }
        (out, labels)
    }

    /// A random subset containing `⌈fraction·N⌉` examples (without
    /// replacement) — used to produce the paper's five independent
    /// validation passes for noise-free configurations.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn subsample<R: Rng + ?Sized>(&self, fraction: f64, rng: &mut R) -> Dataset {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "subsample: fraction must be in (0, 1]"
        );
        let take = ((self.len() as f64 * fraction).ceil() as usize).clamp(1, self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(take);
        let (images, labels) = self.select(&indices);
        Dataset { images, labels }
    }

    /// Returns a copy with each image horizontally mirrored with
    /// probability ½ — the only augmentation the training loop uses.
    pub fn random_flip<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let (n, c, h, w) = self.images.dims4();
        let mut images = self.images.clone();
        let data = images.data_mut();
        for ni in 0..n {
            if rng.gen::<f32>() < 0.5 {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for row in 0..h {
                        data[base + row * w..base + (row + 1) * w].reverse();
                    }
                }
            }
        }
        Dataset {
            images,
            labels: self.labels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::rng;

    fn toy() -> Dataset {
        let images = Tensor::from_vec(&[3, 1, 1, 2], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        Dataset::new(images, vec![0, 1, 2])
    }

    #[test]
    fn select_copies_rows() {
        let ds = toy();
        let (batch, labels) = ds.select(&[2, 1]);
        assert_eq!(batch.data(), &[4.0, 5.0, 2.0, 3.0]);
        assert_eq!(labels, vec![2, 1]);
    }

    #[test]
    fn subsample_size_and_membership() {
        let ds = toy();
        let mut r = rng::seeded(0);
        let sub = ds.subsample(0.67, &mut r);
        assert_eq!(sub.len(), 3); // ceil(3 * 0.67) = ceil(2.01) = 3... (0.67*3=2.01)
        let full = ds.subsample(1.0, &mut r);
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn flip_reverses_rows() {
        let ds = toy();
        let mut r = rng::seeded(1);
        // Flip many times; at least one flip must occur and flipped rows
        // are exact reversals.
        let mut saw_flip = false;
        for _ in 0..10 {
            let flipped = ds.random_flip(&mut r);
            for i in 0..ds.len() {
                let orig = &ds.images().data()[i * 2..(i + 1) * 2];
                let new = &flipped.images().data()[i * 2..(i + 1) * 2];
                if new[0] == orig[1] && new[1] == orig[0] && orig[0] != orig[1] {
                    saw_flip = true;
                } else {
                    assert_eq!(new, orig);
                }
            }
        }
        assert!(saw_flip);
    }

    #[test]
    fn num_classes_from_labels() {
        assert_eq!(toy().num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn select_validates_indices() {
        toy().select(&[5]);
    }
}
