//! Shuffled minibatch iteration.

use ams_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// An iterator over shuffled minibatches of a [`Dataset`].
///
/// The final batch may be smaller than `batch_size`; every example appears
/// exactly once per epoch.
///
/// # Example
///
/// ```
/// use ams_data::{Batcher, SynthConfig};
/// use ams_tensor::rng;
///
/// let data = SynthConfig::tiny().generate();
/// let mut r = rng::seeded(3);
/// let total: usize = Batcher::new(&data.train, 10, &mut r)
///     .map(|(_, labels)| labels.len())
///     .sum();
/// assert_eq!(total, data.train.len());
/// ```
#[derive(Debug)]
pub struct Batcher<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    pos: usize,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher with a freshly shuffled epoch order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new<R: Rng + ?Sized>(dataset: &'a Dataset, batch_size: usize, rng: &mut R) -> Self {
        assert!(batch_size > 0, "Batcher: zero batch size");
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        order.shuffle(rng);
        Batcher {
            dataset,
            order,
            batch_size,
            pos: 0,
        }
    }

    /// Creates a batcher that iterates in dataset order (evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn sequential(dataset: &'a Dataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "Batcher: zero batch size");
        Batcher {
            dataset,
            order: (0..dataset.len()).collect(),
            batch_size,
            pos: 0,
        }
    }

    /// Number of batches this iterator will yield in total.
    pub fn num_batches(&self) -> usize {
        self.dataset.len().div_ceil(self.batch_size)
    }
}

impl Iterator for Batcher<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let batch = self.dataset.select(&self.order[self.pos..end]);
        self.pos = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_tensor::rng;

    fn toy() -> Dataset {
        let images = Tensor::zeros(&[7, 1, 2, 2]);
        Dataset::new(images, (0..7).collect())
    }

    #[test]
    fn covers_every_example_once() {
        let ds = toy();
        let mut r = rng::seeded(0);
        let mut seen: Vec<usize> = Batcher::new(&ds, 3, &mut r).flat_map(|(_, l)| l).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn last_batch_is_partial() {
        let ds = toy();
        let sizes: Vec<usize> = Batcher::sequential(&ds, 3).map(|(_, l)| l.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn sequential_preserves_order() {
        let ds = toy();
        let labels: Vec<usize> = Batcher::sequential(&ds, 4).flat_map(|(_, l)| l).collect();
        assert_eq!(labels, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn num_batches_matches_iteration() {
        let ds = toy();
        let b = Batcher::sequential(&ds, 2);
        assert_eq!(b.num_batches(), 4);
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn oversized_batch_yields_one_full_epoch_batch() {
        // batch_size > len: a single batch holding the whole dataset, for
        // both orderings, and num_batches agrees.
        let ds = toy();
        let mut r = rng::seeded(1);
        for b in [
            Batcher::sequential(&ds, 100),
            Batcher::new(&ds, 100, &mut r),
        ] {
            assert_eq!(b.num_batches(), 1);
            let batches: Vec<_> = b.collect();
            assert_eq!(batches.len(), 1);
            let (images, labels) = &batches[0];
            assert_eq!(images.dims()[0], ds.len());
            assert_eq!(labels.len(), ds.len());
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn final_partial_batch_has_the_remainder() {
        // 7 examples at batch 4 → sizes [4, 3]; the shuffled batcher cuts
        // the same boundary, and the image tensor tracks the label count.
        let ds = toy();
        let mut r = rng::seeded(2);
        for b in [Batcher::sequential(&ds, 4), Batcher::new(&ds, 4, &mut r)] {
            let batches: Vec<_> = b.collect();
            let sizes: Vec<usize> = batches.iter().map(|(_, l)| l.len()).collect();
            assert_eq!(sizes, vec![4, 3]);
            for (images, labels) in &batches {
                assert_eq!(images.dims()[0], labels.len());
            }
        }
    }

    #[test]
    fn shuffled_epoch_is_a_permutation_of_sequential() {
        // Same multiset of indices per epoch, shuffled or not — and the
        // shuffle actually permutes (seeded, so deterministic here).
        let ds = toy();
        let sequential: Vec<usize> = Batcher::sequential(&ds, 3).flat_map(|(_, l)| l).collect();
        let mut r = rng::seeded(3);
        let shuffled: Vec<usize> = Batcher::new(&ds, 3, &mut r).flat_map(|(_, l)| l).collect();
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, sequential, "same index multiset per epoch");
        assert_ne!(shuffled, sequential, "seed 3 must actually permute");
    }
}
