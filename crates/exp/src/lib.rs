//! Experiment harness reproducing every table and figure of
//! *"Analog/Mixed-Signal Hardware Error Modeling for Deep Learning
//! Inference"* (Rekhi et al., DAC 2019).
//!
//! Each paper artifact has a binary that regenerates it on the SynthImageNet
//! + ResNet-mini substrate (see DESIGN.md for the substitution table):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — quantization baselines (FP32 / 8b / 6b6b / 6b4b) |
//! | `fig4` | Fig. 4 — loss vs ENOB re: 8b net, eval-only vs retrained |
//! | `fig5` | Fig. 5 — loss vs ENOB re: 6b net, eval-only |
//! | `table2` | Table 2 — selective freezing during AMS retraining |
//! | `fig6` | Fig. 6 — activation means pushed away from zero |
//! | `fig7` | Fig. 7 — ADC survey with Schreier-FOM hull |
//! | `fig8` | Fig. 8 — (ENOB, N_mult) grid with energy level curves |
//! | `ablations` | §4 — per-VMAC sim, ΔΣ recycling, partitioning, … |
//!
//! All binaries accept `--scale quick|full|test` (default `quick`),
//! `--results <dir>` (default `results/`), `--threads <n>` and
//! `--metrics <path>` (write a metrics report — layer timings, injected
//! noise statistics, sweep rollups — as JSON, or CSV for a `.csv` path;
//! see EXPERIMENTS.md). Expensive artifacts (trained checkpoints) are
//! cached in the results directory, so binaries can run in any order and
//! share work.
//!
//! # Example
//!
//! ```no_run
//! use ams_exp::{Experiments, Scale};
//!
//! let exp = Experiments::new(Scale::test(), "results-test");
//! let t1 = exp.table1();
//! for row in &t1.rows {
//!     println!("{} {:.3} ± {:.1e}", row.label, row.accuracy.mean, row.accuracy.std);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cli;
mod report;
mod runner;
mod scale;
pub mod sweep;
mod train;

pub use cli::{
    run_bin, run_bin_custom, usage_exit, write_metrics_report, Cli, USAGE, USAGE_EXIT_CODE,
};
pub use report::{print_table, write_csv, Report, Stat};
pub use runner::{
    AblationReport, Experiments, Fig4Result, Fig4Row, Fig5Result, Fig6Result, Fig6Row, Fig7Result,
    Fig8Result, Table1Result, Table1Row, Table2Result, Table2Row,
};
pub use scale::Scale;
pub use train::{
    eval_accuracy, eval_passes, train_scheduled, train_scheduled_resumable, train_with_eval,
    TrainOutcome, TrainState,
};
