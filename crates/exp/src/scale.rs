//! Experiment scale presets and CLI parsing.

use ams_data::SynthConfig;
use ams_models::{LeNet5Config, ModelKind, ModelSpec, ResNetMiniConfig};
use serde::{Deserialize, Serialize};

/// Everything that sizes an experiment run: dataset, architecture,
/// training schedule and the ENOB sweep grids.
///
/// The paper runs ResNet-50 on ImageNet across 7 V100s; this harness runs
/// ResNet-mini on SynthImageNet on one CPU core, so the ENOB grids sit
/// lower (the error σ scales with `√N_tot`, and our layers have far
/// smaller `N_tot` than ResNet-50's — see DESIGN.md §5). The *shape* of
/// every result is what transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Preset name (`quick`, `full`, `test`).
    pub name: String,
    /// Dataset configuration.
    pub synth: SynthConfig,
    /// ResNet-mini architecture (the default `--model resnet-mini`).
    pub arch: ResNetMiniConfig,
    /// LeNet-5 architecture sized for the same dataset (`--model lenet5`).
    pub lenet: LeNet5Config,
    /// Minibatch size.
    pub batch: usize,
    /// Epochs of FP32 pretraining.
    pub fp32_epochs: usize,
    /// Epochs of quantized / AMS retraining.
    pub retrain_epochs: usize,
    /// FP32 pretraining learning rate.
    pub fp32_lr: f32,
    /// Retraining learning rate (the paper uses 0.004 at batch 1024).
    pub retrain_lr: f32,
    /// Validation passes per reported accuracy (paper: 5).
    pub eval_passes: usize,
    /// ENOB sweep for Fig. 4 (8-bit quantization).
    pub enob_grid: Vec<f64>,
    /// ENOB sweep for Fig. 5 (6-bit quantization).
    pub enob_grid_6b: Vec<f64>,
    /// The fixed ENOB of the Table 2 freezing study (a point where
    /// retraining recovers accuracy; the paper uses 10 for ResNet-50).
    pub table2_enob: f64,
    /// ENOB levels probed in Fig. 6 (the paper shows 9–12 b).
    pub fig6_enobs: Vec<f64>,
    /// Number of synthetic survey points for Fig. 7.
    pub survey_points: usize,
    /// `N_mult` axis of the Fig. 8 grid.
    pub fig8_n_mults: Vec<usize>,
    /// Master seed for training shuffles and evaluation subsampling.
    pub seed: u64,
}

impl Scale {
    /// The default preset: minutes-scale on one CPU core.
    pub fn quick() -> Self {
        Scale {
            name: "quick".to_string(),
            synth: SynthConfig::quick(),
            arch: ResNetMiniConfig::quick(),
            lenet: LeNet5Config::quick(),
            batch: 64,
            fp32_epochs: 36,
            retrain_epochs: 7,
            fp32_lr: 0.05,
            retrain_lr: 0.004,
            eval_passes: 5,
            enob_grid: vec![3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 7.0, 8.0],
            enob_grid_6b: vec![4.0, 4.5, 5.0, 5.5, 6.0, 7.0],
            table2_enob: 4.5,
            fig6_enobs: vec![3.5, 4.0, 4.5, 5.0],
            survey_points: 300,
            fig8_n_mults: vec![2, 4, 8, 16, 32, 64, 128, 256],
            seed: 1234,
        }
    }

    /// A larger preset (tens of minutes to hours).
    pub fn full() -> Self {
        Scale {
            name: "full".to_string(),
            synth: SynthConfig::full(),
            arch: ResNetMiniConfig::full(),
            lenet: LeNet5Config::full(),
            batch: 64,
            fp32_epochs: 50,
            retrain_epochs: 10,
            fp32_lr: 0.05,
            retrain_lr: 0.004,
            eval_passes: 5,
            enob_grid: vec![3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0, 9.0],
            enob_grid_6b: vec![4.0, 4.5, 5.0, 5.5, 6.0, 7.0, 8.0],
            table2_enob: 5.0,
            fig6_enobs: vec![4.0, 4.5, 5.0, 5.5],
            survey_points: 600,
            fig8_n_mults: vec![2, 4, 8, 16, 32, 64, 128, 256, 512],
            seed: 1234,
        }
    }

    /// A seconds-scale preset for integration tests and doc examples.
    pub fn test() -> Self {
        Scale {
            name: "test".to_string(),
            synth: SynthConfig::tiny(),
            arch: ResNetMiniConfig::tiny(),
            lenet: LeNet5Config::tiny(),
            batch: 16,
            fp32_epochs: 3,
            retrain_epochs: 1,
            fp32_lr: 0.05,
            retrain_lr: 0.01,
            eval_passes: 2,
            enob_grid: vec![4.0, 6.0],
            enob_grid_6b: vec![4.0, 6.0],
            table2_enob: 4.0,
            fig6_enobs: vec![4.0, 6.0],
            survey_points: 60,
            fig8_n_mults: vec![4, 8, 16],
            seed: 1234,
        }
    }

    /// The [`ModelSpec`] this scale builds for the requested topology —
    /// both zoo members are sized for the same synthetic dataset, so
    /// `--model` swaps the network without touching anything else.
    pub fn model_spec(&self, kind: ModelKind) -> ModelSpec {
        match kind {
            ModelKind::ResNetMini => ModelSpec::ResNetMini(self.arch),
            ModelKind::LeNet5 => ModelSpec::LeNet5(self.lenet),
        }
    }

    /// Resolves a preset by name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name so callers can report it.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "quick" => Ok(Self::quick()),
            "full" => Ok(Self::full()),
            "test" => Ok(Self::test()),
            other => Err(other.to_string()),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        assert_eq!(Scale::by_name("quick").unwrap().name, "quick");
        assert_eq!(Scale::by_name("full").unwrap().name, "full");
        assert_eq!(Scale::by_name("test").unwrap().name, "test");
        assert!(Scale::by_name("huge").is_err());
    }

    #[test]
    fn lenet_presets_match_their_datasets() {
        for s in [Scale::quick(), Scale::full(), Scale::test()] {
            assert_eq!(s.lenet.image_size, s.synth.image_size, "{}", s.name);
            assert_eq!(s.lenet.classes, s.synth.classes, "{}", s.name);
            assert_eq!(s.lenet.in_channels, s.synth.channels, "{}", s.name);
            assert_eq!(s.model_spec(ModelKind::LeNet5).kind(), ModelKind::LeNet5);
            assert_eq!(
                s.model_spec(ModelKind::ResNetMini).kind(),
                ModelKind::ResNetMini
            );
        }
    }

    #[test]
    fn grids_are_sorted_and_nonempty() {
        for s in [Scale::quick(), Scale::full(), Scale::test()] {
            assert!(!s.enob_grid.is_empty());
            assert!(s.enob_grid.windows(2).all(|w| w[0] < w[1]), "{}", s.name);
            assert!(s.enob_grid_6b.windows(2).all(|w| w[0] < w[1]));
            assert!(
                s.fig8_n_mults.contains(&8),
                "grid must include the reference N_mult"
            );
        }
    }
}
