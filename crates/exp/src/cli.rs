//! Shared CLI parsing for the experiment binaries, including the
//! `--metrics <path>` observability flag.

use std::path::{Path, PathBuf};

use ams_core::error_model::{ErrorModelConfig, ErrorModelKind, PartitionSpec};
use ams_core::vmac_sim::AdcBehavior;
use ams_models::ModelKind;
use ams_quant::QuantScheme;
use ams_tensor::obs::{MetricsReport, CSV_HEADERS};
use ams_tensor::{ExecCtx, KernelDispatch, MetricsSink};

use crate::report::{write_csv, Report};
use crate::runner::Experiments;
use crate::scale::Scale;

/// Parsed command-line options common to every experiment binary:
///
/// ```text
/// [--scale quick|full|test] [--results DIR] [--threads N] [--metrics PATH] [--resume]
/// [--model resnet-mini|lenet5] [--quant dorefa|bfp] [--bfp-block N] [--kernel f32|i8]
/// [--error-model lumped|composite|per-vmac|ideal] [--multiplier-sigma S]
/// [--adc ideal|quantizing|delta-sigma[:BITS]|ref-scaled:ALPHA] [--partition NW,NX,ENOB]
/// ```
///
/// `--model` picks the zoo member the suite builds (see DESIGN.md §12):
/// the default `resnet-mini` or the LeNet-style `lenet5`, both sized for
/// the active `--scale`'s dataset. `--quant` picks the weight/activation
/// quantizer: the default `dorefa` or the adaptive block-floating-point
/// `bfp` (`--bfp-block N` sets its block size, default 16, and is only
/// valid together with `--quant bfp`).
///
/// `--kernel` selects the eval-time matmul dispatch: the default `f32`
/// runs the tiled f32 kernels (bit-identical to every committed golden);
/// `i8` routes ≤8-bit eval layers through the packed integer GEMM (see
/// DESIGN.md §13). The integer path is statistically — not bitwise —
/// equivalent to f32, so `--kernel i8` runs write their artifacts under
/// `-i8`-suffixed scenario names and never overwrite f32 outputs.
///
/// `--error-model` selects how the VMAC error budget is realized (see
/// DESIGN.md §10): the default `lumped` Gaussian reproduces the paper's
/// Eq. 1/2 pipeline bit-for-bit; `composite` splits the budget into a
/// multiplier term (`--multiplier-sigma`, RMS per D-to-A multiplier,
/// default 0.01) plus the ADC; `per-vmac` simulates every chunked
/// conversion at evaluation (`--adc` picks the converter behavior,
/// `--partition NW,NX,ENOB` folds a §4 multiplication partition in);
/// `ideal` injects nothing. Every non-default `{model}-{quant}-{error}`
/// scenario writes its artifacts under scenario-suffixed names, so it
/// never overwrites the default pipeline's outputs.
///
/// `--resume` makes the run honor any sweep journal and train-state files
/// a previous (killed) run left in the results directory: completed sweep
/// points are replayed from the journal, a mid-training kill continues
/// bit-identically from its last epoch checkpoint, and quarantined points
/// stay skipped (see EXPERIMENTS.md, "Checkpointing & resume"). Without
/// the flag every sweep starts from a clean journal (trained-checkpoint
/// caching still applies).
///
/// Thread-count resolution: `--threads N` wins; otherwise the
/// `AMS_THREADS` environment variable; otherwise all available cores.
///
/// `--metrics PATH` attaches a recording [`MetricsSink`] to the execution
/// context, so the whole stack (kernel dispatches, layer timings, injected
/// noise statistics, sweep rollups) records into one registry; at the end
/// of `main` the binary calls [`Cli::write_metrics`] to snapshot it to
/// `PATH` — JSON by default, CSV when the path ends in `.csv`. Without the
/// flag the sink is disabled and recording costs nothing.
///
/// # Example
///
/// ```no_run
/// use ams_exp::{Cli, Experiments, Report};
///
/// let cli = Cli::from_args();
/// let exp = Experiments::new(cli.scale.clone(), &cli.results).with_ctx(cli.ctx());
/// let t1 = exp.table1();
/// t1.report(exp.results_dir(), &exp.scale().name);
/// cli.write_metrics();
/// ```
#[derive(Debug)]
pub struct Cli {
    /// The resolved scale preset.
    pub scale: Scale,
    /// The results directory (cache + CSV output).
    pub results: String,
    /// Where to write the metrics report, if `--metrics` was given.
    pub metrics_path: Option<PathBuf>,
    /// Whether `--resume` was given (honor sweep journals + train state).
    pub resume: bool,
    /// The error model selected by `--error-model` and its parameter
    /// flags (default: the lumped Gaussian).
    pub error_model: ErrorModelConfig,
    /// The model topology selected by `--model` (default: ResNet-mini).
    pub model: ModelKind,
    /// The quantizer scheme selected by `--quant` / `--bfp-block`
    /// (default: DoReFa).
    pub quant: QuantScheme,
    /// The matmul dispatch selected by `--kernel` (default: f32).
    pub kernel: KernelDispatch,
    ctx: ExecCtx,
}

/// The one-line flag synopsis shared by every experiment binary's usage
/// error (see [`usage_exit`]).
pub const USAGE: &str = "[--scale quick|full|test] [--results DIR] [--threads N] [--metrics PATH] [--resume] [--model resnet-mini|lenet5] [--quant dorefa|bfp] [--bfp-block N] [--kernel f32|i8] [--error-model lumped|composite|per-vmac|ideal] [--multiplier-sigma S] [--adc ideal|quantizing|delta-sigma[:BITS]|ref-scaled:ALPHA] [--partition NW,NX,ENOB]";

/// The process exit code for command-line usage errors (unknown flag,
/// missing value, unparsable value). Distinct from the generic panic
/// code 101, so scripts can tell "you invoked it wrong" from "it broke".
pub const USAGE_EXIT_CODE: i32 = 2;

/// Prints a usage error to stderr and exits with [`USAGE_EXIT_CODE`].
///
/// Shared by the nine experiment binaries (via [`Cli::from_args`]) and
/// `ams-serve`, which passes its own `usage` synopsis.
pub fn usage_exit(message: &str, usage: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {usage}");
    std::process::exit(USAGE_EXIT_CODE)
}

impl Cli {
    /// Parses process arguments, defaulting to the `quick` scale, the
    /// `results` directory, all available cores, and no metrics.
    ///
    /// On an unknown flag, a flag missing its value, or an unparsable
    /// value, prints the error plus the flag synopsis to stderr and exits
    /// with code [`USAGE_EXIT_CODE`] (2).
    pub fn from_args() -> Self {
        Self::try_parse(std::env::args().skip(1).collect())
            .unwrap_or_else(|message| usage_exit(&message, USAGE))
    }

    /// Parses an argument vector (without the program name), returning a
    /// usage-error message instead of exiting.
    ///
    /// # Errors
    ///
    /// Returns the human-readable message [`Cli::from_args`] would print
    /// before exiting with code 2.
    pub fn try_parse(args: Vec<String>) -> Result<Self, String> {
        let mut scale = Scale::quick();
        let mut results = "results".to_string();
        let mut ctx = ExecCtx::from_env();
        let mut metrics_path: Option<PathBuf> = None;
        let mut resume = false;
        let mut kind = ErrorModelKind::Lumped;
        let mut multiplier_sigma: Option<f64> = None;
        let mut adc: Option<AdcBehavior> = None;
        let mut partition: Option<PartitionSpec> = None;
        let mut model = ModelKind::ResNetMini;
        let mut quant_name = "dorefa".to_string();
        let mut bfp_block: Option<usize> = None;
        let mut kernel = KernelDispatch::F32;
        // Returns `--flag`'s value argument, or the usage error for a
        // flag that ends the argument list.
        let value = |i: usize, flag: &str| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    scale = Scale::by_name(value(i, "--scale")?)
                        .map_err(|n| format!("unknown scale {n:?}; use quick|full|test"))?;
                    i += 2;
                }
                "--results" => {
                    results = value(i, "--results")?.clone();
                    i += 2;
                }
                "--threads" => {
                    let n: usize = value(i, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads needs a positive integer: {e}"))?;
                    ctx = ExecCtx::with_threads(n);
                    i += 2;
                }
                "--metrics" => {
                    metrics_path = Some(PathBuf::from(value(i, "--metrics")?));
                    i += 2;
                }
                "--resume" => {
                    resume = true;
                    i += 1;
                }
                "--model" => {
                    model = value(i, "--model")?.parse()?;
                    i += 2;
                }
                "--quant" => {
                    quant_name = value(i, "--quant")?.clone();
                    i += 2;
                }
                "--bfp-block" => {
                    bfp_block = Some(
                        value(i, "--bfp-block")?
                            .parse()
                            .map_err(|e| format!("--bfp-block needs a positive integer: {e}"))?,
                    );
                    i += 2;
                }
                "--error-model" => {
                    kind = value(i, "--error-model")?.parse()?;
                    i += 2;
                }
                "--multiplier-sigma" => {
                    multiplier_sigma = Some(
                        value(i, "--multiplier-sigma")?
                            .parse()
                            .map_err(|e| format!("--multiplier-sigma needs a number: {e}"))?,
                    );
                    i += 2;
                }
                "--adc" => {
                    adc = Some(parse_adc(value(i, "--adc")?)?);
                    i += 2;
                }
                "--partition" => {
                    partition = Some(parse_partition(value(i, "--partition")?)?);
                    i += 2;
                }
                "--kernel" => {
                    kernel = KernelDispatch::by_name(value(i, "--kernel")?)?;
                    i += 2;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        // Applied after the loop: `--threads` rebuilds the context, so the
        // kernel selection must not depend on flag order.
        ctx = ctx.with_kernel(kernel);
        if metrics_path.is_some() {
            ctx = ctx.with_metrics(MetricsSink::recording());
        }
        Ok(Cli {
            scale,
            results,
            metrics_path,
            resume,
            error_model: assemble_error_model(kind, multiplier_sigma, adc, partition)?,
            model,
            quant: assemble_quant_scheme(&quant_name, bfp_block)?,
            kernel,
            ctx,
        })
    }

    /// A clone of the execution context. Clones share the metrics sink,
    /// so the context handed to [`crate::Experiments::with_ctx`] records
    /// into the same registry [`Cli::write_metrics`] later snapshots.
    pub fn ctx(&self) -> ExecCtx {
        self.ctx.clone()
    }

    /// The metrics sink (disabled unless `--metrics` was given).
    pub fn metrics(&self) -> &MetricsSink {
        self.ctx.metrics()
    }

    /// Snapshots the metrics registry to [`Cli::metrics_path`]. A no-op
    /// without `--metrics`. Failures are reported on stderr, not fatal —
    /// observability must never sink a finished experiment.
    pub fn write_metrics(&self) {
        let Some(path) = &self.metrics_path else {
            return;
        };
        let Some(registry) = self.ctx.metrics().registry() else {
            return;
        };
        let report = registry.report();
        match write_metrics_report(path, &report) {
            Ok(()) => println!("wrote metrics report to {}", path.display()),
            Err(e) => eprintln!("failed to write metrics to {}: {e}", path.display()),
        }
    }
}

/// Assembles the [`ErrorModelConfig`] from the parsed flags, rejecting
/// parameter flags that do not apply to the selected model.
fn assemble_error_model(
    kind: ErrorModelKind,
    multiplier_sigma: Option<f64>,
    adc: Option<AdcBehavior>,
    partition: Option<PartitionSpec>,
) -> Result<ErrorModelConfig, String> {
    match kind {
        ErrorModelKind::Composite => {
            if adc.is_some() || partition.is_some() {
                return Err("--adc/--partition apply to --error-model per-vmac only".into());
            }
            Ok(ErrorModelConfig::Composite {
                multiplier_sigma: multiplier_sigma.unwrap_or(0.01),
            })
        }
        ErrorModelKind::PerVmac => {
            if multiplier_sigma.is_some() {
                return Err("--multiplier-sigma applies to --error-model composite only".into());
            }
            Ok(ErrorModelConfig::PerVmac {
                behavior: adc.unwrap_or(AdcBehavior::Quantizing),
                partition,
            })
        }
        ErrorModelKind::Lumped | ErrorModelKind::Ideal => {
            if multiplier_sigma.is_some() || adc.is_some() || partition.is_some() {
                return Err(
                    "--multiplier-sigma/--adc/--partition require --error-model composite or per-vmac"
                        .into(),
                );
            }
            Ok(if kind == ErrorModelKind::Ideal {
                ErrorModelConfig::Ideal
            } else {
                ErrorModelConfig::Lumped
            })
        }
    }
}

/// Assembles the [`QuantScheme`] from `--quant` / `--bfp-block`,
/// rejecting `--bfp-block` when the DoReFa quantizer is selected.
fn assemble_quant_scheme(name: &str, bfp_block: Option<usize>) -> Result<QuantScheme, String> {
    match name {
        "dorefa" => {
            if bfp_block.is_some() {
                return Err("--bfp-block applies to --quant bfp only".into());
            }
            Ok(QuantScheme::Dorefa)
        }
        "bfp" => {
            let block = bfp_block.unwrap_or(16);
            if block < 1 {
                return Err("--bfp-block needs a positive block size".into());
            }
            Ok(QuantScheme::Bfp { block })
        }
        other => Err(format!("unknown quantizer {other:?}; use dorefa|bfp")),
    }
}

/// Parses an `--adc` value: `ideal`, `quantizing`, `delta-sigma[:BITS]`
/// (extra final-conversion bits, default 2), or `ref-scaled:ALPHA`.
fn parse_adc(value: &str) -> Result<AdcBehavior, String> {
    let (name, arg) = match value.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (value, None),
    };
    match (name, arg) {
        ("ideal", None) => Ok(AdcBehavior::Ideal),
        ("quantizing", None) => Ok(AdcBehavior::Quantizing),
        ("delta-sigma", arg) => Ok(AdcBehavior::DeltaSigma {
            final_extra_bits: match arg {
                Some(a) => a
                    .parse()
                    .map_err(|e| format!("--adc delta-sigma:BITS needs a number: {e}"))?,
                None => 2.0,
            },
        }),
        ("ref-scaled", Some(a)) => Ok(AdcBehavior::RefScaled {
            alpha: a
                .parse()
                .map_err(|e| format!("--adc ref-scaled:ALPHA needs a number: {e}"))?,
        }),
        _ => Err(format!(
            "unknown --adc value {value:?}; expected ideal|quantizing|delta-sigma[:BITS]|ref-scaled:ALPHA"
        )),
    }
}

/// Parses a `--partition` value `NW,NX,SLICE_ENOB` into a [`PartitionSpec`].
fn parse_partition(value: &str) -> Result<PartitionSpec, String> {
    let parts: Vec<&str> = value.split(',').collect();
    let [nw, nx, slice_enob] = parts.as_slice() else {
        return Err(format!(
            "--partition needs NW,NX,SLICE_ENOB (e.g. 2,2,12.0), got {value:?}"
        ));
    };
    Ok(PartitionSpec {
        n_w: nw
            .parse()
            .map_err(|e| format!("--partition NW needs an integer: {e}"))?,
        n_x: nx
            .parse()
            .map_err(|e| format!("--partition NX needs an integer: {e}"))?,
        slice_enob: slice_enob
            .parse()
            .map_err(|e| format!("--partition SLICE_ENOB needs a number: {e}"))?,
    })
}

/// The shared scaffolding of every experiment binary: parse the CLI,
/// assemble the [`Experiments`] suite from it, run `build`, print/write
/// the result's report (under the model-suffixed scale name), print the
/// `epilogue` lines, and snapshot metrics.
///
/// ```no_run
/// use ams_exp::{run_bin, Experiments};
///
/// fn main() {
///     run_bin(Experiments::table1, &["Expected shape: 8b ~= FP32."]);
/// }
/// ```
pub fn run_bin<R: Report>(build: impl FnOnce(&Experiments) -> R, epilogue: &[&str]) {
    run_bin_custom(|exp, _cli| {
        let result = build(exp);
        result.report(exp.results_dir(), &exp.report_scale_name());
        if !epilogue.is_empty() {
            println!();
        }
        for line in epilogue {
            println!("{line}");
        }
    });
}

/// [`run_bin`] for binaries with bespoke output (e.g. the combined
/// `report` binary): handles CLI parsing, suite assembly and the final
/// metrics snapshot, leaving the body to `run`.
pub fn run_bin_custom(run: impl FnOnce(&Experiments, &Cli)) {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume)
        .with_error_model(cli.error_model)
        .with_model(cli.model)
        .with_quant(cli.quant);
    run(&exp, &cli);
    cli.write_metrics();
}

/// Writes a metrics report to `path` — CSV (flat kind/name table) when the
/// extension is `.csv`, JSON otherwise. Parent directories are created.
///
/// # Errors
///
/// Returns any underlying serialization or I/O error.
pub fn write_metrics_report(path: &Path, report: &MetricsReport) -> std::io::Result<()> {
    if path.extension().is_some_and(|e| e == "csv") {
        return write_csv(path, &CSV_HEADERS, &report.csv_rows());
    }
    let text = serde_json::to_string(report)
        .map_err(|e| std::io::Error::other(format!("metrics serialization failed: {e:?}")))?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    ams_obs::fsio::atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Parses or panics — the happy-path helper for tests that only care
    /// about the parsed configuration.
    fn parse(args: Vec<String>) -> Cli {
        Cli::try_parse(args).expect("arguments should parse")
    }

    #[test]
    fn defaults_without_flags() {
        let cli = parse(args(&[]));
        assert_eq!(cli.scale.name, "quick");
        assert_eq!(cli.results, "results");
        assert!(cli.metrics_path.is_none());
        assert!(!cli.metrics().enabled());
    }

    #[test]
    fn metrics_flag_attaches_recording_sink() {
        let cli = parse(args(&["--scale", "test", "--metrics", "/tmp/m.json"]));
        assert_eq!(cli.scale.name, "test");
        assert!(cli.metrics().enabled());
        // The handed-out context shares the registry.
        let ctx = cli.ctx();
        ctx.metrics().inc("probe");
        let report = cli.metrics().registry().unwrap().report();
        assert_eq!(report.counter("probe").unwrap().value, 1);
    }

    #[test]
    fn json_and_csv_reports_round_trip() {
        let sink = MetricsSink::recording();
        sink.inc("c");
        sink.observe("g", 1.5);
        sink.observe("g", 2.5);
        let report = sink.registry().unwrap().report();
        let dir = std::env::temp_dir().join("ams_exp_metrics_io_test");
        let _ = std::fs::remove_dir_all(&dir);

        let json_path = dir.join("m.json");
        write_metrics_report(&json_path, &report).unwrap();
        let text = std::fs::read_to_string(&json_path).unwrap();
        let parsed: MetricsReport = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, report);

        let csv_path = dir.join("m.csv");
        write_metrics_report(&csv_path, &report).unwrap();
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("kind,name,"));
        assert!(csv.lines().count() >= 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn resume_flag_parses() {
        assert!(parse(args(&["--resume"])).resume);
        assert!(!parse(args(&[])).resume);
    }

    #[test]
    fn error_model_flags_parse() {
        assert_eq!(parse(args(&[])).error_model, ErrorModelConfig::Lumped);
        assert_eq!(
            parse(args(&["--error-model", "ideal"])).error_model,
            ErrorModelConfig::Ideal
        );
        assert_eq!(
            parse(args(&[
                "--error-model",
                "composite",
                "--multiplier-sigma",
                "0.03"
            ]))
            .error_model,
            ErrorModelConfig::Composite {
                multiplier_sigma: 0.03
            }
        );
        assert_eq!(
            parse(args(&["--error-model", "per-vmac"])).error_model,
            ErrorModelConfig::per_vmac()
        );
        assert_eq!(
            parse(args(&[
                "--error-model",
                "per-vmac",
                "--adc",
                "delta-sigma:3",
                "--partition",
                "2,2,12.0",
            ]))
            .error_model,
            ErrorModelConfig::PerVmac {
                behavior: AdcBehavior::DeltaSigma {
                    final_extra_bits: 3.0
                },
                partition: Some(PartitionSpec {
                    n_w: 2,
                    n_x: 2,
                    slice_enob: 12.0
                }),
            }
        );
        assert_eq!(
            parse(args(&[
                "--error-model",
                "per-vmac",
                "--adc",
                "ref-scaled:0.5"
            ]))
            .error_model,
            ErrorModelConfig::PerVmac {
                behavior: AdcBehavior::RefScaled { alpha: 0.5 },
                partition: None,
            }
        );
    }

    #[test]
    fn model_and_quant_flags_parse() {
        let cli = parse(args(&[]));
        assert_eq!(cli.model, ModelKind::ResNetMini);
        assert_eq!(cli.quant, QuantScheme::Dorefa);

        let cli = parse(args(&["--model", "lenet5", "--quant", "bfp"]));
        assert_eq!(cli.model, ModelKind::LeNet5);
        assert_eq!(cli.quant, QuantScheme::Bfp { block: 16 });

        let cli = parse(args(&["--quant", "bfp", "--bfp-block", "8"]));
        assert_eq!(cli.quant, QuantScheme::Bfp { block: 8 });
        // Flag order must not matter.
        let cli = parse(args(&["--bfp-block", "8", "--quant", "bfp"]));
        assert_eq!(cli.quant, QuantScheme::Bfp { block: 8 });
    }

    #[test]
    fn kernel_flag_parses_and_reaches_the_context() {
        let cli = parse(args(&[]));
        assert_eq!(cli.kernel, KernelDispatch::F32);
        assert_eq!(cli.ctx().kernel(), KernelDispatch::F32);

        let cli = parse(args(&["--kernel", "i8"]));
        assert_eq!(cli.kernel, KernelDispatch::I8);
        assert_eq!(cli.ctx().kernel(), KernelDispatch::I8);

        // `--threads` rebuilds the context; the kernel must survive in
        // either flag order.
        let cli = parse(args(&["--kernel", "i8", "--threads", "2"]));
        assert_eq!(cli.ctx().kernel(), KernelDispatch::I8);
        let cli = parse(args(&["--threads", "2", "--kernel", "i8"]));
        assert_eq!(cli.ctx().kernel(), KernelDispatch::I8);
    }

    /// Asserts that parsing fails and the message contains `expect`.
    fn parse_err(list: &[&str], expect: &str) {
        let err = Cli::try_parse(args(list)).expect_err("arguments should be rejected");
        assert!(
            err.contains(expect),
            "error {err:?} should contain {expect:?}"
        );
    }

    #[test]
    fn rejects_unknown_kernel() {
        parse_err(&["--kernel", "f16"], "unknown kernel");
    }

    #[test]
    fn rejects_bfp_block_without_bfp() {
        parse_err(
            &["--bfp-block", "8"],
            "--bfp-block applies to --quant bfp only",
        );
    }

    #[test]
    fn rejects_unknown_quantizer() {
        parse_err(&["--quant", "int4"], "unknown quantizer");
    }

    #[test]
    fn rejects_unknown_model() {
        parse_err(&["--model", "vgg"], "unknown model");
    }

    #[test]
    fn rejects_unknown_error_model() {
        parse_err(&["--error-model", "bogus"], "unknown error model");
    }

    #[test]
    fn rejects_mismatched_model_params() {
        parse_err(
            &["--error-model", "per-vmac", "--multiplier-sigma", "0.1"],
            "--multiplier-sigma applies to --error-model composite only",
        );
    }

    #[test]
    fn rejects_unknown_flags() {
        parse_err(&["--bogus"], "unknown argument \"--bogus\"");
    }

    #[test]
    fn rejects_flags_missing_their_value() {
        // Every value-taking flag, dangling at the end of the arg list.
        for flag in [
            "--scale",
            "--results",
            "--threads",
            "--metrics",
            "--model",
            "--quant",
            "--bfp-block",
            "--error-model",
            "--multiplier-sigma",
            "--adc",
            "--partition",
            "--kernel",
        ] {
            parse_err(&[flag], &format!("{flag} needs a value"));
        }
    }

    #[test]
    fn rejects_unparsable_values() {
        parse_err(&["--threads", "many"], "--threads needs a positive integer");
        parse_err(&["--scale", "huge"], "unknown scale");
        parse_err(
            &["--partition", "2,2"],
            "--partition needs NW,NX,SLICE_ENOB",
        );
        parse_err(&["--adc", "sar"], "unknown --adc value");
    }
}
