//! The experiment runners — one method per paper table/figure — with
//! checkpoint caching so binaries can run in any order and share work.

use std::path::{Path, PathBuf};

use ams_core::energy::{
    adc_energy_pj, schreier_energy_pj, survey_lower_hull, synthesize_survey, AdcSurveyPoint,
    SCHREIER_FOM_DB,
};
use ams_core::mismatch::MismatchModel;
use ams_core::partition::PartitionedVmac;
use ams_core::tradeoff::{AccuracyCurve, TradeoffGrid};
use ams_core::vmac::Vmac;
use ams_core::vmac_sim::{AdcBehavior, VmacSimulator};
use ams_data::SynthImageNet;
use ams_models::{
    ErrorModelConfig, ErrorModelKind, FreezePolicy, HardwareConfig, ModelKind, ModelSpec,
};
use ams_nn::Checkpoint;
use ams_quant::{QuantConfig, QuantScheme};
use ams_tensor::{ExecCtx, KernelDispatch};
use serde::{Deserialize, Serialize};

use crate::report::{print_table, write_csv, Report, Stat};
use crate::scale::Scale;
use crate::sweep::{RetryPolicy, Sweep};
use crate::train::{eval_passes, train_scheduled_resumable};

/// Cached metadata of a trained configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrainedMeta {
    accuracy: Stat,
    best_epoch: usize,
}

/// The experiment suite: a scale preset, a results directory for caching
/// and CSV output, and the generated dataset.
///
/// # Example
///
/// ```no_run
/// use ams_exp::{Experiments, Scale};
///
/// let exp = Experiments::new(Scale::test(), "results-test");
/// let fig7 = exp.fig7();
/// assert!(fig7.points.len() > 0);
/// ```
pub struct Experiments {
    scale: Scale,
    dir: PathBuf,
    data: SynthImageNet,
    ctx: ExecCtx,
    resume: bool,
    error_model: ErrorModelConfig,
    model: ModelSpec,
    quant_scheme: QuantScheme,
}

impl Experiments {
    /// Creates the suite, generating the dataset for the given scale.
    pub fn new(scale: Scale, results_dir: impl AsRef<Path>) -> Self {
        let data = scale.synth.generate();
        let model = scale.model_spec(ModelKind::ResNetMini);
        Experiments {
            scale,
            dir: results_dir.as_ref().to_path_buf(),
            data,
            ctx: ExecCtx::serial(),
            resume: false,
            error_model: ErrorModelConfig::default(),
            model,
            quant_scheme: QuantScheme::Dorefa,
        }
    }

    /// Selects the error model every AMS configuration in this suite
    /// realizes (`--error-model` on the binaries). The default lumped
    /// Gaussian reproduces the pre-trait pipeline bit-for-bit; other
    /// models cache and journal under scenario-suffixed keys so they
    /// never collide with (or corrupt) the lumped artifacts.
    pub fn with_error_model(mut self, error_model: ErrorModelConfig) -> Self {
        self.error_model = error_model;
        self
    }

    /// Selects the network topology every experiment in this suite builds
    /// (`--model` on the binaries), sized by this suite's scale preset.
    pub fn with_model(mut self, kind: ModelKind) -> Self {
        self.model = self.scale.model_spec(kind);
        self
    }

    /// Selects the quantizer scheme applied to every bit-width preset in
    /// this suite (`--quant` on the binaries). The default DoReFa scheme
    /// reproduces the original pipeline bit-for-bit.
    pub fn with_quant(mut self, scheme: QuantScheme) -> Self {
        self.quant_scheme = scheme;
        self
    }

    /// Artifact-key fragment for a non-default kernel dispatch: evaluating
    /// under `--kernel i8` changes eval outputs (statistically, within the
    /// quantization bound), so its artifacts must never share a path with
    /// the f32 goldens. Empty for the default f32 dispatch.
    fn kernel_suffix(&self) -> &'static str {
        match self.ctx.kernel() {
            KernelDispatch::F32 => "",
            KernelDispatch::I8 => "-i8",
        }
    }

    /// The `{model}-{quant}-{error_model}[-kernel]` tuple this suite is
    /// running — the key under which non-default scenarios cache, journal
    /// and write CSVs so no two scenarios ever share an artifact path.
    pub fn scenario_key(&self) -> String {
        format!(
            "{}-{}-{}{}",
            self.model.kind().key(),
            self.quant_scheme.key(),
            self.error_model.kind(),
            self.kernel_suffix()
        )
    }

    /// Whether this suite runs the original pipeline (ResNetMini, DoReFa,
    /// lumped Gaussian, f32 kernels) whose artifacts keep their legacy
    /// unsuffixed names — the committed goldens stay byte-identical.
    fn is_default_scenario(&self) -> bool {
        self.model.kind() == ModelKind::ResNetMini
            && self.quant_scheme == QuantScheme::Dorefa
            && self.error_model.kind() == ErrorModelKind::Lumped
            && self.ctx.kernel() == KernelDispatch::F32
    }

    /// Artifact-name suffix for the full scenario; empty for the default
    /// scenario so existing caches, journals and golden CSVs keep their
    /// exact paths.
    fn scenario_suffix(&self) -> String {
        if self.is_default_scenario() {
            String::new()
        } else {
            format!("_{}", self.scenario_key())
        }
    }

    /// Cache-key suffix for artifacts that depend on the topology, the
    /// quantizer and the kernel dispatch but not the error model (the
    /// quantized digital baselines, which never inject). Eval accuracy is
    /// kernel-dependent — the i8 fast path rounds differently from f32 —
    /// so i8 runs get their own baseline artifacts.
    fn model_quant_suffix(&self) -> String {
        if self.model.kind() == ModelKind::ResNetMini
            && self.quant_scheme == QuantScheme::Dorefa
            && self.ctx.kernel() == KernelDispatch::F32
        {
            String::new()
        } else {
            format!(
                "_{}-{}{}",
                self.model.kind().key(),
                self.quant_scheme.key(),
                self.kernel_suffix()
            )
        }
    }

    /// Cache-key suffix for artifacts that depend only on the topology:
    /// the FP32 baseline trains identically under every quantizer (32-bit
    /// passthrough) and injects nothing.
    fn model_only_suffix(&self) -> String {
        match self.model.kind() {
            ModelKind::ResNetMini => String::new(),
            kind => format!("_{}", kind.key()),
        }
    }

    /// Applies the suite's quantizer scheme to a bit-width preset.
    fn schemed(&self, quant: QuantConfig) -> QuantConfig {
        quant.with_scheme(self.quant_scheme)
    }

    /// Opens the crash-safe journal for a sweep, under its scenario-keyed
    /// name (unsuffixed in the default scenario).
    fn scenario_sweep(&self, stem: &str) -> Sweep {
        self.sweep(&format!("{stem}{}", self.scenario_suffix()))
    }

    /// The stem binaries pass to [`crate::Report::report`]: the scale
    /// name, plus the scenario suffix for non-default scenarios so their
    /// CSVs never overwrite the default (golden) artifacts.
    pub fn report_scale_name(&self) -> String {
        format!("{}{}", self.scale.name, self.scenario_suffix())
    }

    /// Enables crash-resume: sweeps honor their journals (completed points
    /// replay, quarantined points stay skipped) and interrupted training
    /// runs continue bit-identically from their last epoch checkpoint.
    /// Off by default — a plain run clears any journal it finds so every
    /// sweep point recomputes (trained-checkpoint caching still applies).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Replaces the execution context (e.g. [`ExecCtx::auto`] to use every
    /// core). Results are bit-identical for any thread count; only
    /// wall-clock time changes.
    pub fn with_ctx(mut self, ctx: ExecCtx) -> Self {
        self.ctx = ctx;
        self
    }

    /// Attaches a metrics sink to the execution context, so every layer,
    /// kernel dispatch and sweep arm of this suite records into it (see
    /// the `--metrics <path>` flag on the experiment binaries).
    ///
    /// Swaps the sink in place ([`ExecCtx::set_metrics`]) rather than
    /// cloning the context, so the workspace arena — and any buffers it
    /// has already pooled — stays with this suite.
    pub fn with_metrics(mut self, sink: ams_tensor::MetricsSink) -> Self {
        self.ctx.set_metrics(sink);
        self
    }

    /// The execution context threaded through training and evaluation.
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// The active scale preset.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The results directory (cache + CSV output).
    pub fn results_dir(&self) -> &Path {
        &self.dir
    }

    /// The generated dataset.
    pub fn data(&self) -> &SynthImageNet {
        &self.data
    }

    fn path(&self, stem: &str, ext: &str) -> PathBuf {
        self.dir.join(format!("{stem}_{}.{ext}", self.scale.name))
    }

    /// Opens the crash-safe journal for the named sweep, clearing it
    /// unless this suite was built [`Experiments::with_resume`].
    ///
    /// # Panics
    ///
    /// Panics (with the journal's own remediation message) when a resume
    /// would read a corrupt journal — silently recomputing, or worse
    /// silently dropping points, is exactly what the CRC is there to
    /// prevent.
    fn sweep(&self, name: &str) -> Sweep {
        let path = self.path(&format!("{name}_journal"), "jsonl");
        Sweep::new(
            name,
            &path,
            self.resume,
            RetryPolicy::default(),
            self.ctx.metrics().clone(),
        )
        .unwrap_or_else(|e| panic!("sweep {name}: {e}"))
    }

    /// The epoch-checkpoint file a (possibly killed) training run for
    /// `key` persists its [`crate::TrainState`] into. Cleared here when
    /// resume is off, so a fresh run never silently continues a stale
    /// trajectory.
    fn train_state_path(&self, key: &str) -> PathBuf {
        let path = self.path(&format!("{key}.trainstate"), "json");
        if !self.resume {
            let _ = std::fs::remove_file(&path);
        }
        path
    }

    /// Runs `build` unless both checkpoint and metadata for `key` are
    /// cached on disk; persists fresh results (atomically — a kill during
    /// the save leaves either the old artifacts or the new, never torn
    /// files). `build` receives the path training should write its
    /// per-epoch [`crate::TrainState`] to.
    fn cached(
        &self,
        key: &str,
        build: impl FnOnce(&Path) -> (Checkpoint, TrainedMeta),
    ) -> (Checkpoint, Stat) {
        let ckpt_path = self.path(&format!("{key}.ckpt"), "json");
        let meta_path = self.path(&format!("{key}.meta"), "json");
        if let (Ok(ckpt), Ok(meta_text)) = (
            Checkpoint::load_json(&ckpt_path),
            std::fs::read_to_string(&meta_path),
        ) {
            if let Ok(meta) = serde_json::from_str::<TrainedMeta>(&meta_text) {
                return (ckpt, meta.accuracy);
            }
        }
        let state_path = self.train_state_path(key);
        let (ckpt, meta) = build(&state_path);
        let _ = std::fs::create_dir_all(&self.dir);
        let _ = ckpt.save_json(&ckpt_path);
        if let Ok(text) = serde_json::to_string(&meta) {
            let _ = ams_tensor::obs::fsio::atomic_write(&meta_path, text.as_bytes());
        }
        (ckpt, meta.accuracy)
    }

    /// The FP32 baseline: trained from scratch, reported over
    /// `eval_passes` subsampled validation passes. Cached per topology —
    /// at 32 bits every quantizer scheme is a passthrough, so scenarios
    /// that differ only in quantizer or error model share it.
    pub fn fp32_baseline(&self) -> (Checkpoint, Stat) {
        let key = format!("fp32{}", self.model_only_suffix());
        self.cached(&key, |state| {
            eprintln!("[{}] training FP32 baseline ...", self.scale.name);
            let mut net = self.model.build(&HardwareConfig::fp32());
            let epochs = self.scale.fp32_epochs;
            let decay = [epochs * 3 / 5, epochs * 17 / 20];
            let out = train_scheduled_resumable(
                &self.ctx,
                &mut *net,
                &self.data.train,
                &self.data.val,
                epochs,
                self.scale.fp32_lr,
                self.scale.batch,
                self.scale.seed,
                &decay,
                Some(state),
            );
            let stat = eval_passes(
                &self.ctx,
                &mut *net,
                &self.data.val,
                self.scale.eval_passes,
                self.scale.batch,
                false,
                self.scale.seed ^ 0xEEEE,
            );
            (
                out.best_checkpoint,
                TrainedMeta {
                    accuracy: stat,
                    best_epoch: out.best_epoch,
                },
            )
        })
    }

    /// A quantized digital network (Table 1 rows 2–4): FP32 weights
    /// loaded, then retrained at the given bit-widths under the suite's
    /// quantizer scheme.
    pub fn quantized_baseline(&self, quant: QuantConfig) -> (Checkpoint, Stat) {
        let quant = self.schemed(quant);
        let key = format!(
            "quant_w{}a{}{}",
            quant.bw,
            quant.bx,
            self.model_quant_suffix()
        );
        let (fp32_ckpt, _) = self.fp32_baseline();
        self.cached(&key, |state| {
            eprintln!(
                "[{}] retraining quantized baseline {quant} ...",
                self.scale.name
            );
            let hw = HardwareConfig::quantized(quant);
            let mut net = self.model.build(&hw);
            fp32_ckpt.load_into(&mut *net).expect("architectures match");
            let out = train_scheduled_resumable(
                &self.ctx,
                &mut *net,
                &self.data.train,
                &self.data.val,
                self.scale.retrain_epochs,
                self.scale.retrain_lr,
                self.scale.batch,
                self.scale.seed ^ 0x1111,
                &[],
                Some(state),
            );
            let stat = eval_passes(
                &self.ctx,
                &mut *net,
                &self.data.val,
                self.scale.eval_passes,
                self.scale.batch,
                false,
                self.scale.seed ^ 0x2222,
            );
            (
                out.best_checkpoint,
                TrainedMeta {
                    accuracy: stat,
                    best_epoch: out.best_epoch,
                },
            )
        })
    }

    /// Accuracy with AMS error injected at evaluation only, starting from
    /// a quantized baseline's best checkpoint (the paper's "AMS error in
    /// eval only" series).
    pub fn ams_eval_only(&self, quant: QuantConfig, enob: f64) -> Stat {
        let quant = self.schemed(quant);
        let (q_ckpt, _) = self.quantized_baseline(quant);
        let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
        let hw = HardwareConfig::ams_eval_only(quant, vmac).with_error_model(self.error_model);
        let mut net = self.model.build(&hw);
        q_ckpt.load_into(&mut *net).expect("architectures match");
        eval_passes(
            &self.ctx,
            &mut *net,
            &self.data.val,
            self.scale.eval_passes,
            self.scale.batch,
            true,
            self.scale.seed ^ (enob * 1000.0) as u64,
        )
    }

    /// Accuracy after retraining with AMS error in the loop (from the
    /// FP32 checkpoint, quantization + injection active, last layer
    /// excluded during training per §2).
    pub fn ams_retrained(&self, quant: QuantConfig, enob: f64) -> (Checkpoint, Stat) {
        let quant = self.schemed(quant);
        let key = format!(
            "ams_w{}a{}_e{}{}",
            quant.bw,
            quant.bx,
            format_enob(enob),
            self.scenario_suffix()
        );
        let (fp32_ckpt, _) = self.fp32_baseline();
        self.cached(&key, |state| {
            eprintln!(
                "[{}] retraining with AMS error at ENOB {enob} ...",
                self.scale.name
            );
            let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
            let hw = HardwareConfig::ams(quant, vmac).with_error_model(self.error_model);
            let mut net = self.model.build(&hw);
            fp32_ckpt.load_into(&mut *net).expect("architectures match");
            let out = train_scheduled_resumable(
                &self.ctx,
                &mut *net,
                &self.data.train,
                &self.data.val,
                self.scale.retrain_epochs,
                self.scale.retrain_lr,
                self.scale.batch,
                self.scale.seed ^ 0x3333,
                &[],
                Some(state),
            );
            let stat = eval_passes(
                &self.ctx,
                &mut *net,
                &self.data.val,
                self.scale.eval_passes,
                self.scale.batch,
                true,
                self.scale.seed ^ 0x4444 ^ (enob * 1000.0) as u64,
            );
            (
                out.best_checkpoint,
                TrainedMeta {
                    accuracy: stat,
                    best_epoch: out.best_epoch,
                },
            )
        })
    }

    // ------------------------------------------------------------------
    // Table 1
    // ------------------------------------------------------------------

    /// Table 1: top-1 accuracy for the FP32 and quantized baselines.
    ///
    /// Each row is one journaled sweep point: a killed run resumes past
    /// its completed rows, and a row whose training keeps failing is
    /// quarantined while the rest of the table still reports.
    pub fn table1(&self) -> Table1Result {
        let _t = self.ctx.metrics().scope(|| "experiment.table1".to_string());
        let sweep = self.scenario_sweep("table1");
        // The first four rows mirror the paper; the extended rows
        // calibrate where degradation bites on our small substrate (like
        // the small networks/datasets the paper's introduction cites,
        // it tolerates 4-bit precision after DoReFa retraining).
        let specs: [(&str, Option<QuantConfig>); 7] = [
            ("FP32", None),
            ("BW = 8, BX = 8", Some(QuantConfig::w8a8())),
            ("BW = 6, BX = 6", Some(QuantConfig::w6a6())),
            ("BW = 6, BX = 4", Some(QuantConfig::w6a4())),
            ("BW = 4, BX = 4 (ext)", Some(QuantConfig::w4a4())),
            ("BW = 3, BX = 3 (ext)", Some(QuantConfig::w3a3())),
            ("BW = 2, BX = 2 (ext)", Some(QuantConfig::w2a2())),
        ];
        let rows = specs
            .iter()
            .filter_map(|&(label, quant)| {
                let point = match quant {
                    None => "fp32".to_string(),
                    Some(q) => format!("w{}a{}", q.bw, q.bx),
                };
                sweep.run_point(point, || Table1Row {
                    label: label.to_string(),
                    accuracy: match quant {
                        None => self.fp32_baseline().1,
                        Some(q) => self.quantized_baseline(q).1,
                    },
                })
            })
            .collect();
        Table1Result { rows }
    }

    // ------------------------------------------------------------------
    // Figures 4 & 5
    // ------------------------------------------------------------------

    /// Fig. 4: top-1 accuracy loss vs ENOB (N_mult = 8) relative to the 8b
    /// quantized network, eval-only vs retrained-with-error.
    pub fn fig4(&self) -> Fig4Result {
        let _t = self.ctx.metrics().scope(|| "experiment.fig4".to_string());
        let quant = QuantConfig::w8a8();
        // Warm the shared checkpoints once so the concurrent sweep points
        // below only ever read them from the cache.
        let (_, baseline) = self.quantized_baseline(quant);
        let _ = self.fp32_baseline();
        let sweep = self.scenario_sweep("fig4");
        let rows = self
            .ctx
            .parallel_map(&self.scale.enob_grid, |&enob| {
                sweep.run_point(format!("enob{enob:.2}"), || {
                    let _t = self
                        .ctx
                        .metrics()
                        .scope(|| format!("sweep.fig4.enob{enob:.1}"));
                    let eval_only = self.ams_eval_only(quant, enob).loss_relative_to(baseline);
                    let retrained = self.ams_retrained(quant, enob).1.loss_relative_to(baseline);
                    let m = self.ctx.metrics();
                    m.observe("sweep.fig4.loss_eval_only", eval_only.mean);
                    m.observe("sweep.fig4.loss_retrained", retrained.mean);
                    m.inc("sweep.fig4.points");
                    Fig4Row {
                        enob,
                        eval_only,
                        retrained,
                    }
                })
            })
            .into_iter()
            .flatten()
            .collect();
        Fig4Result { baseline, rows }
    }

    /// Fig. 5: top-1 accuracy loss vs ENOB (N_mult = 8) relative to the 6b
    /// quantized network, eval-only.
    pub fn fig5(&self) -> Fig5Result {
        let _t = self.ctx.metrics().scope(|| "experiment.fig5".to_string());
        let quant = QuantConfig::w6a6();
        let (_, baseline) = self.quantized_baseline(quant);
        let sweep = self.scenario_sweep("fig5");
        let rows = self
            .ctx
            .parallel_map(&self.scale.enob_grid_6b, |&enob| {
                sweep.run_point(format!("enob{enob:.2}"), || {
                    let _t = self
                        .ctx
                        .metrics()
                        .scope(|| format!("sweep.fig5.enob{enob:.1}"));
                    let loss = self.ams_eval_only(quant, enob).loss_relative_to(baseline);
                    self.ctx
                        .metrics()
                        .observe("sweep.fig5.loss_eval_only", loss.mean);
                    self.ctx.metrics().inc("sweep.fig5.points");
                    (enob, loss)
                })
            })
            .into_iter()
            .flatten()
            .collect();
        Fig5Result { baseline, rows }
    }

    // ------------------------------------------------------------------
    // Table 2
    // ------------------------------------------------------------------

    /// Table 2: AMS retraining with selective freezing at the scale's
    /// fixed ENOB, losses relative to the 8b quantized network.
    pub fn table2(&self) -> Table2Result {
        let _t = self.ctx.metrics().scope(|| "experiment.table2".to_string());
        let quant = self.schemed(QuantConfig::w8a8());
        let (_, baseline) = self.quantized_baseline(quant);
        let (fp32_ckpt, _) = self.fp32_baseline();
        let enob = self.scale.table2_enob;
        // Every freezing variant retrains independently from the shared
        // FP32 checkpoint warmed above — run them concurrently. The spec
        // decides which Table-2 policies are meaningful for the topology.
        let sweep = self.scenario_sweep("table2");
        let rows = self
            .ctx
            .parallel_map(self.model.freeze_policies(), |&policy| {
                let point = format!("{policy}").replace(' ', "_").to_lowercase();
                sweep.run_point(point, || {
                    let _t = self
                        .ctx
                        .metrics()
                        .scope(|| format!("sweep.table2.{policy}").replace(' ', "_"));
                    let key = format!("table2_{policy}").replace(' ', "_").to_lowercase()
                        + &self.scenario_suffix();
                    let (_, stat) = self.cached(&key, |state| {
                        eprintln!(
                            "[{}] table2: retraining with frozen {policy} ...",
                            self.scale.name
                        );
                        let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
                        let hw =
                            HardwareConfig::ams(quant, vmac).with_error_model(self.error_model);
                        let mut net = self.model.build(&hw);
                        fp32_ckpt.load_into(&mut *net).expect("architectures match");
                        net.apply_freeze(policy);
                        let out = train_scheduled_resumable(
                            &self.ctx,
                            &mut *net,
                            &self.data.train,
                            &self.data.val,
                            self.scale.retrain_epochs,
                            self.scale.retrain_lr,
                            self.scale.batch,
                            self.scale.seed ^ 0x5555,
                            &[],
                            Some(state),
                        );
                        let stat = eval_passes(
                            &self.ctx,
                            &mut *net,
                            &self.data.val,
                            self.scale.eval_passes,
                            self.scale.batch,
                            true,
                            self.scale.seed ^ 0x6666,
                        );
                        (
                            out.best_checkpoint,
                            TrainedMeta {
                                accuracy: stat,
                                best_epoch: out.best_epoch,
                            },
                        )
                    });
                    Table2Row {
                        policy,
                        loss: stat.loss_relative_to(baseline),
                    }
                })
            });
        let rows = rows.into_iter().flatten().collect();
        // Reference: no retraining at all (eval-only) bounds the damage
        // retraining is recovering from.
        let eval_only_loss = self.ams_eval_only(quant, enob).loss_relative_to(baseline);
        Table2Result {
            enob,
            rows,
            eval_only_loss,
        }
    }

    // ------------------------------------------------------------------
    // Figure 6
    // ------------------------------------------------------------------

    /// Fig. 6: mean activation at the output of every convolutional layer
    /// (the injection point) across the validation set, for the FP32
    /// network, the quantized network, and AMS networks at several noise
    /// levels.
    pub fn fig6(&self) -> Fig6Result {
        let _t = self.ctx.metrics().scope(|| "experiment.fig6".to_string());
        let quant = self.schemed(QuantConfig::w8a8());
        let mut variants: Vec<(String, HardwareConfig, Checkpoint, Option<f64>)> = Vec::new();
        let (fp_ckpt, _) = self.fp32_baseline();
        variants.push(("FP32".to_string(), HardwareConfig::fp32(), fp_ckpt, None));
        let (q_ckpt, _) = self.quantized_baseline(quant);
        variants.push((
            "Quantized".to_string(),
            HardwareConfig::quantized(quant),
            q_ckpt,
            None,
        ));
        for &enob in &self.scale.fig6_enobs {
            let (ckpt, _) = self.ams_retrained(quant, enob);
            let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
            variants.push((
                format!("AMS {}b", format_enob(enob)),
                HardwareConfig::ams(quant, vmac).with_error_model(self.error_model),
                ckpt,
                Some(enob),
            ));
        }

        let mut rows: Vec<Fig6Row> = Vec::new();
        let mut layer_names: Vec<String> = Vec::new();
        for (label, hw, ckpt, enob) in variants {
            let mut net = self.model.build(&hw);
            ckpt.load_into(&mut *net).expect("architectures match");
            net.set_probes(true);
            // One pass over the validation set accumulates the means.
            let _ =
                crate::train::eval_accuracy(&self.ctx, &mut *net, &self.data.val, self.scale.batch);
            let means = net.probe_means();
            if layer_names.is_empty() {
                layer_names = means.iter().map(|(n, _)| n.clone()).collect();
            }
            let sigmas: Vec<Option<f32>> = net
                .error_budget()
                .iter()
                .take(means.len())
                .map(|(_, _, s)| *s)
                .collect();
            rows.push(Fig6Row {
                label,
                enob,
                means: means.into_iter().map(|(_, m)| m).collect(),
                sigmas,
            });
        }

        // The paper's headline: in most conv layers the AMS-retrained
        // network pushes |mean| beyond the quantized network's.
        let quant_row = rows
            .iter()
            .find(|r| r.label == "Quantized")
            .expect("variant exists")
            .clone();
        let mut pushed = Vec::new();
        for row in rows.iter().filter(|r| r.enob.is_some()) {
            let count = row
                .means
                .iter()
                .zip(&quant_row.means)
                .filter(|(a, q)| a.abs() > q.abs())
                .count();
            pushed.push((row.label.clone(), count, row.means.len()));
        }
        // Per-layer noise trend: does |mean| grow as the injected sigma
        // grows (the paper's "the larger the noise, the greater the
        // push")? Compare each AMS variant ordered by increasing noise.
        let mut ams_rows: Vec<&Fig6Row> = rows.iter().filter(|r| r.enob.is_some()).collect();
        ams_rows.sort_by(|a, b| {
            b.enob.partial_cmp(&a.enob).expect("finite enob") // descending ENOB = ascending noise
        });
        let mut monotone_push_layers = Vec::new();
        let mut best_layer: Option<(String, f32)> = None;
        for (li, name) in layer_names.iter().enumerate() {
            let series: Vec<f32> = ams_rows.iter().map(|r| r.means[li].abs()).collect();
            let quant_abs = quant_row.means[li].abs();
            let monotone = series.windows(2).all(|w| w[1] >= w[0] - 1e-4)
                && series.last().copied().unwrap_or(0.0) > quant_abs;
            if monotone {
                monotone_push_layers.push(name.clone());
            }
            let push = series.last().copied().unwrap_or(0.0) - quant_abs;
            if best_layer.as_ref().is_none_or(|(_, p)| push > *p) {
                best_layer = Some((name.clone(), push));
            }
        }
        let representative_layer = best_layer.map(|(n, _)| n);
        Fig6Result {
            layer_names,
            rows,
            pushed_away_counts: pushed,
            monotone_push_layers,
            representative_layer,
        }
    }

    // ------------------------------------------------------------------
    // Figure 7
    // ------------------------------------------------------------------

    /// Fig. 7: the (synthetic) ADC survey against the Eq. 3 energy hull
    /// and the 187 dB Schreier-FOM line.
    pub fn fig7(&self) -> Fig7Result {
        let _t = self.ctx.metrics().scope(|| "experiment.fig7".to_string());
        let points = synthesize_survey(self.scale.survey_points, self.scale.seed);
        let hull = survey_lower_hull(&points, 15);
        let mut model_line = Vec::new();
        let mut fom_line = Vec::new();
        let mut enob = 4.0;
        while enob <= 19.0 {
            model_line.push((enob, adc_energy_pj(enob)));
            fom_line.push((enob, schreier_energy_pj(enob, SCHREIER_FOM_DB)));
            enob += 0.5;
        }
        let violations = points
            .iter()
            .filter(|p| p.energy_pj < adc_energy_pj(p.enob) * 0.999)
            .count();
        Fig7Result {
            points,
            hull,
            model_line,
            fom_line,
            violations,
        }
    }

    // ------------------------------------------------------------------
    // Figure 8
    // ------------------------------------------------------------------

    /// Fig. 8: the (ENOB, N_mult) design-space grid with accuracy-loss and
    /// energy/MAC level curves, derived from the measured Fig. 4
    /// retrained curve exactly as the paper maps its `N_mult = 8` results.
    pub fn fig8(&self) -> Fig8Result {
        let _t = self.ctx.metrics().scope(|| "experiment.fig8".to_string());
        let fig4 = self.fig4();
        let points: Vec<(f64, f64)> = fig4
            .rows
            .iter()
            .map(|r| (r.enob, r.retrained.mean.max(0.0)))
            .collect();
        let curve = AccuracyCurve::new(8, points).expect("fig4 grid has ≥2 distinct ENOBs");
        let grid = TradeoffGrid::evaluate(&curve, &self.scale.enob_grid, &self.scale.fig8_n_mults);
        let targets = [0.004, 0.01, 0.02];
        let min_energy: Vec<(f64, Option<f64>)> = targets
            .iter()
            .map(|&t| (t, grid.min_energy_for_loss(t).map(|p| p.mac_energy_fj)))
            .collect();
        let deviation = grid.level_curve_deviation();

        // Validation at the paper's own scale: feed the digitized
        // ResNet-50 Fig. 4 curve through the same machinery; the paper's
        // headline fJ/MAC numbers must come back out.
        let paper_curve = AccuracyCurve::paper_resnet50_reference();
        let paper_enobs: Vec<f64> = (0..21).map(|i| 9.0 + 0.25 * i as f64).collect();
        let paper_grid =
            TradeoffGrid::evaluate(&paper_curve, &paper_enobs, &self.scale.fig8_n_mults);
        let paper_min_energy: Vec<(f64, Option<f64>)> = targets
            .iter()
            .map(|&t| {
                (
                    t,
                    paper_grid.min_energy_for_loss(t).map(|p| p.mac_energy_fj),
                )
            })
            .collect();

        Fig8Result {
            curve,
            grid,
            min_energy,
            level_curve_deviation: deviation,
            paper_min_energy,
        }
    }

    // ------------------------------------------------------------------
    // Section 4 ablations
    // ------------------------------------------------------------------

    /// §4 ablations: per-VMAC simulation vs the lumped model, ΔΣ error
    /// recycling, reference scaling, multiplication partitioning, and the
    /// last-layer training-injection rule.
    pub fn ablations(&self) -> AblationReport {
        let _t = self
            .ctx
            .metrics()
            .scope(|| "experiment.ablations".to_string());
        // (a) Lumped Gaussian vs actual chunked quantization.
        let mut lumped_vs_sim = Vec::new();
        for &(enob, n_tot) in &[(7.0f64, 128usize), (8.0, 256), (9.0, 512)] {
            let vmac = Vmac::new(8, 8, 8, enob);
            let sim = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
            let empirical = sim.empirical_rms_error(n_tot, 200, self.scale.seed);
            let model = vmac.total_error_sigma(n_tot);
            lumped_vs_sim.push((enob, n_tot, model, empirical));
        }

        // (b) ΔΣ error recycling.
        let vmac = Vmac::new(8, 8, 8, 8.0);
        let plain = VmacSimulator::new(vmac, AdcBehavior::Quantizing).empirical_rms_error(
            512,
            200,
            self.scale.seed,
        );
        let ds = VmacSimulator::new(
            vmac,
            AdcBehavior::DeltaSigma {
                final_extra_bits: 2.0,
            },
        )
        .empirical_rms_error(512, 200, self.scale.seed);

        // (c) Reference scaling sweep — independent simulations, run
        // concurrently.
        let refscale = self
            .ctx
            .parallel_map(&[1.0f64, 0.5, 0.25, 0.1, 0.05], |&alpha| {
                let sim = VmacSimulator::new(vmac, AdcBehavior::RefScaled { alpha });
                (
                    alpha,
                    sim.empirical_rms_error(256, 200, self.scale.seed),
                    sim.clip_fraction(256, 50, self.scale.seed),
                )
            });

        // (d) Multiplication partitioning (9-bit operands split cleanly).
        let base = Vmac::new(9, 9, 8, 14.0);
        let mut partition = Vec::new();
        for &(nw, nx, slice_enob) in &[
            (1u32, 1u32, 14.0f64),
            (2, 2, 12.0),
            (2, 2, 10.0),
            (4, 4, 8.0),
        ] {
            let p = PartitionedVmac::new(base, nw, nx, slice_enob).expect("clean splits");
            partition.push((
                nw,
                nx,
                slice_enob,
                p.equivalent_enob(1024),
                p.energy_per_mac_fj(),
                p.saves_energy_vs(14.0),
            ));
        }

        // (e) Last-layer training injection (the paper's §2 workaround):
        // retraining with last-layer injection enabled should hurt.
        let quant = self.schemed(QuantConfig::w8a8());
        let enob = self.scale.table2_enob;
        let (fp32_ckpt, _) = self.fp32_baseline();
        let (_, normal) = self.ams_retrained(quant, enob);
        let lastlayer_key = format!("ablation_lastlayer{}", self.scenario_suffix());
        let (_, with_last) = self.cached(&lastlayer_key, |state| {
            eprintln!(
                "[{}] ablation: retraining WITH last-layer injection ...",
                self.scale.name
            );
            let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
            let mut hw = HardwareConfig::ams(quant, vmac).with_error_model(self.error_model);
            hw.inject_last_layer_train = true;
            let mut net = self.model.build(&hw);
            fp32_ckpt.load_into(&mut *net).expect("architectures match");
            let out = train_scheduled_resumable(
                &self.ctx,
                &mut *net,
                &self.data.train,
                &self.data.val,
                self.scale.retrain_epochs,
                self.scale.retrain_lr,
                self.scale.batch,
                self.scale.seed ^ 0x7777,
                &[],
                Some(state),
            );
            let stat = eval_passes(
                &self.ctx,
                &mut *net,
                &self.data.val,
                self.scale.eval_passes,
                self.scale.batch,
                true,
                self.scale.seed ^ 0x8888,
            );
            (
                out.best_checkpoint,
                TrainedMeta {
                    accuracy: stat,
                    best_epoch: out.best_epoch,
                },
            )
        });

        // (f) Network-level per-VMAC evaluation (paper §4's fine-grained
        // mode, eval only) against the lumped Gaussian, at a severe and a
        // moderate noise level.
        let (q_ckpt, _) = self.quantized_baseline(quant);
        let per_vmac_network = self.ctx.parallel_map(&[enob, enob + 1.5], |&level| {
            let vmac_net = Vmac::new(quant.bw, quant.bx, 8, level);
            let lumped_stat = self.ams_eval_only(quant, level);
            let hw_pv = HardwareConfig::ams_eval_only(quant, vmac_net).with_per_vmac_eval();
            let mut pv_net = self.model.build(&hw_pv);
            q_ckpt.load_into(&mut *pv_net).expect("architectures match");
            let acc = f64::from(crate::train::eval_accuracy(
                &self.ctx,
                &mut *pv_net,
                &self.data.val,
                self.scale.batch,
            ));
            (level, lumped_stat, acc)
        });

        // (g) Static device mismatch sweep on the quantized network —
        // every sigma evaluates an independent network, concurrently.
        let mismatch = self
            .ctx
            .parallel_map(&[0.0f64, 0.02, 0.05, 0.10, 0.20, 0.40], |&sigma| {
                let mut hw = HardwareConfig::quantized(quant);
                if sigma > 0.0 {
                    hw = hw.with_mismatch(MismatchModel::new(sigma, self.scale.seed));
                }
                let mut net = self.model.build(&hw);
                q_ckpt.load_into(&mut *net).expect("architectures match");
                let acc = f64::from(crate::train::eval_accuracy(
                    &self.ctx,
                    &mut *net,
                    &self.data.val,
                    self.scale.batch,
                ));
                (sigma, acc)
            });

        AblationReport {
            lumped_vs_sim,
            delta_sigma: (plain, ds),
            refscale,
            partition,
            last_layer: (normal, with_last),
            per_vmac_network,
            mismatch,
        }
    }
}

fn format_enob(enob: f64) -> String {
    if (enob - enob.round()).abs() < 1e-9 {
        format!("{}", enob.round() as i64)
    } else {
        format!("{enob:.1}")
    }
}

// ----------------------------------------------------------------------
// Result types (data + printing + CSV)
// ----------------------------------------------------------------------

/// One Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Quantization label as in the paper.
    pub label: String,
    /// Top-1 accuracy over the evaluation passes.
    pub accuracy: Stat,
}

/// Table 1: quantization baselines.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Rows in the paper's order: FP32, 8/8, 6/6, 6/4.
    pub rows: Vec<Table1Row>,
}

impl Report for Table1Result {
    fn title(&self) -> String {
        "Table 1: top-1 accuracy per quantization (retrained with DoReFa, no AMS error)".to_string()
    }

    fn headers(&self) -> Vec<String> {
        ["Quantization", "Top-1 Accuracy", "Samp. Std. Dev."]
            .map(String::from)
            .to_vec()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.4}", r.accuracy.mean),
                    format!("{:.2e}", r.accuracy.std),
                ]
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "table1"
    }

    fn csv_headers(&self) -> Vec<String> {
        ["quantization", "top1_accuracy", "sample_std"]
            .map(String::from)
            .to_vec()
    }
}

/// One Fig. 4 ENOB point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// ENOB of the VMAC conversion.
    pub enob: f64,
    /// Loss (re: 8b quantized) with AMS error at evaluation only.
    pub eval_only: Stat,
    /// Loss (re: 8b quantized) after retraining with AMS error.
    pub retrained: Stat,
}

/// Fig. 4: loss vs ENOB at N_mult = 8, both series.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The 8b quantized baseline accuracy both series are relative to.
    pub baseline: Stat,
    /// Points, ascending in ENOB.
    pub rows: Vec<Fig4Row>,
}

impl Report for Fig4Result {
    fn title(&self) -> String {
        format!(
            "Figure 4: top-1 accuracy loss vs ENOB (Nmult = 8) re: 8b quantized (baseline {:.4})",
            self.baseline.mean
        )
    }

    fn headers(&self) -> Vec<String> {
        ["ENOB", "Loss (eval only)", "±", "Loss (retrained)", "±"]
            .map(String::from)
            .to_vec()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.enob),
                    format!("{:+.4}", r.eval_only.mean),
                    format!("{:.2e}", r.eval_only.std),
                    format!("{:+.4}", r.retrained.mean),
                    format!("{:.2e}", r.retrained.std),
                ]
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "fig4"
    }

    fn csv_headers(&self) -> Vec<String> {
        [
            "enob",
            "loss_eval_only",
            "std_eval_only",
            "loss_retrained",
            "std_retrained",
        ]
        .map(String::from)
        .to_vec()
    }
}

/// Fig. 5: loss vs ENOB re: the 6b quantized network, eval-only.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The 6b quantized baseline accuracy.
    pub baseline: Stat,
    /// `(enob, loss)` points.
    pub rows: Vec<(f64, Stat)>,
}

impl Report for Fig5Result {
    fn title(&self) -> String {
        format!(
            "Figure 5: top-1 accuracy loss vs ENOB (Nmult = 8) re: 6b quantized (baseline {:.4}), eval only",
            self.baseline.mean
        )
    }

    fn headers(&self) -> Vec<String> {
        ["ENOB", "Loss (eval only)", "±"].map(String::from).to_vec()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|(e, s)| {
                vec![
                    format!("{e:.1}"),
                    format!("{:+.4}", s.mean),
                    format!("{:.2e}", s.std),
                ]
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "fig5"
    }

    fn csv_headers(&self) -> Vec<String> {
        ["enob", "loss_eval_only", "std"].map(String::from).to_vec()
    }
}

/// One Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// The freezing policy applied during retraining.
    pub policy: FreezePolicy,
    /// Loss relative to the 8b quantized baseline.
    pub loss: Stat,
}

/// Table 2: selective freezing during AMS retraining.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// The fixed ENOB of the study.
    pub enob: f64,
    /// Rows in the paper's order (plus the BN-only-training probe).
    pub rows: Vec<Table2Row>,
    /// Loss with no retraining at all (the recovery headroom).
    pub eval_only_loss: Stat,
}

impl Report for Table2Result {
    fn title(&self) -> String {
        format!(
            "Table 2: selective freezing during AMS retraining (ENOB = {:.1}, Nmult = 8)",
            self.enob
        )
    }

    fn headers(&self) -> Vec<String> {
        [
            "Frozen Layers",
            "Top-1 Accuracy Loss re: 8b",
            "Samp. Std. Dev.",
        ]
        .map(String::from)
        .to_vec()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    format!("{:+.4}", r.loss.mean),
                    format!("{:.2e}", r.loss.std),
                ]
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "table2"
    }

    fn csv_headers(&self) -> Vec<String> {
        ["frozen", "loss_re_8b", "sample_std"]
            .map(String::from)
            .to_vec()
    }

    fn print_extra(&self) {
        println!(
            "reference (no retraining, eval-only): loss {:+.4} ± {:.1e}",
            self.eval_only_loss.mean, self.eval_only_loss.std
        );
    }
}

/// One network variant of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Variant label ("FP32", "Quantized", "AMS 7b", ...).
    pub label: String,
    /// The AMS ENOB, if this is an AMS variant.
    pub enob: Option<f64>,
    /// Mean activation at every conv output, in forward order.
    pub means: Vec<f32>,
    /// The injected error σ per layer (None for noise-free variants).
    pub sigmas: Vec<Option<f32>>,
}

/// Fig. 6: activation means at conv outputs across the validation set.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Conv layer names, forward order.
    pub layer_names: Vec<String>,
    /// One row per network variant.
    pub rows: Vec<Fig6Row>,
    /// Per AMS variant: `(label, layers where |mean| exceeds the
    /// quantized network's, total layers)` — the paper's "43 of the 53
    /// convolutional layers" statistic.
    pub pushed_away_counts: Vec<(String, usize, usize)>,
    /// Layers whose |mean| grows monotonically with the injected noise and
    /// ends above the quantized network's — the paper's "the larger the
    /// noise, the greater the push".
    pub monotone_push_layers: Vec<String>,
    /// The layer with the largest push at the highest noise level — the
    /// "representative convolutional layer" the paper's Fig. 6 plots.
    pub representative_layer: Option<String>,
}

impl Report for Fig6Result {
    fn title(&self) -> String {
        "Figure 6: mean conv-output activation across the validation set".to_string()
    }

    fn headers(&self) -> Vec<String> {
        std::iter::once("layer".to_string())
            .chain(self.rows.iter().map(|r| r.label.clone()))
            .collect()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.layer_names
            .iter()
            .enumerate()
            .map(|(li, name)| {
                std::iter::once(name.clone())
                    .chain(
                        self.rows
                            .iter()
                            .map(|variant| format!("{:+.4}", variant.means[li])),
                    )
                    .collect()
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "fig6"
    }

    fn print_extra(&self) {
        for (label, n, total) in &self.pushed_away_counts {
            println!("{label}: activation means pushed away from zero (|mean| > quantized) in {n} of {total} conv layers");
        }
        println!(
            "layers with monotone push (|mean| grows with noise): {}",
            if self.monotone_push_layers.is_empty() {
                "none".to_string()
            } else {
                self.monotone_push_layers.join(", ")
            }
        );
        if let Some(layer) = &self.representative_layer {
            println!("representative layer (largest push at highest noise): {layer}");
        }
    }
}

/// Fig. 7: the synthetic ADC survey against the paper's energy model.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Survey points.
    pub points: Vec<AdcSurveyPoint>,
    /// Binned lower hull `(enob, min pJ)`.
    pub hull: Vec<(f64, f64)>,
    /// The Eq. 3 model line samples `(enob, pJ)`.
    pub model_line: Vec<(f64, f64)>,
    /// The 187 dB Schreier-FOM line samples `(enob, pJ)`.
    pub fom_line: Vec<(f64, f64)>,
    /// Number of survey points below the model bound (must be 0).
    pub violations: usize,
}

impl Report for Fig7Result {
    fn title(&self) -> String {
        format!(
            "Figure 7: ADC survey lower hull vs Eq. 3 model ({} synthetic points, {} below bound)",
            self.points.len(),
            self.violations
        )
    }

    fn headers(&self) -> Vec<String> {
        ["ENOB (bin)", "Survey min P/fsnyq [pJ]", "Model bound [pJ]"]
            .map(String::from)
            .to_vec()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.hull
            .iter()
            .map(|(e, p)| {
                vec![
                    format!("{e:.2}"),
                    format!("{p:.4}"),
                    format!("{:.4}", adc_energy_pj(*e)),
                ]
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "fig7_hull"
    }

    fn csv_headers(&self) -> Vec<String> {
        ["enob_bin", "survey_min_pj", "model_pj"]
            .map(String::from)
            .to_vec()
    }

    fn write_extra_csvs(&self, dir: &Path, scale_name: &str) {
        let point_rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.year.to_string(),
                    p.venue.to_string(),
                    format!("{:.3}", p.enob),
                    format!("{:.5}", p.energy_pj),
                    format!("{:.1}", p.fom_db()),
                ]
            })
            .collect();
        let _ = write_csv(
            dir.join(format!("fig7_points_{scale_name}.csv")),
            &["year", "venue", "enob", "energy_pj", "fom_db"],
            &point_rows,
        );
    }
}

/// Fig. 8: the design-space grid plus headline minimum-energy numbers.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// The measured accuracy curve at the reference N_mult = 8.
    pub curve: AccuracyCurve,
    /// The evaluated (ENOB × N_mult) grid.
    pub grid: TradeoffGrid,
    /// `(loss target, min fJ/MAC among qualifying cells)` — the paper's
    /// "< 0.4 % requires ≥ ~313 fJ/MAC" numbers on our substrate.
    pub min_energy: Vec<(f64, Option<f64>)>,
    /// Maximum relative energy deviation along equal-loss trades in the
    /// thermal region (the parallel-level-curve claim; ≈ 0).
    pub level_curve_deviation: f64,
    /// The same loss targets priced on the paper's digitized ResNet-50
    /// curve — must recover the paper's ~313 / ~78 fJ headline numbers.
    pub paper_min_energy: Vec<(f64, Option<f64>)>,
}

impl Report for Fig8Result {
    fn title(&self) -> String {
        "Figure 8: accuracy loss / energy per MAC over (ENOB, Nmult)".to_string()
    }

    fn headers(&self) -> Vec<String> {
        std::iter::once("ENOB".to_string())
            .chain(self.grid.n_mults().iter().map(|n| format!("Nmult={n}")))
            .collect()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for (ei, &enob) in self.grid.enobs().iter().enumerate() {
            let mut row = vec![format!("{enob:.1}")];
            for ni in 0..self.grid.n_mults().len() {
                let c = self.grid.cell(ei, ni);
                row.push(format!("{:.2}%/{:.0}fJ", c.loss * 100.0, c.mac_energy_fj));
            }
            rows.push(row);
        }
        rows
    }

    fn csv_stem(&self) -> &'static str {
        "fig8"
    }

    fn csv_headers(&self) -> Vec<String> {
        ["enob", "n_mult", "loss", "mac_energy_fj"]
            .map(String::from)
            .to_vec()
    }

    fn csv_rows(&self) -> Vec<Vec<String>> {
        self.grid
            .cells()
            .iter()
            .map(|c| {
                vec![
                    format!("{:.2}", c.enob),
                    c.n_mult.to_string(),
                    format!("{:.6}", c.loss),
                    format!("{:.3}", c.mac_energy_fj),
                ]
            })
            .collect()
    }

    fn print_extra(&self) {
        for (target, energy) in &self.min_energy {
            match energy {
                Some(fj) => println!(
                    "< {:.1}% accuracy loss requires at least ~{fj:.0} fJ/MAC",
                    target * 100.0
                ),
                None => println!(
                    "< {:.1}% accuracy loss: no design point on this grid qualifies",
                    target * 100.0
                ),
            }
        }
        println!(
            "level curves parallel in thermal region: max relative energy deviation {:.2e}",
            self.level_curve_deviation
        );
        println!(
            "\nvalidation with the paper's digitized ResNet-50 curve through the same machinery:"
        );
        for (target, energy) in &self.paper_min_energy {
            match energy {
                Some(fj) => println!(
                    "  < {:.1}% loss requires at least ~{fj:.0} fJ/MAC (paper: {})",
                    target * 100.0,
                    match *target {
                        t if (t - 0.004).abs() < 1e-9 => "~313 fJ/MAC",
                        t if (t - 0.01).abs() < 1e-9 => "~78 fJ/MAC",
                        _ => "n/a",
                    }
                ),
                None => println!("  < {:.1}% loss: no qualifying design", target * 100.0),
            }
        }
    }
}

/// §4 ablation results.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// `(enob, n_tot, model σ, per-VMAC empirical RMS)` — lumped model vs
    /// chunked simulation.
    pub lumped_vs_sim: Vec<(f64, usize, f64, f64)>,
    /// `(plain RMS, ΔΣ RMS)` at ENOB 8, N_tot 512.
    pub delta_sigma: (f64, f64),
    /// `(alpha, RMS error, clip fraction)` for reference scaling.
    pub refscale: Vec<(f64, f64, f64)>,
    /// `(N_W, N_X, slice ENOB, equivalent unpartitioned ENOB, fJ/MAC,
    /// saves energy vs 14b)` for multiplication partitioning.
    pub partition: Vec<(u32, u32, f64, f64, f64, bool)>,
    /// `(normal retrain accuracy, with-last-layer-injection accuracy)`.
    pub last_layer: (Stat, Stat),
    /// Network-level fine-grained mode: `(ENOB, lumped-Gaussian accuracy
    /// stat, per-VMAC chunked-quantization accuracy)` at a severe and a
    /// moderate noise level.
    pub per_vmac_network: Vec<(f64, Stat, f64)>,
    /// `(device sigma, top-1 accuracy)` for the static-mismatch sweep on
    /// the quantized network.
    pub mismatch: Vec<(f64, f64)>,
}

impl Report for AblationReport {
    fn title(&self) -> String {
        "Ablation A: lumped Gaussian model (Eq. 2) vs per-VMAC quantizing simulation".to_string()
    }

    fn headers(&self) -> Vec<String> {
        ["ENOB", "N_tot", "Model sigma", "Empirical RMS", "Ratio"]
            .map(String::from)
            .to_vec()
    }

    fn rows(&self) -> Vec<Vec<String>> {
        self.lumped_vs_sim
            .iter()
            .map(|(e, n, m, s)| {
                vec![
                    format!("{e:.1}"),
                    n.to_string(),
                    format!("{m:.5}"),
                    format!("{s:.5}"),
                    format!("{:.3}", s / m),
                ]
            })
            .collect()
    }

    fn csv_stem(&self) -> &'static str {
        "ablations_lumped"
    }

    fn csv_headers(&self) -> Vec<String> {
        ["enob", "n_tot", "model_sigma", "empirical_rms"]
            .map(String::from)
            .to_vec()
    }

    fn csv_rows(&self) -> Vec<Vec<String>> {
        self.lumped_vs_sim
            .iter()
            .map(|(e, n, m, s)| vec![format!("{e}"), n.to_string(), m.to_string(), s.to_string()])
            .collect()
    }

    fn print_extra(&self) {
        println!(
            "\nAblation B: delta-sigma error recycling at ENOB 8, N_tot 512: plain RMS {:.5} -> recycled RMS {:.5} ({:.1}x reduction)",
            self.delta_sigma.0,
            self.delta_sigma.1,
            self.delta_sigma.0 / self.delta_sigma.1
        );

        let rows: Vec<Vec<String>> = self
            .refscale
            .iter()
            .map(|(a, rms, clip)| {
                vec![
                    format!("{a:.2}"),
                    format!("{rms:.5}"),
                    format!("{:.3}%", clip * 100.0),
                ]
            })
            .collect();
        print_table(
            "Ablation C: ADC reference scaling (alpha x full-scale)",
            &["alpha", "RMS error", "clip fraction"],
            &rows,
        );

        let rows: Vec<Vec<String>> = self
            .partition
            .iter()
            .map(|(nw, nx, se, eq, fj, saves)| {
                vec![
                    format!("{nw}x{nx}"),
                    format!("{se:.1}"),
                    format!("{eq:.2}"),
                    format!("{fj:.1}"),
                    saves.to_string(),
                ]
            })
            .collect();
        print_table(
            "Ablation D: multiplication partitioning (9b operands, Nmult = 8, vs unpartitioned 14b)",
            &["Split", "Slice ENOB", "Equivalent ENOB", "fJ/MAC", "Saves energy"],
            &rows,
        );

        println!(
            "\nAblation E: last-layer injection during training: normal {:.4} vs with-last-layer {:.4} (paper: enabling it prevents learning)",
            self.last_layer.0.mean, self.last_layer.1.mean
        );

        println!("\nAblation F: network-level error realization (lumped Gaussian vs per-VMAC chunked quantization):");
        for (level, lumped, pv) in &self.per_vmac_network {
            println!(
                "  ENOB {level:>4.1}: lumped {:.4} (±{:.1e}) vs per-VMAC {pv:.4}",
                lumped.mean, lumped.std
            );
        }

        let rows: Vec<Vec<String>> = self
            .mismatch
            .iter()
            .map(|(s, a)| vec![format!("{:.1}%", s * 100.0), format!("{a:.4}")])
            .collect();
        print_table(
            "Ablation G: static device mismatch on the quantized network",
            &["device sigma", "top-1 accuracy"],
            &rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_enob_drops_trailing_zeros() {
        assert_eq!(format_enob(8.0), "8");
        assert_eq!(format_enob(12.5), "12.5");
    }

    #[test]
    fn i8_kernel_gets_its_own_artifact_keys() {
        let dir = std::env::temp_dir().join("ams_exp_kernel_key_test");
        let exp = Experiments::new(Scale::test(), &dir);
        assert!(exp.is_default_scenario());
        assert_eq!(exp.scenario_suffix(), "");
        assert_eq!(exp.model_quant_suffix(), "");

        let i8 = Experiments::new(Scale::test(), &dir)
            .with_ctx(ExecCtx::serial().with_kernel(KernelDispatch::I8));
        // Eval outputs differ under the integer kernel, so nothing may
        // share a path with the f32 goldens except the fp32 baseline
        // (32-bit widths never take the i8 path).
        assert!(!i8.is_default_scenario());
        assert!(i8.scenario_key().ends_with("-i8"));
        assert!(i8.model_quant_suffix().ends_with("-i8"));
        assert_eq!(i8.model_only_suffix(), "");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fig7_runs_without_training() {
        let dir = std::env::temp_dir().join("ams_exp_fig7_test");
        let exp = Experiments::new(Scale::test(), &dir);
        let f7 = exp.fig7();
        assert_eq!(f7.points.len(), Scale::test().survey_points);
        assert_eq!(
            f7.violations, 0,
            "synthetic survey must respect the Eq. 3 bound"
        );
        assert!(!f7.hull.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
