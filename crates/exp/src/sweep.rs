//! Crash-safe, resumable sweep execution.
//!
//! Every experiment binary iterates a *sweep* — a list of points (ENOB
//! values, freeze policies, quantization configs) each of which costs
//! seconds to hours of compute. This module makes those loops restartable:
//!
//! * each completed point is appended to a per-sweep **JSONL journal**,
//!   rewritten atomically (tmp + fsync + rename, [`ams_obs::fsio`]) so a
//!   crash at any instant leaves a well-formed journal;
//! * every line carries a CRC32 of its canonical JSON, so silent on-disk
//!   corruption is detected rather than resumed from;
//! * on `--resume`, points whose journal record is `done` are skipped and
//!   their recorded payload is replayed — combined with the bit-exact
//!   RNG-cursor checkpoints in `ams_tensor::rng::RngState`, a
//!   killed-and-resumed sweep produces byte-identical CSVs;
//! * a point that keeps failing (panic or per-attempt timeout) is retried
//!   up to [`RetryPolicy::max_attempts`] times and then **quarantined**:
//!   recorded as `failed` so the rest of the sweep completes and later
//!   resumes do not re-run the poisoned point.
//!
//! Resume events are reported through the [`MetricsSink`] threaded in the
//! `ExecCtx` (`sweep.resumed`, `sweep.points.skipped`,
//! `sweep.points.quarantined`, the `sweep.point_ms` histogram), so the
//! `--metrics` report shows exactly how much work a resume avoided.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ams_obs::fsio::atomic_write;
use ams_tensor::MetricsSink;
use serde::{Deserialize, Serialize, Value};

/// Histogram bounds (milliseconds) for per-point wall time.
pub const POINT_MS_BOUNDS: [f64; 6] = [10.0, 100.0, 1_000.0, 10_000.0, 60_000.0, 600_000.0];

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3, the `cksum`/zlib polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Built once; the const-fn style body above keeps it allocation-free.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(crc32_table);
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------

/// Terminal state of a sweep point in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointStatus {
    /// The point completed; its payload is valid and replayable.
    Done,
    /// The point exhausted its retry budget and is quarantined.
    Failed,
}

/// One journal line: the outcome of one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointRecord {
    /// Sweep name (e.g. `"fig4"`), for human inspection of the file.
    pub sweep: String,
    /// Point identifier, unique within the sweep (e.g. `"enob4.0"`).
    pub point: String,
    /// Terminal status.
    pub status: PointStatus,
    /// How many attempts were made (1 = first try succeeded).
    pub attempts: u32,
    /// Wall time of the final attempt, in milliseconds.
    pub elapsed_ms: u64,
    /// Panic/timeout message of the last attempt, for `Failed` records.
    pub error: Option<String>,
    /// The point's serialized result (`Null` for `Failed` records).
    pub payload: Value,
}

/// Errors loading or writing a sweep journal.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure reading or writing the journal.
    Io(std::io::Error),
    /// A line **before the last** failed its CRC or did not parse. A
    /// torn *final* line is expected after a crash and silently dropped;
    /// corruption earlier in the file means the journal cannot be
    /// trusted and resume refuses to proceed.
    Corrupt {
        /// 1-based line number of the bad line.
        line: usize,
        /// Why the line was rejected.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o failure: {e}"),
            JournalError::Corrupt { line, reason } => write!(
                f,
                "journal line {line} is corrupt ({reason}); refusing to resume — \
                 delete the journal (or rerun without --resume) to start clean"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

fn encode_line(rec: &PointRecord) -> String {
    let canon = serde_json::to_string(rec).expect("journal record serializes");
    format!(
        "{{\"v\":1,\"crc\":{},\"rec\":{}}}",
        crc32(canon.as_bytes()),
        canon
    )
}

fn decode_line(line: &str) -> Result<PointRecord, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("not JSON: {e}"))?;
    let Value::Map(entries) = &v else {
        return Err("line is not a JSON object".to_string());
    };
    let get = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    match get("v") {
        Some(Value::U64(1)) => {}
        other => return Err(format!("unsupported journal version {other:?}")),
    }
    let Some(Value::U64(crc)) = get("crc") else {
        return Err("missing crc field".to_string());
    };
    let rec_value = get("rec").ok_or_else(|| "missing rec field".to_string())?;
    let canon = serde_json::to_string(rec_value).expect("value reserializes");
    let actual = u64::from(crc32(canon.as_bytes()));
    if actual != *crc {
        return Err(format!(
            "crc mismatch: stored {crc:#010x}, computed {actual:#010x}"
        ));
    }
    PointRecord::from_value(rec_value).map_err(|e| format!("bad record shape: {e}"))
}

/// A per-sweep JSONL journal of completed/quarantined points.
///
/// Appends rewrite the whole file atomically — journals hold at most a
/// few dozen small records, so full-rewrite costs microseconds and keeps
/// the crash-safety story trivial: the on-disk file is always a complete,
/// CRC-clean prefix of the sweep.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: Vec<PointRecord>,
}

impl Journal {
    /// Opens `path`, recovering its records. A missing file yields an
    /// empty journal. A torn **final** line (the signature of a crash
    /// mid-write on filesystems without atomic rename, or of a partial
    /// copy) is dropped with a warning — resume restarts from the last
    /// complete point, never from a half-written one.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] if any line before the last is
    /// unparseable or fails its CRC; [`JournalError::Io`] on read failure.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Journal {
                    path,
                    records: Vec::new(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match decode_line(line) {
                Ok(rec) => records.push(rec),
                Err(reason) if i + 1 == lines.len() => {
                    eprintln!(
                        "[sweep] journal {}: dropping torn final line ({reason}); \
                         resuming from the last complete point",
                        path.display()
                    );
                }
                Err(reason) => {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        reason,
                    })
                }
            }
        }
        Ok(Journal { path, records })
    }

    /// Deletes any journal at `path` and returns an empty one (the
    /// non-`--resume` path: every run starts from scratch).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if an existing journal cannot be removed.
    pub fn fresh(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(Journal {
            path,
            records: Vec::new(),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All recovered/appended records, in journal order.
    pub fn records(&self) -> &[PointRecord] {
        &self.records
    }

    /// The most recent record for `point`, if any (last record wins, so a
    /// recomputed point supersedes its stale entry).
    pub fn find(&self, point: &str) -> Option<&PointRecord> {
        self.records.iter().rev().find(|r| r.point == point)
    }

    /// Appends `rec` and atomically rewrites the journal file.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the rewrite fails; the in-memory record is
    /// still kept so the sweep can continue (the next successful append
    /// persists it).
    pub fn append(&mut self, rec: PointRecord) -> Result<(), JournalError> {
        self.records.push(rec);
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&encode_line(r));
            out.push('\n');
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        atomic_write(&self.path, out.as_bytes())?;
        crash_hook_after_append();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Deterministic crash injection (CI kill-and-resume job)
// ---------------------------------------------------------------------

static JOURNAL_APPENDS: AtomicU64 = AtomicU64::new(0);

/// Test hook: when `AMS_TEST_CRASH_AFTER_POINTS=n` is set, the process
/// SIGKILLs itself immediately after the `n`-th journal append lands on
/// disk — a deterministic stand-in for a mid-sweep power cut, used by the
/// CI kill-and-resume job. SIGKILL (not panic) so no destructor, flush,
/// or unwind cleanup softens the crash.
fn crash_hook_after_append() {
    let Some(n) = std::env::var("AMS_TEST_CRASH_AFTER_POINTS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    else {
        return;
    };
    let done = JOURNAL_APPENDS.fetch_add(1, Ordering::SeqCst) + 1;
    if done >= n {
        eprintln!("[sweep] AMS_TEST_CRASH_AFTER_POINTS={n} reached: simulating crash (SIGKILL)");
        let _ = std::process::Command::new("kill")
            .args(["-9", &std::process::id().to_string()])
            .status();
        // Unreachable on unix; belt-and-braces elsewhere.
        std::process::abort();
    }
}

// ---------------------------------------------------------------------
// Retry policy + sweep engine
// ---------------------------------------------------------------------

/// Per-point retry/timeout policy.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts before a point is quarantined (≥ 1).
    pub max_attempts: u32,
    /// Per-attempt wall-time budget. The engine runs points in-process,
    /// so it cannot preempt a runaway attempt; an attempt whose wall time
    /// exceeds the budget is *counted as failed after the fact* and the
    /// point retried/quarantined accordingly.
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            timeout: None,
        }
    }
}

/// The resumable sweep engine: wraps a [`Journal`] behind a mutex so
/// sweep points running under `ExecCtx::parallel_map` can record results
/// concurrently.
///
/// # Example
///
/// ```
/// use ams_exp::sweep::{RetryPolicy, Sweep};
/// use ams_tensor::MetricsSink;
///
/// let dir = std::env::temp_dir().join("ams_sweep_doc");
/// let path = dir.join("demo.journal.jsonl");
/// let sweep = Sweep::new("demo", &path, false, RetryPolicy::default(),
///                        MetricsSink::disabled()).unwrap();
/// let got: Option<f64> = sweep.run_point("p0", || 42.0);
/// assert_eq!(got, Some(42.0));
/// # let _ = std::fs::remove_dir_all(dir);
/// ```
pub struct Sweep {
    name: String,
    journal: Mutex<Journal>,
    policy: RetryPolicy,
    metrics: MetricsSink,
}

impl Sweep {
    /// Opens the sweep's journal at `journal_path`.
    ///
    /// With `resume` set, previously journaled points are honored (done →
    /// replayed, failed → quarantined) and `sweep.resumed` is counted if
    /// the journal held any records. Without it, any existing journal is
    /// deleted and every point recomputes.
    ///
    /// # Errors
    ///
    /// Propagates [`JournalError`] from opening/clearing the journal —
    /// including [`JournalError::Corrupt`] when a resume would read a
    /// damaged journal.
    pub fn new(
        name: impl Into<String>,
        journal_path: impl AsRef<Path>,
        resume: bool,
        policy: RetryPolicy,
        metrics: MetricsSink,
    ) -> Result<Self, JournalError> {
        assert!(
            policy.max_attempts >= 1,
            "RetryPolicy: max_attempts must be ≥ 1"
        );
        let name = name.into();
        let journal = if resume {
            let j = Journal::open(&journal_path)?;
            if !j.records().is_empty() {
                metrics.inc("sweep.resumed");
                eprintln!(
                    "[sweep {name}] resuming: {} journaled point(s) at {}",
                    j.records().len(),
                    j.path().display()
                );
            }
            j
        } else {
            Journal::fresh(&journal_path)?
        };
        Ok(Sweep {
            name,
            journal: Mutex::new(journal),
            policy,
            metrics,
        })
    }

    /// The sweep's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs one sweep point, honoring the journal.
    ///
    /// * Journaled `done` → the recorded payload is replayed without
    ///   running `f` (`sweep.points.skipped`).
    /// * Journaled `failed` → the point stays quarantined; returns `None`.
    /// * Otherwise `f` runs under `catch_unwind`, retried up to the
    ///   policy's budget; success journals the payload and returns it,
    ///   exhaustion journals a `failed` record (`sweep.points.quarantined`)
    ///   and returns `None` so the remaining points still complete.
    ///
    /// `f` must be idempotent (it may run more than once) and is expected
    /// to tolerate unwinding — the workspace's experiment closures only
    /// hold `&self`/`&ExecCtx`, which a dropped attempt cannot poison.
    pub fn run_point<R, F>(&self, point: impl Into<String>, f: F) -> Option<R>
    where
        R: Serialize + Deserialize,
        F: Fn() -> R,
    {
        let point = point.into();
        let prior = self
            .journal
            .lock()
            .expect("journal lock")
            .find(&point)
            .cloned();
        if let Some(rec) = prior {
            match rec.status {
                PointStatus::Done => match R::from_value(&rec.payload) {
                    Ok(r) => {
                        self.metrics.inc("sweep.points.skipped");
                        return Some(r);
                    }
                    Err(e) => {
                        eprintln!(
                            "[sweep {}] point {point}: journaled payload no longer \
                             deserializes ({e}); recomputing",
                            self.name
                        );
                    }
                },
                PointStatus::Failed => {
                    self.metrics.inc("sweep.points.skipped");
                    eprintln!(
                        "[sweep {}] point {point}: quarantined by an earlier run \
                         ({}); skipping",
                        self.name,
                        rec.error.as_deref().unwrap_or("no error recorded"),
                    );
                    return None;
                }
            }
        }

        let mut last_error = String::new();
        let mut elapsed_ms = 0u64;
        for attempt in 1..=self.policy.max_attempts {
            let t0 = Instant::now();
            let outcome = panic::catch_unwind(AssertUnwindSafe(&f));
            let elapsed = t0.elapsed();
            elapsed_ms = elapsed.as_millis() as u64;
            match outcome {
                Ok(r) => {
                    if let Some(budget) = self.policy.timeout {
                        if elapsed > budget {
                            last_error = format!(
                                "attempt {attempt} exceeded its {budget:?} budget \
                                 (took {elapsed:?})"
                            );
                            self.note_retry(&point, attempt, &last_error);
                            continue;
                        }
                    }
                    self.metrics.inc("sweep.points.completed");
                    self.metrics.observe_histogram(
                        "sweep.point_ms",
                        &POINT_MS_BOUNDS,
                        elapsed_ms as f64,
                    );
                    self.append(PointRecord {
                        sweep: self.name.clone(),
                        point,
                        status: PointStatus::Done,
                        attempts: attempt,
                        elapsed_ms,
                        error: None,
                        payload: r.to_value(),
                    });
                    return Some(r);
                }
                Err(payload) => {
                    last_error = panic_message(&payload);
                    self.note_retry(&point, attempt, &last_error);
                }
            }
        }

        self.metrics.inc("sweep.points.quarantined");
        eprintln!(
            "[sweep {}] point {point}: quarantined after {} attempt(s): {last_error}",
            self.name, self.policy.max_attempts
        );
        self.append(PointRecord {
            sweep: self.name.clone(),
            point,
            status: PointStatus::Failed,
            attempts: self.policy.max_attempts,
            elapsed_ms,
            error: Some(last_error),
            payload: Value::Null,
        });
        None
    }

    fn note_retry(&self, point: &str, attempt: u32, error: &str) {
        if attempt < self.policy.max_attempts {
            self.metrics.inc("sweep.points.retried");
            eprintln!(
                "[sweep {}] point {point}: attempt {attempt} failed ({error}); retrying",
                self.name
            );
        }
    }

    fn append(&self, rec: PointRecord) {
        let t0 = Instant::now();
        let result = self.journal.lock().expect("journal lock").append(rec);
        self.metrics
            .observe("sweep.journal.write_ms", t0.elapsed().as_secs_f64() * 1e3);
        if let Err(e) = result {
            // Journal persistence is best-effort durability, not
            // correctness: the in-memory sweep still completes.
            eprintln!("[sweep {}] journal append failed: {e}", self.name);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ams_sweep_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values from the IEEE 802.3 polynomial (zlib `crc32`).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn journal_round_trips_records() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("s.journal.jsonl");
        let mut j = Journal::fresh(&path).unwrap();
        j.append(PointRecord {
            sweep: "s".into(),
            point: "p0".into(),
            status: PointStatus::Done,
            attempts: 1,
            elapsed_ms: 12,
            error: None,
            payload: Value::F64(0.125),
        })
        .unwrap();
        j.append(PointRecord {
            sweep: "s".into(),
            point: "p1".into(),
            status: PointStatus::Failed,
            attempts: 3,
            elapsed_ms: 7,
            error: Some("boom".into()),
            payload: Value::Null,
        })
        .unwrap();
        let back = Journal::open(&path).unwrap();
        assert_eq!(back.records().len(), 2);
        assert_eq!(back.find("p0").unwrap().status, PointStatus::Done);
        assert_eq!(back.find("p0").unwrap().payload, Value::F64(0.125));
        assert_eq!(back.find("p1").unwrap().status, PointStatus::Failed);
        assert_eq!(back.find("p1").unwrap().error.as_deref(), Some("boom"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_final_line_is_dropped_earlier_corruption_is_fatal() {
        let dir = tmpdir("torn");
        let path = dir.join("s.journal.jsonl");
        let mut j = Journal::fresh(&path).unwrap();
        for p in ["a", "b"] {
            j.append(PointRecord {
                sweep: "s".into(),
                point: p.into(),
                status: PointStatus::Done,
                attempts: 1,
                elapsed_ms: 1,
                error: None,
                payload: Value::U64(1),
            })
            .unwrap();
        }
        // Torn tail: truncate the final line mid-record.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        let back = Journal::open(&path).unwrap();
        assert_eq!(
            back.records().len(),
            1,
            "torn tail drops to last complete point"
        );
        assert!(back.find("a").is_some());

        // Corruption in the *first* line (flip a payload byte, keeping it
        // valid JSON but failing the CRC) must refuse to load.
        let text = std::fs::read_to_string(&path).unwrap();
        let bad = text.replacen("\"attempts\":1", "\"attempts\":2", 1);
        assert_ne!(text, bad);
        let with_tail = format!("{bad}{}", encode_line(&back.records()[0]));
        std::fs::write(&path, with_tail).unwrap();
        match Journal::open(&path) {
            Err(JournalError::Corrupt { line: 1, .. }) => {}
            other => panic!("expected Corrupt{{line:1}}, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn run_point_replays_done_and_quarantines_failures() {
        let dir = tmpdir("engine");
        let path = dir.join("s.journal.jsonl");
        let calls = AtomicU32::new(0);
        {
            let sweep = Sweep::new(
                "s",
                &path,
                false,
                RetryPolicy {
                    max_attempts: 2,
                    timeout: None,
                },
                MetricsSink::disabled(),
            )
            .unwrap();
            let got: Option<f64> = sweep.run_point("ok", || {
                calls.fetch_add(1, Ordering::SeqCst);
                1.5
            });
            assert_eq!(got, Some(1.5));
            // A point that always panics is retried then quarantined.
            let bad: Option<f64> = sweep.run_point("bad", || {
                calls.fetch_add(1, Ordering::SeqCst);
                panic!("kaboom")
            });
            assert_eq!(bad, None);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1 + 2);

        // Resume: done replays without running f; failed stays quarantined.
        let sweep = Sweep::new(
            "s",
            &path,
            true,
            RetryPolicy::default(),
            MetricsSink::disabled(),
        )
        .unwrap();
        let got: Option<f64> = sweep.run_point("ok", || {
            calls.fetch_add(1, Ordering::SeqCst);
            99.0
        });
        assert_eq!(got, Some(1.5), "resume must replay the journaled payload");
        let bad: Option<f64> = sweep.run_point("bad", || {
            calls.fetch_add(1, Ordering::SeqCst);
            7.0
        });
        assert_eq!(bad, None, "quarantined points stay quarantined on resume");
        assert_eq!(calls.load(Ordering::SeqCst), 3, "resume ran nothing");

        // Without --resume the journal is cleared and everything reruns.
        let sweep = Sweep::new(
            "s",
            &path,
            false,
            RetryPolicy::default(),
            MetricsSink::disabled(),
        )
        .unwrap();
        let got: Option<f64> = sweep.run_point("bad", || 7.0);
        assert_eq!(got, Some(7.0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn timeout_counts_as_failed_attempt() {
        let dir = tmpdir("timeout");
        let path = dir.join("s.journal.jsonl");
        let sweep = Sweep::new(
            "s",
            &path,
            false,
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::ZERO),
            },
            MetricsSink::disabled(),
        )
        .unwrap();
        let calls = AtomicU32::new(0);
        let got: Option<u64> = sweep.run_point("slow", || {
            calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            3
        });
        assert_eq!(got, None, "a zero budget quarantines every attempt");
        assert_eq!(
            calls.load(Ordering::SeqCst),
            2,
            "timeout still consumes attempts"
        );
        assert_eq!(
            Journal::open(&path).unwrap().find("slow").unwrap().status,
            PointStatus::Failed
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn skipped_points_are_counted() {
        let dir = tmpdir("metrics");
        let path = dir.join("s.journal.jsonl");
        {
            let sweep = Sweep::new(
                "s",
                &path,
                false,
                RetryPolicy::default(),
                MetricsSink::disabled(),
            )
            .unwrap();
            let _: Option<u64> = sweep.run_point("p", || 1);
        }
        let sink = MetricsSink::recording();
        let sweep = Sweep::new("s", &path, true, RetryPolicy::default(), sink.clone()).unwrap();
        let _: Option<u64> = sweep.run_point("p", || 2);
        let report = sink.registry().unwrap().report();
        let count = |name: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert_eq!(count("sweep.resumed"), 1);
        assert_eq!(count("sweep.points.skipped"), 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
