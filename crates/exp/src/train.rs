//! The training and evaluation loops.

use ams_data::{Batcher, Dataset};
use ams_models::ResNetMini;
use ams_nn::{accuracy, softmax_cross_entropy, Checkpoint, Layer, Mode, Sgd};
use ams_tensor::{rng, ExecCtx};

use crate::report::Stat;

/// Result of a training run with per-epoch validation: the best epoch's
/// snapshot and history.
///
/// The paper does not use learning-rate scheduling: "if the validation set
/// accuracy begins to decrease after some time, the training run is
/// stopped and the maximum validation accuracy is reported". This loop
/// mirrors that by snapshotting the best-validation epoch.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Snapshot of the model at its best validation epoch.
    pub best_checkpoint: Checkpoint,
    /// Single-pass validation accuracy of the best epoch.
    pub best_val_acc: f64,
    /// 1-based index of the best epoch.
    pub best_epoch: usize,
    /// `(train_loss, val_acc)` per epoch.
    pub history: Vec<(f64, f64)>,
}

/// Trains `net` for `epochs` epochs of SGD with momentum 0.9 (and weight
/// decay 5e-4 on decaying parameters), validating after each epoch and
/// snapshotting the best.
///
/// Random horizontal flips augment each epoch's training data.
///
/// # Panics
///
/// Panics if `epochs == 0` or either dataset is empty.
#[allow(clippy::too_many_arguments)]
pub fn train_with_eval(
    ctx: &ExecCtx,
    net: &mut ResNetMini,
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
) -> TrainOutcome {
    train_scheduled(ctx, net, train, val, epochs, lr, batch, seed, &[])
}

/// [`train_with_eval`] with step learning-rate decay: the learning rate is
/// multiplied by 0.2 at each (1-based) epoch listed in `decay_at`.
///
/// Used for FP32 *pretraining* only — the paper's retraining runs use a
/// constant learning rate ("learning rate scheduling is not implemented
/// here", §3), which [`train_with_eval`] preserves.
///
/// # Panics
///
/// Panics if `epochs == 0` or either dataset is empty.
#[allow(clippy::too_many_arguments)]
pub fn train_scheduled(
    ctx: &ExecCtx,
    net: &mut ResNetMini,
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
    decay_at: &[usize],
) -> TrainOutcome {
    assert!(epochs > 0, "train_with_eval: zero epochs");
    assert!(
        !train.is_empty() && !val.is_empty(),
        "train_with_eval: empty dataset"
    );
    let mut opt = Sgd::with_momentum(lr, 0.9).weight_decay(5e-4);
    let mut shuffle_rng = rng::seeded(seed);
    let mut best = TrainOutcome {
        best_checkpoint: Checkpoint::new(),
        best_val_acc: f64::NEG_INFINITY,
        best_epoch: 0,
        history: Vec::with_capacity(epochs),
    };
    for epoch in 1..=epochs {
        let _epoch_t = ctx.metrics().scope(|| "train.epoch".to_string());
        if decay_at.contains(&epoch) {
            opt.lr *= 0.2;
        }
        let augmented = train.random_flip(&mut shuffle_rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (images, labels) in Batcher::new(&augmented, batch, &mut shuffle_rng) {
            let logits = net.forward(ctx, &images, Mode::Train);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(ctx, &grad);
            opt.step(net);
            loss_sum += f64::from(loss);
            batches += 1;
        }
        let val_acc = f64::from(eval_accuracy(ctx, net, val, batch));
        ctx.metrics()
            .observe("train.epoch_loss", loss_sum / batches as f64);
        ctx.metrics().observe("train.epoch_val_acc", val_acc);
        best.history.push((loss_sum / batches as f64, val_acc));
        if val_acc > best.best_val_acc {
            best.best_val_acc = val_acc;
            best.best_epoch = epoch;
            best.best_checkpoint = Checkpoint::from_layer(net);
        }
    }
    // Leave the network at its best epoch, as the paper reports it.
    best.best_checkpoint
        .load_into(net)
        .expect("own snapshot always loads");
    best
}

/// Single evaluation pass: top-1 accuracy over a dataset in `Mode::Eval`.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn eval_accuracy(ctx: &ExecCtx, net: &mut ResNetMini, data: &Dataset, batch: usize) -> f32 {
    assert!(!data.is_empty(), "eval_accuracy: empty dataset");
    let _t = ctx.metrics().scope(|| "eval.pass".to_string());
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for (images, labels) in Batcher::sequential(data, batch) {
        let logits = net.forward(ctx, &images, Mode::Eval);
        correct_weighted += f64::from(accuracy(&logits, &labels)) * labels.len() as f64;
        total += labels.len();
    }
    (correct_weighted / total as f64) as f32
}

/// The paper's reporting protocol: the sample mean and standard deviation
/// of `passes` validation passes.
///
/// When the network injects AMS error at evaluation (`stochastic_eval`),
/// each pass reseeds the noise streams and runs the full validation set —
/// the variance comes from the error itself. For deterministic networks
/// each pass evaluates an independent 80 % subsample (multi-GPU
/// nondeterminism provided the paper's variance; a deterministic
/// single-thread evaluation needs an explicit resampling source — see
/// DESIGN.md).
///
/// # Panics
///
/// Panics if `passes == 0` or the dataset is empty.
pub fn eval_passes(
    ctx: &ExecCtx,
    net: &mut ResNetMini,
    val: &Dataset,
    passes: usize,
    batch: usize,
    stochastic_eval: bool,
    base_seed: u64,
) -> Stat {
    assert!(passes > 0, "eval_passes: zero passes");
    let mut samples = Vec::with_capacity(passes);
    for pass in 0..passes {
        let acc = if stochastic_eval {
            net.reseed_noise(
                base_seed
                    .wrapping_add(pass as u64)
                    .wrapping_mul(0x9E37_79B9),
            );
            eval_accuracy(ctx, net, val, batch)
        } else {
            let mut r = rng::seeded(base_seed.wrapping_add(pass as u64));
            let sub = val.subsample(0.8, &mut r);
            eval_accuracy(ctx, net, &sub, batch)
        };
        samples.push(f64::from(acc));
    }
    Stat::from_samples(&samples).expect("passes > 0 yields at least one sample")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::SynthConfig;
    use ams_models::{HardwareConfig, ResNetMiniConfig};

    #[test]
    fn training_learns_above_chance() {
        let data = SynthConfig::tiny().generate();
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &HardwareConfig::fp32());
        let out = train_with_eval(
            &ExecCtx::serial(),
            &mut net,
            &data.train,
            &data.val,
            6,
            0.08,
            16,
            0,
        );
        let chance = 1.0 / data.config().classes as f64;
        assert!(
            out.best_val_acc > chance + 0.15,
            "best val acc {} barely above chance {chance}",
            out.best_val_acc
        );
        assert_eq!(out.history.len(), 6);
        assert!(out.best_epoch >= 1 && out.best_epoch <= 6);
    }

    #[test]
    fn eval_passes_deterministic_vs_stochastic() {
        let data = SynthConfig::tiny().generate();
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &HardwareConfig::fp32());
        let s1 = eval_passes(&ExecCtx::serial(), &mut net, &data.val, 3, 16, false, 7);
        let s2 = eval_passes(&ExecCtx::serial(), &mut net, &data.val, 3, 16, false, 7);
        assert_eq!(s1, s2, "same seeds, same subsamples, same stat");
    }
}
