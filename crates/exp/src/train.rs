//! The training and evaluation loops.

use std::path::Path;
use std::time::Instant;

use ams_data::{Batcher, Dataset};
use ams_models::{AmsModel, ErrorModelConfig, ModelKind};
use ams_nn::{accuracy, softmax_cross_entropy, Checkpoint, Mode, Sgd};
use ams_quant::QuantScheme;
use ams_tensor::{rng, ExecCtx};
use serde::{Deserialize, Serialize};

use crate::report::Stat;

/// Result of a training run with per-epoch validation: the best epoch's
/// snapshot and history.
///
/// The paper does not use learning-rate scheduling: "if the validation set
/// accuracy begins to decrease after some time, the training run is
/// stopped and the maximum validation accuracy is reported". This loop
/// mirrors that by snapshotting the best-validation epoch.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Snapshot of the model at its best validation epoch.
    pub best_checkpoint: Checkpoint,
    /// Single-pass validation accuracy of the best epoch.
    pub best_val_acc: f64,
    /// 1-based index of the best epoch.
    pub best_epoch: usize,
    /// `(train_loss, val_acc)` per epoch.
    pub history: Vec<(f64, f64)>,
}

/// Trains `net` for `epochs` epochs of SGD with momentum 0.9 (and weight
/// decay 5e-4 on decaying parameters), validating after each epoch and
/// snapshotting the best.
///
/// Random horizontal flips augment each epoch's training data.
///
/// # Panics
///
/// Panics if `epochs == 0` or either dataset is empty.
#[allow(clippy::too_many_arguments)]
pub fn train_with_eval(
    ctx: &ExecCtx,
    net: &mut dyn AmsModel,
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
) -> TrainOutcome {
    train_scheduled(ctx, net, train, val, epochs, lr, batch, seed, &[])
}

/// [`train_with_eval`] with step learning-rate decay: the learning rate is
/// multiplied by 0.2 at each (1-based) epoch listed in `decay_at`.
///
/// Used for FP32 *pretraining* only — the paper's retraining runs use a
/// constant learning rate ("learning rate scheduling is not implemented
/// here", §3), which [`train_with_eval`] preserves.
///
/// # Panics
///
/// Panics if `epochs == 0` or either dataset is empty.
#[allow(clippy::too_many_arguments)]
pub fn train_scheduled(
    ctx: &ExecCtx,
    net: &mut dyn AmsModel,
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
    decay_at: &[usize],
) -> TrainOutcome {
    train_scheduled_resumable(
        ctx, net, train, val, epochs, lr, batch, seed, decay_at, None,
    )
}

/// Everything the training loop needs to continue **bit-identically**
/// from an epoch boundary after the process is killed (DESIGN.md §9):
/// the live model state, the optimizer's momentum buffers, the current
/// (post-decay) learning rate, the shuffle/augmentation RNG cursor, every
/// layer's AMS noise-stream cursor, and the best-epoch bookkeeping.
///
/// Gradients are *not* captured: [`Sgd::step`] zeroes them after every
/// update, so they are identically zero at each epoch boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainState {
    /// Epochs fully completed (resume continues at `epochs_done + 1`).
    pub epochs_done: usize,
    /// Current learning rate, with any step decays already applied.
    pub lr: f32,
    /// Live model parameters and buffers at the boundary.
    pub model: Checkpoint,
    /// Optimizer momentum buffers, keyed by parameter name.
    pub velocities: Checkpoint,
    /// Cursor of the shuffle/augmentation stream.
    pub shuffle_rng: rng::RngState,
    /// The error model the run was configured with. Resume refuses a
    /// state written under a different model: the noise cursors below
    /// would silently reposition the *wrong* error process.
    pub error_model: ErrorModelConfig,
    /// The quantizer scheme the run was configured with. Resume refuses a
    /// state written under a different quantizer: the parameters were
    /// trained against a different forward function (absent in states
    /// written before the quantizer seam; defaults to DoReFa).
    pub quant: QuantScheme,
    /// The topology the run was training. Resume refuses a state written
    /// for a different model before the checkpoint load can fail with a
    /// less actionable key-mismatch error (absent in states written
    /// before the model seam; defaults to ResNetMini).
    pub model_kind: ModelKind,
    /// Per-layer AMS noise-stream cursors, in the model's forward order.
    pub noise_states: Vec<rng::RngState>,
    /// Snapshot of the best-validation epoch so far.
    pub best_checkpoint: Checkpoint,
    /// Best single-pass validation accuracy so far.
    pub best_val_acc: f64,
    /// 1-based index of the best epoch so far (0 = none yet).
    pub best_epoch: usize,
    /// `(train_loss, val_acc)` per completed epoch.
    pub history: Vec<(f64, f64)>,
}

impl TrainState {
    /// Loads a state file written by a previous (killed) run.
    ///
    /// Returns `None` when the file is absent — a fresh run. A present
    /// but unreadable file is also treated as fresh, with a warning: the
    /// file is written atomically, so this only happens when the schema
    /// changed or the file was tampered with, and recomputing is always
    /// correct.
    pub fn load(path: &Path) -> Option<TrainState> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "[train] cannot read state {}: {e}; restarting",
                    path.display()
                );
                return None;
            }
        };
        match serde_json::from_str(&text) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!(
                    "[train] cannot parse state {}: {e}; restarting",
                    path.display()
                );
                None
            }
        }
    }

    fn save(&self, path: &Path, ctx: &ExecCtx) {
        let t0 = Instant::now();
        let json = serde_json::to_string(self).expect("train state serializes");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        if let Err(e) = ams_obs::fsio::atomic_write(path, json.as_bytes()) {
            // Durability is best-effort; training itself is unaffected.
            eprintln!("[train] cannot write state {}: {e}", path.display());
        }
        ctx.metrics()
            .observe("checkpoint.write_ms", t0.elapsed().as_secs_f64() * 1e3);
    }
}

/// [`train_scheduled`] with optional crash-safe epoch checkpointing.
///
/// With `state_path` set, a [`TrainState`] is written atomically after
/// every epoch and deleted on successful completion; if the file already
/// exists on entry (a previous run was killed), training resumes from it
/// and the finished run is **bit-identical** to an uninterrupted one —
/// same best checkpoint, same history, same RNG cursors. Frozen-parameter
/// flags are *not* persisted; callers that freeze layers (Table 2) apply
/// the policy to `net` before calling, exactly as on a fresh run.
///
/// # Panics
///
/// Panics if `epochs == 0`, either dataset is empty, or a resumed state
/// does not match `net`'s architecture.
#[allow(clippy::too_many_arguments)]
pub fn train_scheduled_resumable(
    ctx: &ExecCtx,
    net: &mut dyn AmsModel,
    train: &Dataset,
    val: &Dataset,
    epochs: usize,
    lr: f32,
    batch: usize,
    seed: u64,
    decay_at: &[usize],
    state_path: Option<&Path>,
) -> TrainOutcome {
    assert!(epochs > 0, "train_with_eval: zero epochs");
    assert!(
        !train.is_empty() && !val.is_empty(),
        "train_with_eval: empty dataset"
    );
    let mut opt = Sgd::with_momentum(lr, 0.9).weight_decay(5e-4);
    let mut shuffle_rng = rng::seeded(seed);
    let mut best = TrainOutcome {
        best_checkpoint: Checkpoint::new(),
        best_val_acc: f64::NEG_INFINITY,
        best_epoch: 0,
        history: Vec::with_capacity(epochs),
    };
    let mut start_epoch = 1usize;

    if let Some(state) = state_path.and_then(TrainState::load) {
        let configured = net.hardware().error_model;
        assert!(
            state.error_model == configured,
            "refusing to resume from {}: checkpoint was written with error model {:?}, \
             this run uses {:?} — delete the state file to restart from scratch",
            state_path.expect("load implies a path").display(),
            state.error_model,
            configured,
        );
        let configured_quant = net.hardware().quant.scheme;
        assert!(
            state.quant == configured_quant,
            "refusing to resume from {}: checkpoint was written with quantizer {}, \
             this run uses {} — delete the state file to restart from scratch",
            state_path.expect("load implies a path").display(),
            state.quant,
            configured_quant,
        );
        let configured_model = net.kind();
        assert!(
            state.model_kind == configured_model,
            "refusing to resume from {}: checkpoint was written for model {}, \
             this run trains {} — delete the state file to restart from scratch",
            state_path.expect("load implies a path").display(),
            state.model_kind,
            configured_model,
        );
        eprintln!(
            "[train] resuming at epoch {}/{epochs} from {}",
            state.epochs_done + 1,
            state_path.expect("load implies a path").display()
        );
        state
            .model
            .load_into(&mut *net)
            .expect("state matches architecture");
        state
            .velocities
            .load_velocities_into(&mut *net)
            .expect("state matches architecture");
        net.restore_noise_states(&state.noise_states);
        shuffle_rng = state.shuffle_rng.restore();
        opt.lr = state.lr;
        best.best_checkpoint = state.best_checkpoint;
        best.best_val_acc = state.best_val_acc;
        best.best_epoch = state.best_epoch;
        best.history = state.history;
        start_epoch = state.epochs_done + 1;
        ctx.metrics().inc("train.resumed");
        ctx.metrics()
            .add("train.epochs.skipped", state.epochs_done as u64);
    }

    for epoch in start_epoch..=epochs {
        let _epoch_t = ctx.metrics().scope(|| "train.epoch".to_string());
        if decay_at.contains(&epoch) {
            opt.lr *= 0.2;
        }
        let augmented = train.random_flip(&mut shuffle_rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (images, labels) in Batcher::new(&augmented, batch, &mut shuffle_rng) {
            let logits = net.forward(ctx, &images, Mode::Train);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(ctx, &grad);
            opt.step(&mut *net);
            loss_sum += f64::from(loss);
            batches += 1;
        }
        let val_acc = f64::from(eval_accuracy(ctx, &mut *net, val, batch));
        ctx.metrics()
            .observe("train.epoch_loss", loss_sum / batches as f64);
        ctx.metrics().observe("train.epoch_val_acc", val_acc);
        best.history.push((loss_sum / batches as f64, val_acc));
        if val_acc > best.best_val_acc {
            best.best_val_acc = val_acc;
            best.best_epoch = epoch;
            best.best_checkpoint = Checkpoint::from_layer(&mut *net);
        }
        if let Some(path) = state_path {
            if epoch < epochs {
                TrainState {
                    epochs_done: epoch,
                    lr: opt.lr,
                    model: Checkpoint::from_layer(&mut *net),
                    velocities: Checkpoint::velocities_from(&mut *net),
                    shuffle_rng: rng::RngState::capture(&shuffle_rng),
                    error_model: net.hardware().error_model,
                    quant: net.hardware().quant.scheme,
                    model_kind: net.kind(),
                    noise_states: net.noise_states(),
                    best_checkpoint: best.best_checkpoint.clone(),
                    best_val_acc: best.best_val_acc,
                    best_epoch: best.best_epoch,
                    history: best.history.clone(),
                }
                .save(path, ctx);
            }
        }
    }
    // Leave the network at its best epoch, as the paper reports it.
    best.best_checkpoint
        .load_into(&mut *net)
        .expect("own snapshot always loads");
    if let Some(path) = state_path {
        // The run completed; the state file has served its purpose.
        let _ = std::fs::remove_file(path);
    }
    best
}

/// Single evaluation pass: top-1 accuracy over a dataset in `Mode::Eval`.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn eval_accuracy(ctx: &ExecCtx, net: &mut dyn AmsModel, data: &Dataset, batch: usize) -> f32 {
    assert!(!data.is_empty(), "eval_accuracy: empty dataset");
    let _t = ctx.metrics().scope(|| "eval.pass".to_string());
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for (images, labels) in Batcher::sequential(data, batch) {
        let logits = net.forward(ctx, &images, Mode::Eval);
        correct_weighted += f64::from(accuracy(&logits, &labels)) * labels.len() as f64;
        total += labels.len();
    }
    (correct_weighted / total as f64) as f32
}

/// The paper's reporting protocol: the sample mean and standard deviation
/// of `passes` validation passes.
///
/// When the network injects AMS error at evaluation (`stochastic_eval`),
/// each pass reseeds the noise streams and runs the full validation set —
/// the variance comes from the error itself. For deterministic networks
/// each pass evaluates an independent 80 % subsample (multi-GPU
/// nondeterminism provided the paper's variance; a deterministic
/// single-thread evaluation needs an explicit resampling source — see
/// DESIGN.md).
///
/// # Panics
///
/// Panics if `passes == 0` or the dataset is empty.
pub fn eval_passes(
    ctx: &ExecCtx,
    net: &mut dyn AmsModel,
    val: &Dataset,
    passes: usize,
    batch: usize,
    stochastic_eval: bool,
    base_seed: u64,
) -> Stat {
    assert!(passes > 0, "eval_passes: zero passes");
    let mut samples = Vec::with_capacity(passes);
    for pass in 0..passes {
        let acc = if stochastic_eval {
            net.reseed_noise(
                base_seed
                    .wrapping_add(pass as u64)
                    .wrapping_mul(0x9E37_79B9),
            );
            eval_accuracy(ctx, &mut *net, val, batch)
        } else {
            let mut r = rng::seeded(base_seed.wrapping_add(pass as u64));
            let sub = val.subsample(0.8, &mut r);
            eval_accuracy(ctx, &mut *net, &sub, batch)
        };
        samples.push(f64::from(acc));
    }
    Stat::from_samples(&samples).expect("passes > 0 yields at least one sample")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::SynthConfig;
    use ams_models::{HardwareConfig, LeNet5, LeNet5Config, ResNetMini, ResNetMiniConfig};
    use ams_nn::Layer;

    #[test]
    fn training_learns_above_chance() {
        let data = SynthConfig::tiny().generate();
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &HardwareConfig::fp32());
        let out = train_with_eval(
            &ExecCtx::serial(),
            &mut net,
            &data.train,
            &data.val,
            6,
            0.08,
            16,
            0,
        );
        let chance = 1.0 / data.config().classes as f64;
        assert!(
            out.best_val_acc > chance + 0.15,
            "best val acc {} barely above chance {chance}",
            out.best_val_acc
        );
        assert_eq!(out.history.len(), 6);
        assert!(out.best_epoch >= 1 && out.best_epoch <= 6);
    }

    #[test]
    fn resumed_training_is_bit_identical() {
        // Train 4 epochs straight vs. "crash" after epoch 2 (simulated by
        // a fresh net + the on-disk TrainState) and resume. Every output
        // must match bitwise — the crash-safety contract of DESIGN.md §9.
        let data = SynthConfig::tiny().generate();
        let ctx = ExecCtx::serial();
        let dir = std::env::temp_dir().join(format!("ams_train_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state.json");

        // AMS hardware so the noise streams are live during training/eval.
        let hw = ams_models::HardwareConfig::ams(
            ams_quant::QuantConfig::w8a8(),
            ams_core::vmac::Vmac::new(8, 8, 8, 6.0),
        );
        let arch = ResNetMiniConfig::tiny();
        let decay = [3usize];

        let mut straight = ResNetMini::new(&arch, &hw);
        let full = train_scheduled(
            &ctx,
            &mut straight,
            &data.train,
            &data.val,
            4,
            0.05,
            16,
            9,
            &decay,
        );

        // Simulate the kill: run the first 2 epochs by hand (same seed ⇒
        // same trajectory as the straight run) and persist the TrainState
        // a mid-run kill would have left behind.
        let mut prefix = ResNetMini::new(&arch, &hw);
        let mut rng2 = rng::seeded(9);
        let mut opt = Sgd::with_momentum(0.05, 0.9).weight_decay(5e-4);
        let mut hist = Vec::new();
        let mut best_acc = f64::NEG_INFINITY;
        let mut best_epoch = 0usize;
        let mut best_ckpt = Checkpoint::new();
        for epoch in 1..=2 {
            if decay.contains(&epoch) {
                opt.lr *= 0.2;
            }
            let augmented = data.train.random_flip(&mut rng2);
            let mut loss_sum = 0.0;
            let mut batches = 0usize;
            for (images, labels) in Batcher::new(&augmented, 16, &mut rng2) {
                let logits = prefix.forward(&ctx, &images, Mode::Train);
                let (loss, grad) = softmax_cross_entropy(&logits, &labels);
                prefix.backward(&ctx, &grad);
                opt.step(&mut prefix);
                loss_sum += f64::from(loss);
                batches += 1;
            }
            let val_acc = f64::from(eval_accuracy(&ctx, &mut prefix, &data.val, 16));
            hist.push((loss_sum / batches as f64, val_acc));
            if val_acc > best_acc {
                best_acc = val_acc;
                best_epoch = epoch;
                best_ckpt = Checkpoint::from_layer(&mut prefix);
            }
        }
        let st = TrainState {
            epochs_done: 2,
            lr: opt.lr,
            model: Checkpoint::from_layer(&mut prefix),
            velocities: Checkpoint::velocities_from(&mut prefix),
            shuffle_rng: rng::RngState::capture(&rng2),
            error_model: hw.error_model,
            quant: hw.quant.scheme,
            model_kind: ModelKind::ResNetMini,
            noise_states: prefix.noise_states(),
            best_checkpoint: best_ckpt,
            best_val_acc: best_acc,
            best_epoch,
            history: hist,
        };
        let json = serde_json::to_string(&st).unwrap();
        std::fs::write(&state, json).unwrap();

        // Resume into a *fresh* net — everything must come from the file.
        let mut resumed = ResNetMini::new(&arch, &hw);
        let out = train_scheduled_resumable(
            &ctx,
            &mut resumed,
            &data.train,
            &data.val,
            4,
            0.05,
            16,
            9,
            &decay,
            Some(&state),
        );

        assert_eq!(out.best_val_acc, full.best_val_acc);
        assert_eq!(out.best_epoch, full.best_epoch);
        assert_eq!(out.history, full.history, "history must match bitwise");
        for ((n1, t1), (n2, t2)) in full.best_checkpoint.iter().zip(out.best_checkpoint.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2, "checkpoint tensor {n1} differs after resume");
        }
        assert!(!state.exists(), "state file is cleaned up on completion");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// A valid epoch-1 state for `net` under `hw`; refusal tests corrupt
    /// exactly one scenario field before writing it.
    fn epoch1_state(net: &mut ResNetMini, hw: &HardwareConfig) -> TrainState {
        TrainState {
            epochs_done: 1,
            lr: 0.05,
            model: Checkpoint::from_layer(net),
            velocities: Checkpoint::velocities_from(net),
            shuffle_rng: rng::RngState::capture(&rng::seeded(9)),
            error_model: hw.error_model,
            quant: hw.quant.scheme,
            model_kind: ModelKind::ResNetMini,
            noise_states: net.noise_states(),
            best_checkpoint: Checkpoint::from_layer(net),
            best_val_acc: 0.5,
            best_epoch: 1,
            history: vec![(1.0, 0.5)],
        }
    }

    /// Writes `st` to a temp state file and resumes a fresh ResNetMini
    /// from it — the refusal asserts fire before any training happens.
    fn resume_from(st: &TrainState, tag: &str) {
        let data = SynthConfig::tiny().generate();
        let ctx = ExecCtx::serial();
        let dir = std::env::temp_dir().join(format!("ams_train_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state.json");
        std::fs::write(&state, serde_json::to_string(st).unwrap()).unwrap();

        let hw = ams_models::HardwareConfig::ams(
            ams_quant::QuantConfig::w8a8(),
            ams_core::vmac::Vmac::new(8, 8, 8, 6.0),
        );
        let mut resumed = ResNetMini::new(&ResNetMiniConfig::tiny(), &hw);
        train_scheduled_resumable(
            &ctx,
            &mut resumed,
            &data.train,
            &data.val,
            2,
            0.05,
            16,
            9,
            &[],
            Some(&state),
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    fn refusal_hw_and_state() -> (HardwareConfig, TrainState) {
        let hw = ams_models::HardwareConfig::ams(
            ams_quant::QuantConfig::w8a8(),
            ams_core::vmac::Vmac::new(8, 8, 8, 6.0),
        );
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &hw);
        let st = epoch1_state(&mut net, &hw);
        (hw, st)
    }

    #[test]
    #[should_panic(expected = "checkpoint was written with error model")]
    fn resume_refuses_a_mismatched_error_model() {
        // A TrainState written under the per-VMAC model must not silently
        // reposition a lumped run's noise cursors.
        let (hw, mut st) = refusal_hw_and_state();
        st.error_model = hw.with_per_vmac_eval().error_model;
        resume_from(&st, "refuse_error_model");
    }

    #[test]
    #[should_panic(expected = "checkpoint was written with quantizer bfp16")]
    fn resume_refuses_a_mismatched_quantizer() {
        // Parameters trained under block-floating-point must not continue
        // under the DoReFa forward function.
        let (_, mut st) = refusal_hw_and_state();
        st.quant = QuantScheme::Bfp { block: 16 };
        resume_from(&st, "refuse_quant");
    }

    #[test]
    #[should_panic(expected = "checkpoint was written for model lenet5")]
    fn resume_refuses_a_mismatched_model() {
        let (_, mut st) = refusal_hw_and_state();
        st.model_kind = ModelKind::LeNet5;
        resume_from(&st, "refuse_model");
    }

    #[test]
    fn old_train_state_without_scenario_fields_still_parses() {
        // States written before the quantizer/model seam lack both fields;
        // they must deserialize to the default scenario, not error.
        let hw = HardwareConfig::fp32();
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &hw);
        let st = epoch1_state(&mut net, &hw);
        let mut v = serde::Serialize::to_value(&st);
        if let serde::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "quant" && k != "model_kind");
        }
        let back =
            <TrainState as serde::Deserialize>::from_value(&v).expect("pre-seam state must parse");
        assert_eq!(back.quant, QuantScheme::Dorefa);
        assert_eq!(back.model_kind, ModelKind::ResNetMini);
    }

    #[test]
    fn lenet5_resumable_training_runs_through_the_spec() {
        // Straight 2-epoch run vs. manual epoch 1 + persisted TrainState +
        // resumed epoch 2, every net a boxed ModelSpec build under the BFP
        // quantizer: the §9 bit-identity contract holds for every zoo
        // member and quantizer, not just the default pipeline.
        let data = SynthConfig::tiny().generate();
        let ctx = ExecCtx::serial();
        let dir = std::env::temp_dir().join(format!("ams_train_lenet_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let state = dir.join("state.json");

        let quant = ams_quant::QuantConfig::w8a8().with_scheme(QuantScheme::Bfp { block: 16 });
        let hw = HardwareConfig::ams(quant, ams_core::vmac::Vmac::new(8, 8, 8, 6.0));
        let spec = ams_models::ModelSpec::LeNet5(LeNet5Config::tiny());

        let mut straight = spec.build(&hw);
        let full = train_scheduled(
            &ctx,
            &mut *straight,
            &data.train,
            &data.val,
            2,
            0.05,
            16,
            9,
            &[],
        );

        // Manual epoch 1 (same seed ⇒ same trajectory as the straight
        // run), persisted as the TrainState a mid-run kill leaves behind.
        let mut prefix = spec.build(&hw);
        let mut rng2 = rng::seeded(9);
        let opt = Sgd::with_momentum(0.05, 0.9).weight_decay(5e-4);
        let augmented = data.train.random_flip(&mut rng2);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for (images, labels) in Batcher::new(&augmented, 16, &mut rng2) {
            let logits = prefix.forward(&ctx, &images, Mode::Train);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            prefix.backward(&ctx, &grad);
            opt.step(&mut *prefix);
            loss_sum += f64::from(loss);
            batches += 1;
        }
        let val_acc = f64::from(eval_accuracy(&ctx, &mut *prefix, &data.val, 16));
        let st = TrainState {
            epochs_done: 1,
            lr: opt.lr,
            model: Checkpoint::from_layer(&mut *prefix),
            velocities: Checkpoint::velocities_from(&mut *prefix),
            shuffle_rng: rng::RngState::capture(&rng2),
            error_model: hw.error_model,
            quant: hw.quant.scheme,
            model_kind: ModelKind::LeNet5,
            noise_states: prefix.noise_states(),
            best_checkpoint: Checkpoint::from_layer(&mut *prefix),
            best_val_acc: val_acc,
            best_epoch: 1,
            history: vec![(loss_sum / batches as f64, val_acc)],
        };
        std::fs::write(&state, serde_json::to_string(&st).unwrap()).unwrap();

        // Resume into a *fresh* build — everything must come from the file.
        let mut resumed = spec.build(&hw);
        let out = train_scheduled_resumable(
            &ctx,
            &mut *resumed,
            &data.train,
            &data.val,
            2,
            0.05,
            16,
            9,
            &[],
            Some(&state),
        );
        assert_eq!(out.history, full.history, "history must match bitwise");
        assert_eq!(out.best_val_acc, full.best_val_acc);
        for ((n1, t1), (n2, t2)) in full.best_checkpoint.iter().zip(out.best_checkpoint.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(t1, t2, "checkpoint tensor {n1} differs after resume");
        }
        assert!(!state.exists(), "state file is cleaned up on completion");
        // The best checkpoint loads back into a concrete LeNet5.
        let mut concrete = LeNet5::new(&LeNet5Config::tiny(), &hw);
        out.best_checkpoint
            .load_into(&mut concrete)
            .expect("same key-space");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn eval_passes_deterministic_vs_stochastic() {
        let data = SynthConfig::tiny().generate();
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &HardwareConfig::fp32());
        let s1 = eval_passes(&ExecCtx::serial(), &mut net, &data.val, 3, 16, false, 7);
        let s2 = eval_passes(&ExecCtx::serial(), &mut net, &data.val, 3, 16, false, 7);
        assert_eq!(s1, s2, "same seeds, same subsamples, same stat");
    }
}
