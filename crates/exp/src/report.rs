//! Result statistics, table printing and CSV output.

use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Mean ± sample standard deviation of repeated measurements — the format
/// of every accuracy the paper reports ("the sample mean of five passes of
/// the validation dataset … with error bars showing the sample standard
/// deviation").
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
}

impl Stat {
    /// Computes mean and sample standard deviation, or `None` for an
    /// empty sample set (there is no meaningful mean of nothing — callers
    /// decide whether that is a bug or an expected "no data" case).
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std = if samples.len() > 1 {
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        Some(Stat { mean, std })
    }

    /// The loss of this statistic relative to a baseline mean
    /// (`baseline − self`), propagating both standard deviations in
    /// quadrature.
    pub fn loss_relative_to(&self, baseline: Stat) -> Stat {
        Stat {
            mean: baseline.mean - self.mean,
            std: (self.std * self.std + baseline.std * baseline.std).sqrt(),
        }
    }
}

impl std::fmt::Display for Stat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.1e}", self.mean, self.std)
    }
}

/// A printable, CSV-exportable experiment result.
///
/// Every figure/table result type implements this by describing its main
/// table (title, headers, rows) and CSV file stem; the provided
/// [`Report::report`] drives the shared print-then-write sequence that
/// every experiment binary calls. Results with side output override
/// [`Report::print_extra`] (summary lines after the table) and
/// [`Report::write_extra_csvs`] (additional files); results whose CSV
/// schema differs from the printed table override [`Report::csv_headers`]
/// / [`Report::csv_rows`].
pub trait Report {
    /// Title printed above the main table.
    fn title(&self) -> String;
    /// Column headers of the main table.
    fn headers(&self) -> Vec<String>;
    /// Formatted rows of the main table.
    fn rows(&self) -> Vec<Vec<String>>;
    /// File stem of the main CSV — written as `<stem>_<scale>.csv`.
    fn csv_stem(&self) -> &'static str;

    /// CSV column headers; defaults to the printed headers.
    fn csv_headers(&self) -> Vec<String> {
        self.headers()
    }

    /// CSV rows; defaults to the printed rows.
    fn csv_rows(&self) -> Vec<Vec<String>> {
        self.rows()
    }

    /// Extra summary lines printed after the main table.
    fn print_extra(&self) {}

    /// Additional CSV files beyond the main one.
    fn write_extra_csvs(&self, _dir: &Path, _scale_name: &str) {}

    /// Prints the main table and any extras, then writes the CSVs into
    /// `dir`. I/O failures are ignored — reporting is best-effort and the
    /// printed output always happens.
    fn report(&self, dir: &Path, scale_name: &str) {
        let headers = self.headers();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&self.title(), &header_refs, &self.rows());
        self.print_extra();
        let csv_headers = self.csv_headers();
        let csv_header_refs: Vec<&str> = csv_headers.iter().map(String::as_str).collect();
        let _ = write_csv(
            dir.join(format!("{}_{scale_name}.csv", self.csv_stem())),
            &csv_header_refs,
            &self.csv_rows(),
        );
        self.write_extra_csvs(dir, scale_name);
    }
}

/// Prints an aligned text table with a title, in the style of the paper's
/// tables.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
    println!("\n{title}");
    println!("{}", "=".repeat(total.max(title.len())));
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join(" | "));
    println!("{}", "-".repeat(total.max(title.len())));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join(" | "));
    }
}

/// Writes rows as CSV (headers first). Parent directories are created.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv(path: impl AsRef<Path>, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        // Quote cells containing commas.
        let cells: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') {
                    format!("\"{c}\"")
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    // Atomic so a kill mid-run never leaves a torn CSV for the resume to
    // diff against.
    ams_obs::fsio::atomic_write(path, out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_matches_hand_computation() {
        let s = Stat::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stat_single_sample_has_zero_std() {
        let single = Stat::from_samples(&[5.0]).unwrap();
        assert_eq!(single.mean, 5.0);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn stat_empty_samples_is_none_not_panic() {
        assert!(Stat::from_samples(&[]).is_none());
    }

    #[test]
    fn loss_relative_subtracts_and_propagates() {
        let base = Stat {
            mean: 0.78,
            std: 0.003,
        };
        let cfg = Stat {
            mean: 0.74,
            std: 0.004,
        };
        let loss = cfg.loss_relative_to(base);
        assert!((loss.mean - 0.04).abs() < 1e-12);
        assert!((loss.std - 0.005).abs() < 1e-12);
    }

    #[test]
    fn report_trait_defaults_write_main_csv() {
        struct Demo;
        impl Report for Demo {
            fn title(&self) -> String {
                "demo".into()
            }
            fn headers(&self) -> Vec<String> {
                vec!["a".into(), "b".into()]
            }
            fn rows(&self) -> Vec<Vec<String>> {
                vec![vec!["1".into(), "2".into()]]
            }
            fn csv_stem(&self) -> &'static str {
                "demo"
            }
        }
        let dir = std::env::temp_dir().join("ams_exp_report_trait_test");
        let _ = std::fs::remove_dir_all(&dir);
        Demo.report(&dir, "t");
        let text = std::fs::read_to_string(dir.join("demo_t.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("ams_exp_csv_test.csv");
        write_csv(&dir, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(text, "a,b\n1,\"x,y\"\n");
        let _ = std::fs::remove_file(dir);
    }
}
