//! Regenerates the paper's Table 1 (quantization baselines) on the
//! SynthImageNet + ResNet-mini substrate.

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::table1,
        &[
            "Paper (ResNet-50/ImageNet): FP32 0.778, 8b/8b 0.781, 6b/6b 0.757, 6b/4b 0.606.",
            "Expected shape: 8b ~= FP32; 6b slightly below; 6b/4b clearly degraded.",
        ],
    );
}
