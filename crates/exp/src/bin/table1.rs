//! Regenerates the paper's Table 1 (quantization baselines) on the
//! SynthImageNet + ResNet-mini substrate.

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let t1 = exp.table1();
    t1.report(exp.results_dir(), &exp.scale().name);
    println!("\nPaper (ResNet-50/ImageNet): FP32 0.778, 8b/8b 0.781, 6b/6b 0.757, 6b/4b 0.606.");
    println!("Expected shape: 8b ~= FP32; 6b slightly below; 6b/4b clearly degraded.");
    cli.write_metrics();
}
