//! Section 4 ablations: per-VMAC simulation vs the lumped model, delta-
//! sigma error recycling, ADC reference scaling, multiplication
//! partitioning, and the last-layer training-injection rule.

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let ab = exp.ablations();
    ab.report(exp.results_dir(), &exp.scale().name);
    cli.write_metrics();
}
