//! Section 4 ablations: per-VMAC simulation vs the lumped model, delta-
//! sigma error recycling, ADC reference scaling, multiplication
//! partitioning, and the last-layer training-injection rule.

use ams_exp::{Experiments, Report, Scale};

fn main() {
    let (scale, results, ctx) = Scale::from_args();
    let exp = Experiments::new(scale, &results).with_ctx(ctx);
    let ab = exp.ablations();
    ab.report(exp.results_dir(), &exp.scale().name);
}
