//! Section 4 ablations: per-VMAC simulation vs the lumped model, delta-
//! sigma error recycling, ADC reference scaling, multiplication
//! partitioning, and the last-layer training-injection rule.

use ams_exp::{Experiments, Scale};

fn main() {
    let (scale, results) = Scale::from_args();
    let exp = Experiments::new(scale, &results);
    let ab = exp.ablations();
    ab.report(exp.results_dir(), &exp.scale().name);
}
