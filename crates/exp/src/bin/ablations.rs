//! Section 4 ablations: per-VMAC simulation vs the lumped model, delta-
//! sigma error recycling, ADC reference scaling, multiplication
//! partitioning, and the last-layer training-injection rule.

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(Experiments::ablations, &[]);
}
