//! Regenerates the paper's Table 2 (selective freezing during AMS
//! retraining): freezing batch norm (and FC) destroys the accuracy
//! recovery; freezing convolutions does not.

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::table2,
        &[
            "Paper (ENOB 10, ResNet-50): None 0.0353, Conv 0.0341, BN 0.0886, FC 0.0774, BN+FC 0.120.",
            "Expected shape: Conv ~= None; BN / FC / BN+FC markedly worse.",
        ],
    );
}
