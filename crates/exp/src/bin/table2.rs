//! Regenerates the paper's Table 2 (selective freezing during AMS
//! retraining): freezing batch norm (and FC) destroys the accuracy
//! recovery; freezing convolutions does not.

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let t2 = exp.table2();
    t2.report(exp.results_dir(), &exp.scale().name);
    println!("\nPaper (ENOB 10, ResNet-50): None 0.0353, Conv 0.0341, BN 0.0886, FC 0.0774, BN+FC 0.120.");
    println!("Expected shape: Conv ~= None; BN / FC / BN+FC markedly worse.");
    cli.write_metrics();
}
