//! Regenerates the paper's Figure 7 (Murmann ADC survey with the Schreier
//! FOM hull) on a synthetic survey — the model (Eq. 3) is exact; the
//! survey points are synthesized above it (see DESIGN.md).

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::fig7,
        &[
            "Model: E_ADC = 0.3 pJ for ENOB <= 10.5, then 10^(0.1(6.02*ENOB - 68.25)) pJ",
            "(the 187 dB Schreier-FOM line; energy quadruples per extra bit).",
        ],
    );
}
