//! Regenerates the paper's Figure 7 (Murmann ADC survey with the Schreier
//! FOM hull) on a synthetic survey — the model (Eq. 3) is exact; the
//! survey points are synthesized above it (see DESIGN.md).

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let f7 = exp.fig7();
    f7.report(exp.results_dir(), &exp.scale().name);
    println!("\nModel: E_ADC = 0.3 pJ for ENOB <= 10.5, then 10^(0.1(6.02*ENOB - 68.25)) pJ");
    println!("(the 187 dB Schreier-FOM line; energy quadruples per extra bit).");
    cli.write_metrics();
}
