//! Regenerates the paper's Figure 4 (loss vs ENOB re: the 8b quantized
//! network; eval-only vs retrained-with-error).

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::fig4,
        &[
            "Paper shape: loss falls with ENOB; retraining recovers up to ~half the loss at",
            "low ENOB and is slightly worse than eval-only at high ENOB. Our grids sit at lower",
            "ENOB because ResNet-mini layers have much smaller N_tot (see DESIGN.md).",
        ],
    );
}
