//! Regenerates the paper's Figure 4 (loss vs ENOB re: the 8b quantized
//! network; eval-only vs retrained-with-error).

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let f4 = exp.fig4();
    f4.report(exp.results_dir(), &exp.scale().name);
    println!("\nPaper shape: loss falls with ENOB; retraining recovers up to ~half the loss at");
    println!("low ENOB and is slightly worse than eval-only at high ENOB. Our grids sit at lower");
    println!("ENOB because ResNet-mini layers have much smaller N_tot (see DESIGN.md).");
    cli.write_metrics();
}
