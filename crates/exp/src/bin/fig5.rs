//! Regenerates the paper's Figure 5 (loss vs ENOB re: the 6b quantized
//! network; AMS error at evaluation only).

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::fig5,
        &[
            "Paper shape: monotone decrease; <1% loss beyond a cutoff ENOB, within one sample",
            "standard deviation of the 6b baseline at the highest ENOBs.",
        ],
    );
}
