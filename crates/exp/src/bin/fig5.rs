//! Regenerates the paper's Figure 5 (loss vs ENOB re: the 6b quantized
//! network; AMS error at evaluation only).

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let f5 = exp.fig5();
    f5.report(exp.results_dir(), &exp.scale().name);
    println!("\nPaper shape: monotone decrease; <1% loss beyond a cutoff ENOB, within one sample");
    println!("standard deviation of the 6b baseline at the highest ENOBs.");
    cli.write_metrics();
}
