//! Regenerates the paper's Figure 8: the (ENOB, N_mult) design space with
//! accuracy-loss and energy-per-MAC level curves, mapped from the measured
//! N_mult = 8 retrained curve exactly as the paper does.

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::fig8,
        &[
            "Paper headline (ResNet-50): <0.4% loss needs >= ~313 fJ/MAC; <1% needs ~78 fJ/MAC;",
            "accuracy-loss and energy level curves are parallel in the thermal-noise region.",
        ],
    );
}
