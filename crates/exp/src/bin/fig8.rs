//! Regenerates the paper's Figure 8: the (ENOB, N_mult) design space with
//! accuracy-loss and energy-per-MAC level curves, mapped from the measured
//! N_mult = 8 retrained curve exactly as the paper does.

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let f8 = exp.fig8();
    f8.report(exp.results_dir(), &exp.scale().name);
    println!(
        "\nPaper headline (ResNet-50): <0.4% loss needs >= ~313 fJ/MAC; <1% needs ~78 fJ/MAC;"
    );
    println!("accuracy-loss and energy level curves are parallel in the thermal-noise region.");
    cli.write_metrics();
}
