//! Regenerates the paper's Figure 6 (activation means at conv outputs):
//! retraining with AMS error teaches batch norm to push activation means
//! away from zero, more so at higher noise.

use ams_exp::{run_bin, Experiments};

fn main() {
    run_bin(
        Experiments::fig6,
        &["Paper: means pushed away from zero in 43 of 53 conv layers, more at higher noise."],
    );
}
