//! Regenerates the paper's Figure 6 (activation means at conv outputs):
//! retraining with AMS error teaches batch norm to push activation means
//! away from zero, more so at higher noise.

use ams_exp::{Cli, Experiments, Report};

fn main() {
    let cli = Cli::from_args();
    let exp = Experiments::new(cli.scale.clone(), &cli.results)
        .with_ctx(cli.ctx())
        .with_resume(cli.resume);
    let f6 = exp.fig6();
    f6.report(exp.results_dir(), &exp.scale().name);
    println!("\nPaper: means pushed away from zero in 43 of 53 conv layers, more at higher noise.");
    cli.write_metrics();
}
