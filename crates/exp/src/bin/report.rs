//! Runs every experiment (sharing the checkpoint cache) and writes a
//! combined markdown summary to `<results>/report_<scale>.md`, alongside
//! the per-artifact CSVs.
//!
//! ```text
//! cargo run --release -p ams-exp --bin report -- --scale quick
//! ```

use std::fmt::Write as _;

use ams_exp::{run_bin_custom, Report};

fn main() {
    run_bin_custom(|exp, _cli| {
        let dir = exp.results_dir().to_path_buf();
        let scale_name = exp.report_scale_name();

        let mut md = String::new();
        let _ = writeln!(md, "# ams-dnn experiment report (scale: {scale_name})\n");
        let _ = writeln!(
        md,
        "Substrate: ResNet-mini on SynthImageNet (see DESIGN.md). Paper: Rekhi et al., DAC 2019.\n"
    );

        // Table 1.
        let t1 = exp.table1();
        t1.report(&dir, &scale_name);
        let _ = writeln!(md, "## Table 1 — quantization baselines\n");
        let _ = writeln!(md, "| Quantization | Top-1 | ± |");
        let _ = writeln!(md, "|---|---|---|");
        for row in &t1.rows {
            let _ = writeln!(
                md,
                "| {} | {:.4} | {:.1e} |",
                row.label, row.accuracy.mean, row.accuracy.std
            );
        }

        // Figures 4 & 5.
        let f4 = exp.fig4();
        f4.report(&dir, &scale_name);
        let _ = writeln!(
            md,
            "\n## Figure 4 — loss vs ENOB (re: 8b, baseline {:.4})\n",
            f4.baseline.mean
        );
        let _ = writeln!(md, "| ENOB | eval-only | retrained |");
        let _ = writeln!(md, "|---|---|---|");
        for row in &f4.rows {
            let _ = writeln!(
                md,
                "| {:.1} | {:+.4} | {:+.4} |",
                row.enob, row.eval_only.mean, row.retrained.mean
            );
        }
        let f5 = exp.fig5();
        f5.report(&dir, &scale_name);
        let _ = writeln!(
            md,
            "\n## Figure 5 — loss vs ENOB (re: 6b, baseline {:.4})\n",
            f5.baseline.mean
        );
        let _ = writeln!(md, "| ENOB | eval-only |");
        let _ = writeln!(md, "|---|---|");
        for (enob, loss) in &f5.rows {
            let _ = writeln!(md, "| {enob:.1} | {:+.4} |", loss.mean);
        }

        // Table 2.
        let t2 = exp.table2();
        t2.report(&dir, &scale_name);
        let _ = writeln!(
            md,
            "\n## Table 2 — selective freezing (ENOB {:.1})\n",
            t2.enob
        );
        let _ = writeln!(md, "| Frozen | Loss re: 8b | ± |");
        let _ = writeln!(md, "|---|---|---|");
        for row in &t2.rows {
            let _ = writeln!(
                md,
                "| {} | {:+.4} | {:.1e} |",
                row.policy, row.loss.mean, row.loss.std
            );
        }
        let _ = writeln!(
            md,
            "| *(no retraining)* | {:+.4} | {:.1e} |",
            t2.eval_only_loss.mean, t2.eval_only_loss.std
        );

        // Figure 6.
        let f6 = exp.fig6();
        f6.report(&dir, &scale_name);
        let _ = writeln!(md, "\n## Figure 6 — activation means\n");
        if let Some(layer) = &f6.representative_layer {
            let idx = f6
                .layer_names
                .iter()
                .position(|n| n == layer)
                .expect("layer listed");
            let _ = writeln!(md, "Representative layer `{layer}`:\n");
            let _ = writeln!(md, "| variant | mean |");
            let _ = writeln!(md, "|---|---|");
            for row in &f6.rows {
                let _ = writeln!(md, "| {} | {:+.4} |", row.label, row.means[idx]);
            }
        }

        // Figure 7.
        let f7 = exp.fig7();
        f7.report(&dir, &scale_name);
        let _ = writeln!(
        md,
        "\n## Figure 7 — ADC survey\n\n{} synthetic points, {} below the Eq. 3 bound (must be 0).",
        f7.points.len(),
        f7.violations
    );

        // Figure 8.
        let f8 = exp.fig8();
        f8.report(&dir, &scale_name);
        let _ = writeln!(md, "\n## Figure 8 — energy-accuracy design space\n");
        for (target, energy) in &f8.min_energy {
            let _ = writeln!(
                md,
                "* measured grid: < {:.1}% loss ⇒ {}",
                target * 100.0,
                energy.map_or("no design qualifies".to_string(), |fj| format!(
                    "≥ ~{fj:.0} fJ/MAC"
                ))
            );
        }
        for (target, energy) in &f8.paper_min_energy {
            let _ = writeln!(
                md,
                "* paper-curve validation: < {:.1}% loss ⇒ {}",
                target * 100.0,
                energy.map_or("no design qualifies".to_string(), |fj| format!(
                    "≥ ~{fj:.0} fJ/MAC"
                ))
            );
        }

        // Ablations.
        let ab = exp.ablations();
        ab.report(&dir, &scale_name);
        let _ = writeln!(md, "\n## §4 ablations\n");
        let _ = writeln!(
            md,
            "* lumped vs per-VMAC RMS ratios: {}",
            ab.lumped_vs_sim
                .iter()
                .map(|(e, n, m, s)| format!("({e}b, N_tot {n}): {:.3}", s / m))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            md,
            "* ΔΣ recycling: {:.5} → {:.5} RMS ({:.0}×)",
            ab.delta_sigma.0,
            ab.delta_sigma.1,
            ab.delta_sigma.0 / ab.delta_sigma.1
        );
        for (level, lumped, pv) in &ab.per_vmac_network {
            let _ = writeln!(
            md,
            "* network-level error realization at ENOB {level:.1}: lumped {:.4} vs per-VMAC {pv:.4}",
            lumped.mean
        );
        }
        let _ = writeln!(
            md,
            "* mismatch sweep: {}",
            ab.mismatch
                .iter()
                .map(|(s, a)| format!("{:.0}% → {a:.4}", s * 100.0))
                .collect::<Vec<_>>()
                .join(", ")
        );

        let path = dir.join(format!("report_{scale_name}.md"));
        if let Err(e) = std::fs::write(&path, md) {
            eprintln!("failed to write {}: {e}", path.display());
        } else {
            println!("\nwrote {}", path.display());
        }
    });
}
