//! Usage-error behavior of the experiment binaries: bad flags must exit
//! with code 2 (not a panic's 101) and print the shared flag synopsis.

use std::process::Command;

fn run_table1(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(args)
        .output()
        .expect("spawn table1")
}

#[test]
fn unknown_flag_exits_2_with_usage() {
    let out = run_table1(&["--bogus"]);
    assert_eq!(out.status.code(), Some(ams_exp::USAGE_EXIT_CODE));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: unknown argument \"--bogus\""),
        "stderr was: {stderr}"
    );
    assert!(stderr.contains("usage: "), "stderr was: {stderr}");
    assert!(
        stderr.contains("--scale quick|full|test"),
        "stderr was: {stderr}"
    );
}

#[test]
fn missing_flag_value_exits_2_with_usage() {
    let out = run_table1(&["--scale"]);
    assert_eq!(out.status.code(), Some(ams_exp::USAGE_EXIT_CODE));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: --scale needs a value"),
        "stderr was: {stderr}"
    );
    assert!(stderr.contains("usage: "), "stderr was: {stderr}");
}
