//! Property tests for the sweep journal's crash-recovery contract
//! (DESIGN.md §9): damage the on-disk file at an *arbitrary* byte offset
//! — truncation (a torn write) or a single flipped bit (media corruption)
//! — and [`Journal::open`] must either recover an exact prefix of the
//! original records or fail loudly. It must never silently drop a
//! complete earlier point, duplicate one, or hand back an altered record.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ams_exp::sweep::{Journal, PointRecord, PointStatus};
use proptest::prelude::*;
use serde::Value;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh path per generated case, so concurrent cases never collide.
fn case_path(stem: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ams_journal_props_{}_{stem}_{n}.jsonl",
        std::process::id()
    ))
}

/// Builds one deterministic record per value: even values succeed (with a
/// float payload exercising the canonical-JSON CRC), odd ones are
/// quarantined.
fn records_from(vals: &[u64]) -> Vec<PointRecord> {
    vals.iter()
        .enumerate()
        .map(|(i, &v)| {
            let done = v % 2 == 0;
            PointRecord {
                sweep: "props".to_string(),
                point: format!("p{i}"),
                status: if done {
                    PointStatus::Done
                } else {
                    PointStatus::Failed
                },
                attempts: 1 + (v % 3) as u32,
                elapsed_ms: v,
                error: (!done).then(|| format!("boom {v}")),
                payload: if done {
                    Value::F64(v as f64 * 0.37 + 0.1)
                } else {
                    Value::Null
                },
            }
        })
        .collect()
}

/// Writes `recs` through the real append path and returns the file bytes.
fn write_journal(path: &PathBuf, recs: &[PointRecord]) -> Vec<u8> {
    let mut journal = Journal::fresh(path).expect("fresh journal");
    for rec in recs {
        journal.append(rec.clone()).expect("append");
    }
    std::fs::read(path).expect("journal bytes")
}

/// Field-by-field equality via the canonical JSON encoding (the same
/// encoding the CRC protects).
fn canon(rec: &PointRecord) -> String {
    serde_json::to_string(rec).expect("record serializes")
}

/// Asserts `got` is an exact prefix of `want`.
fn assert_prefix(got: &[PointRecord], want: &[PointRecord]) -> Result<(), TestCaseError> {
    prop_assert!(
        got.len() <= want.len(),
        "recovered {} records from a journal of {} — duplication",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(canon(g), canon(w), "record {} altered", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncation at any offset — the torn-write case — is never fatal:
    /// every fully terminated line is recovered verbatim and only the
    /// torn tail is dropped.
    #[test]
    fn truncation_recovers_exact_prefix(vals in proptest::collection::vec(0u64..100, 1..6),
                                        cut in 0usize..100_000) {
        let path = case_path("trunc");
        let recs = records_from(&vals);
        let bytes = write_journal(&path, &recs);
        let cut = cut % bytes.len();
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let journal = match Journal::open(&path) {
            Ok(j) => j,
            Err(e) => {
                let _ = std::fs::remove_file(&path);
                prop_assert!(false, "truncation at byte {} must not be fatal: {}", cut, e);
                unreachable!()
            }
        };
        // Every line the cut left fully terminated is a complete point
        // and must come back.
        let terminated = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        let got = journal.records().len();
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            got >= terminated,
            "cut at {}: {} complete lines survived but only {} records recovered",
            cut, terminated, got
        );
        assert_prefix(journal.records(), &recs)?;
    }

    /// A single flipped bit anywhere in the file either trips the CRC (a
    /// loud, actionable error) or — when it lands in the final line —
    /// demotes that line to a torn tail. A recovered journal is always a
    /// *strict*, unaltered prefix: the flip can never pass as data.
    #[test]
    fn bitflip_is_loud_or_drops_only_the_tail(vals in proptest::collection::vec(0u64..100, 1..6),
                                              pos in 0usize..100_000,
                                              bit in 0u32..8) {
        let path = case_path("flip");
        let recs = records_from(&vals);
        let mut bytes = write_journal(&path, &recs);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite");

        let opened = Journal::open(&path);
        let _ = std::fs::remove_file(&path);
        if let Ok(journal) = opened {
            prop_assert!(
                journal.records().len() < recs.len(),
                "flipped bit {} of byte {} went unnoticed: all {} records verified",
                bit, pos, recs.len()
            );
            assert_prefix(journal.records(), &recs)?;
        }
        // Err(_) is the other acceptable outcome: corruption before the
        // final line must refuse to resume, with remediation advice.
    }
}
