//! Golden-file regression tests for the [`Report`] CSV output.
//!
//! The table1 and fig4 pipelines are run at the `test` scale on a serial
//! context (fixed seeds, one deterministic reduction order) and their
//! main CSVs are compared byte-for-byte against committed goldens in
//! `tests/golden/`. Any change to training, evaluation, the error model
//! or the CSV formatting shows up here as a diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ams-exp --test golden_reports
//! ```

use std::path::{Path, PathBuf};

use ams_exp::{Experiments, Report, Scale};
use ams_tensor::ExecCtx;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn table1_and_fig4_csvs_match_goldens() {
    let work = std::env::temp_dir().join("ams_exp_golden_reports_test");
    let _ = std::fs::remove_dir_all(&work);
    let exp = Experiments::new(Scale::test(), work.to_str().unwrap()).with_ctx(ExecCtx::serial());

    // table1 first: it warms the checkpoint cache fig4 reuses.
    let t1 = exp.table1();
    let f4 = exp.fig4();
    t1.report(exp.results_dir(), "test");
    f4.report(exp.results_dir(), "test");

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for stem in ["table1", "fig4"] {
        let name = format!("{stem}_test.csv");
        let produced = std::fs::read_to_string(work.join(&name))
            .unwrap_or_else(|e| panic!("{stem} did not write {name}: {e}"));
        let golden_path = golden_dir().join(&name);
        if update {
            std::fs::create_dir_all(golden_dir()).unwrap();
            std::fs::write(&golden_path, &produced).unwrap();
            eprintln!("updated golden {}", golden_path.display());
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}; generate it with UPDATE_GOLDEN=1",
                golden_path.display()
            )
        });
        assert_eq!(
            produced, golden,
            "{name} drifted from the committed golden; if the change is \
             intentional, regenerate with UPDATE_GOLDEN=1 and commit the diff"
        );
    }
    let _ = std::fs::remove_dir_all(work);
}
