//! The `AMS_THREADS` environment contract (CI's thread matrix) and the
//! parallel ≡ serial guarantee it relies on: pool width changes
//! wall-clock only, never results.

use ams_core::vmac::Vmac;
use ams_data::SynthConfig;
use ams_exp::eval_accuracy;
use ams_models::{HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_quant::QuantConfig;
use ams_tensor::ExecCtx;

/// All `AMS_THREADS` parses in one test — `set_var` is process-global
/// and the test harness runs sibling tests concurrently.
#[test]
fn from_env_reads_ams_threads() {
    std::env::set_var("AMS_THREADS", "3");
    assert_eq!(ExecCtx::from_env().threads(), 3);

    std::env::set_var("AMS_THREADS", " 8 ");
    assert_eq!(ExecCtx::from_env().threads(), 8, "whitespace is trimmed");

    // Unparseable or non-positive values fall back to auto, never panic.
    for bad in ["zero", "-2", "0", ""] {
        std::env::set_var("AMS_THREADS", bad);
        assert!(ExecCtx::from_env().threads() >= 1, "AMS_THREADS={bad:?}");
    }

    std::env::remove_var("AMS_THREADS");
    assert!(ExecCtx::from_env().threads() >= 1);
}

/// A noisy AMS evaluation — the workload CI's thread matrix sweeps — is
/// bit-identical at 1 and 8 threads: per-layer RNG streams are keyed by
/// layer, not by worker, so scheduling cannot reorder draws.
#[test]
fn ams_eval_is_bit_identical_across_thread_counts() {
    let quant = QuantConfig::w8a8();
    let hw = HardwareConfig::ams(quant, Vmac::new(quant.bw, quant.bx, 8, 5.0));
    let data = SynthConfig::tiny().generate();

    let run = |threads: usize| {
        let ctx = ExecCtx::with_threads(threads);
        let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &hw);
        eval_accuracy(&ctx, &mut net, &data.val, 16)
    };
    let serial = run(1);
    let threaded = run(8);
    assert_eq!(
        serial.to_bits(),
        threaded.to_bits(),
        "thread count must not change results ({serial} vs {threaded})"
    );
}
