//! End-to-end resume tests: a sweep whose journal survives a mid-run kill
//! must finish to byte-identical results under `--resume`, completed
//! points must be replayed (not recomputed), and a poisoned point must
//! stay quarantined across resumes while the rest of the sweep reports.

use std::path::PathBuf;

use ams_exp::sweep::{RetryPolicy, Sweep};
use ams_exp::{Experiments, Scale};
use ams_tensor::{ExecCtx, MetricsSink};

fn temp_dir(stem: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ams_resume_{stem}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn canon_rows(rows: &[ams_exp::Fig4Row]) -> Vec<String> {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("row serializes"))
        .collect()
}

/// The tentpole guarantee, in-process: run fig4 uninterrupted in one
/// directory; in another, run it, then truncate its journal to a single
/// point (exactly the file a kill after point 1 leaves behind, thanks to
/// atomic journal rewrites) and finish under resume. The resumed rows
/// must match the uninterrupted ones bit-for-bit, with the journaled
/// point replayed rather than recomputed.
#[test]
fn truncated_fig4_journal_resumes_to_identical_rows() {
    let dir_a = temp_dir("fig4_golden");
    let golden = Experiments::new(Scale::test(), &dir_a).fig4();

    let dir_b = temp_dir("fig4_killed");
    let first = Experiments::new(Scale::test(), &dir_b).fig4();
    assert_eq!(canon_rows(&first.rows), canon_rows(&golden.rows));

    // Keep only the first journal line — the state after a kill that
    // landed between the first and second point's appends.
    let journal_path = dir_b.join("fig4_journal_test.jsonl");
    let text = std::fs::read_to_string(&journal_path).expect("journal exists after a sweep");
    assert!(text.lines().count() >= 2, "test scale sweeps ≥ 2 points");
    let first_line = text.lines().next().expect("nonempty journal");
    std::fs::write(&journal_path, format!("{first_line}\n")).expect("truncate journal");

    let sink = MetricsSink::recording();
    let resumed = Experiments::new(Scale::test(), &dir_b)
        .with_ctx(ExecCtx::serial().with_metrics(sink.clone()))
        .with_resume(true)
        .fig4();
    assert_eq!(
        canon_rows(&resumed.rows),
        canon_rows(&golden.rows),
        "resumed sweep must be bit-identical to the uninterrupted run"
    );

    let report = sink.registry().expect("recording sink").report();
    assert_eq!(report.counter("sweep.resumed").unwrap().value, 1);
    assert_eq!(report.counter("sweep.points.skipped").unwrap().value, 1);
    // The other point recomputed — through the journal, on the books.
    assert_eq!(report.counter("sweep.points.completed").unwrap().value, 1);
    assert!(report.histogram("sweep.point_ms").is_some());
    assert!(report.gauge("sweep.journal.write_ms").is_some());

    let _ = std::fs::remove_dir_all(dir_a);
    let _ = std::fs::remove_dir_all(dir_b);
}

/// Without `--resume`, a leftover journal is cleared and every point
/// recomputes — a fresh run never silently trusts stale results.
#[test]
fn plain_run_clears_leftover_journal() {
    let dir = temp_dir("fresh");
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("fig5_journal_test.jsonl");
    std::fs::write(&journal_path, "garbage that would be fatal under resume\n").unwrap();

    let fig5 = Experiments::new(Scale::test(), &dir).fig5();
    assert_eq!(fig5.rows.len(), Scale::test().enob_grid_6b.len());
    let text = std::fs::read_to_string(&journal_path).expect("rewritten journal");
    assert!(!text.contains("garbage"), "stale journal must be cleared");

    let _ = std::fs::remove_dir_all(dir);
}

/// A point that keeps failing is quarantined — recorded `failed`, the
/// sweep continues — and stays skipped on resume even if it would now
/// succeed, until the user reruns without `--resume`.
#[test]
fn quarantined_point_stays_skipped_across_resume() {
    let dir = temp_dir("quarantine");
    let path = dir.join("q.jsonl");
    let sink = MetricsSink::recording();

    let sweep = Sweep::new(
        "q",
        &path,
        false,
        RetryPolicy {
            max_attempts: 2,
            timeout: None,
        },
        sink.clone(),
    )
    .expect("fresh sweep");
    let good: Option<f64> = sweep.run_point("good", || 7.0);
    assert_eq!(good, Some(7.0));
    let bad: Option<f64> = sweep.run_point("bad", || panic!("poisoned point"));
    assert!(bad.is_none(), "exhausted retries quarantine the point");

    // Resume: the quarantined point must not run again...
    let sweep =
        Sweep::new("q", &path, true, RetryPolicy::default(), sink.clone()).expect("resumed sweep");
    let bad: Option<f64> = sweep.run_point("bad", || 9.0);
    assert!(bad.is_none(), "quarantine must survive resume");
    // ...and the good point replays from the journal, not the closure.
    let good: Option<f64> = sweep.run_point("good", || panic!("must not recompute"));
    assert_eq!(good, Some(7.0));

    let report = sink.registry().expect("recording sink").report();
    assert_eq!(report.counter("sweep.points.quarantined").unwrap().value, 1);
    assert_eq!(report.counter("sweep.points.retried").unwrap().value, 1);
    assert!(report.counter("sweep.points.skipped").unwrap().value >= 2);

    // A plain (non-resume) open clears the quarantine: the point runs.
    let sweep = Sweep::new("q", &path, false, RetryPolicy::default(), sink).expect("fresh again");
    let bad: Option<f64> = sweep.run_point("bad", || 9.0);
    assert_eq!(bad, Some(9.0));

    let _ = std::fs::remove_dir_all(dir);
}
