//! End-to-end smoke test of the observability path: a recording
//! [`MetricsSink`] threaded through an evaluation pass of ResNet-mini on
//! AMS hardware must yield per-layer noise gauges whose statistics match
//! the Eq. 2 model σ, per-layer forward timers, and a JSON report that
//! parses back identically (what `--metrics <path>.json` writes).

use ams_core::vmac::Vmac;
use ams_data::SynthConfig;
use ams_exp::{eval_accuracy, write_metrics_report};
use ams_models::{HardwareConfig, ResNetMini, ResNetMiniConfig};
use ams_quant::QuantConfig;
use ams_tensor::obs::MetricsReport;
use ams_tensor::{ExecCtx, MetricsSink};

#[test]
fn metrics_report_has_per_layer_noise_matching_eq2() {
    let enob = 4.0;
    let quant = QuantConfig::w8a8();
    let vmac = Vmac::new(quant.bw, quant.bx, 8, enob);
    let hw = HardwareConfig::ams(quant, vmac);
    let mut net = ResNetMini::new(&ResNetMiniConfig::tiny(), &hw);

    let sink = MetricsSink::recording();
    let ctx = ExecCtx::serial().with_metrics(sink.clone());
    let data = SynthConfig::tiny().generate();
    eval_accuracy(&ctx, &mut net, &data.val, 16);

    let report = sink.registry().expect("recording sink").report();

    // Every injecting layer records a `noise.<layer>.<kind>.enob<e>`
    // gauge whose sample variance matches the Eq. 2 model (same
    // chi-square-derived band as crates/core/tests/error_stats.rs, scaled
    // to each layer's sample count; the seed is fixed, so this is
    // deterministic). The default error model is the lumped Gaussian.
    let budget = net.error_budget();
    assert!(!budget.is_empty());
    for (name, _n_tot, sigma) in &budget {
        let sigma = f64::from(sigma.expect("AMS hardware sets σ on every layer"));
        let key = format!("noise.{name}.lumped.enob{enob:.1}");
        let g = report
            .gauge(&key)
            .unwrap_or_else(|| panic!("missing noise gauge {key}"));
        assert!(g.count > 16, "{key} recorded only {} samples", g.count);
        let ratio = (g.std * g.std) / (sigma * sigma);
        let tol = 5.0 * (2.0 / (g.count as f64 - 1.0)).sqrt();
        assert!(
            (ratio - 1.0).abs() < tol,
            "{key}: variance ratio {ratio:.4} outside 1 ± {tol:.4} (std {}, model σ {sigma})",
            g.std
        );
        assert!(
            g.mean.abs() < 5.0 * sigma / (g.count as f64).sqrt(),
            "{key}: injected noise mean {} is biased",
            g.mean
        );
    }

    // Forward timers exist for every instrumented layer, activation
    // gauges for every convolution, and the eval pass itself is timed.
    for (name, _, _) in &budget {
        let timer = format!("layer.{name}.forward");
        assert!(report.timer(&timer).is_some(), "missing timer {timer}");
        if name != "fc" {
            let act = format!("act.{name}");
            assert!(report.gauge(&act).is_some(), "missing gauge {act}");
        }
    }
    assert!(report.timer("eval.pass").is_some());
    assert!(report.counter("exec.for_each_chunk.serial").is_some());

    // The JSON report (the `--metrics` output format) round-trips.
    let dir = std::env::temp_dir().join("ams_exp_metrics_smoke_test");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("metrics.json");
    write_metrics_report(&path, &report).unwrap();
    let parsed: MetricsReport =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(parsed, report);
    let _ = std::fs::remove_dir_all(dir);
}
