//! Pluggable per-layer error models.
//!
//! The paper's headline abstraction is "error-free dot product plus
//! additive error" (Eq. 1/2), but §4 notes that modeling the multipliers
//! and the ADC separately — or simulating each VMAC conversion — enables
//! finer-grained analysis. This module unifies those alternatives behind
//! one [`ErrorModel`] trait so the network layers, the trainer, the sweep
//! engine, and the CLI all select an error model through a single
//! serializable [`ErrorModelConfig`] instead of being hardwired to the
//! lumped Gaussian path.
//!
//! # RNG / resume contract
//!
//! Every implementation — including the no-op [`IdealModel`] — owns
//! exactly **one** [`GaussianInjector`] stream, so [`ErrorModel::rng_cursors`]
//! always returns one cursor per layer. That keeps the checkpoint format
//! of DESIGN.md §9 (a flat `Vec<RngState>`, one entry per injecting layer)
//! valid for every model, and it keeps [`ErrorModelConfig::Lumped`]
//! bit-identical to the pre-trait `GaussianInjector` wiring: same seed,
//! same stream, same draw order.
//!
//! # Choosing an implementation
//!
//! * [`ErrorModelConfig::Lumped`] — the paper's main method (default).
//!   One Gaussian per output activation at the Eq. 2 σ. Cheapest; use for
//!   training and for every headline figure.
//! * [`ErrorModelConfig::Ideal`] — injects nothing. Use to isolate
//!   quantization effects from AMS error on otherwise-identical configs.
//! * [`ErrorModelConfig::Composite`] — multiplier RMS error and ADC
//!   quantization budgeted separately (paper §4), lumped into a single
//!   Gaussian at the combined σ. Use to study multiplier/ADC trade-offs.
//! * [`ErrorModelConfig::PerVmac`] — chunked per-conversion simulation at
//!   evaluation time (training falls back to the lumped Gaussian so the
//!   backward pass stays differentiable). Use to validate the Gaussian
//!   lumping claim at network scale, or to run ΔΣ / reference-scaled /
//!   partitioned converters end to end.

use serde::{Deserialize, Serialize};
use std::fmt;

use ams_tensor::obs::WelfordState;
use ams_tensor::{rng, Tensor};

use crate::composite::CompositeError;
use crate::inject::{checked_sigma_f32, layer_error_sigma, GaussianInjector};
use crate::mismatch::MismatchModel;
use crate::partition::PartitionedVmac;
use crate::vmac::Vmac;
use crate::vmac_sim::{AdcBehavior, VmacSimulator};

/// Which error-model implementation a configuration selects.
///
/// Displayed (and parsed) as the CLI spellings `ideal`, `lumped`,
/// `composite`, `per-vmac`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorModelKind {
    /// No injected error.
    Ideal,
    /// Single lumped Gaussian per output activation (paper Eq. 1/2).
    Lumped,
    /// Separate multiplier + ADC budgets folded to one Gaussian (§4).
    Composite,
    /// Chunked per-conversion ADC simulation at eval time (§4).
    PerVmac,
}

impl fmt::Display for ErrorModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorModelKind::Ideal => "ideal",
            ErrorModelKind::Lumped => "lumped",
            ErrorModelKind::Composite => "composite",
            ErrorModelKind::PerVmac => "per-vmac",
        })
    }
}

impl std::str::FromStr for ErrorModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ideal" => Ok(ErrorModelKind::Ideal),
            "lumped" => Ok(ErrorModelKind::Lumped),
            "composite" => Ok(ErrorModelKind::Composite),
            "per-vmac" => Ok(ErrorModelKind::PerVmac),
            other => Err(format!(
                "unknown error model {other:?}; expected lumped|composite|per-vmac|ideal"
            )),
        }
    }
}

/// Multiplication-partitioning parameters for the per-VMAC model: split
/// each multiply into `n_w × n_x` slices, each digitized at `slice_enob`
/// bits (paper §4, see [`PartitionedVmac`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Weight-operand slice count.
    pub n_w: u32,
    /// Activation-operand slice count.
    pub n_x: u32,
    /// Per-slice conversion resolution in bits.
    pub slice_enob: f64,
}

/// Serializable selection of an error model plus its parameters.
///
/// This is what travels through `HardwareConfig`, the CLI, and training
/// checkpoints; [`ErrorModelConfig::build`] turns it into a live
/// [`ErrorModel`] for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ErrorModelConfig {
    /// No injected error.
    Ideal,
    /// The paper's lumped Gaussian (Eq. 1/2). The default, bit-identical
    /// to the pre-trait injection path.
    #[default]
    Lumped,
    /// Multiplier + ADC split: the layer's `Vmac` describes the ADC and
    /// `multiplier_sigma` the per-multiplier RMS error, combined per
    /// [`CompositeError`] into one Gaussian.
    Composite {
        /// RMS error of one analog multiplier, in product full-scale units.
        multiplier_sigma: f64,
    },
    /// Chunked per-conversion simulation at eval time, with an optional
    /// operand partition folded into the conversion resolution.
    PerVmac {
        /// How each partial-sum conversion behaves.
        behavior: AdcBehavior,
        /// Optional multiplication partitioning (paper §4).
        partition: Option<PartitionSpec>,
    },
}

impl ErrorModelConfig {
    /// The plain per-VMAC configuration (quantizing ADC, no partition) —
    /// what `--error-model per-vmac` selects by default.
    pub fn per_vmac() -> Self {
        ErrorModelConfig::PerVmac {
            behavior: AdcBehavior::Quantizing,
            partition: None,
        }
    }

    /// Which implementation this configuration selects.
    pub fn kind(&self) -> ErrorModelKind {
        match self {
            ErrorModelConfig::Ideal => ErrorModelKind::Ideal,
            ErrorModelConfig::Lumped => ErrorModelKind::Lumped,
            ErrorModelConfig::Composite { .. } => ErrorModelKind::Composite,
            ErrorModelConfig::PerVmac { .. } => ErrorModelKind::PerVmac,
        }
    }

    /// Builds the live model for one layer.
    ///
    /// `vmac` is the layer's converter geometry (`None` on hardware
    /// without an AMS error budget — the model then injects nothing),
    /// `mismatch` the optional static device-mismatch overlay, and
    /// `stream_seed` the layer's noise-stream seed (the same value the
    /// pre-trait code handed to `GaussianInjector::new`).
    ///
    /// # Panics
    ///
    /// Panics if a [`PartitionSpec`] does not divide the operand bits
    /// evenly (see [`PartitionedVmac::new`]) or composite parameters are
    /// invalid (see [`CompositeError::new`]).
    pub fn build(
        &self,
        vmac: Option<Vmac>,
        mismatch: Option<MismatchModel>,
        stream_seed: u64,
    ) -> Box<dyn ErrorModel> {
        let injector = GaussianInjector::new(stream_seed);
        match *self {
            ErrorModelConfig::Ideal => Box::new(IdealModel { mismatch, injector }),
            ErrorModelConfig::Lumped => Box::new(LumpedGaussian {
                vmac,
                mismatch,
                injector,
            }),
            ErrorModelConfig::Composite { multiplier_sigma } => Box::new(CompositeModel {
                composite: vmac.map(|v| CompositeError::new(v, multiplier_sigma)),
                mismatch,
                injector,
            }),
            ErrorModelConfig::PerVmac {
                behavior,
                partition,
            } => Box::new(PerVmacSim {
                vmac: vmac.map(|v| match partition {
                    Some(spec) => partition_equivalent(v, spec),
                    None => v,
                }),
                behavior,
                mismatch,
                injector,
            }),
        }
    }
}

/// Folds a partitioned multiply into an equivalent unpartitioned `Vmac`
/// whose single-conversion error variance matches the partition's summed
/// slice errors, so the chunked simulator can run it directly.
fn partition_equivalent(vmac: Vmac, spec: PartitionSpec) -> Vmac {
    let pv = PartitionedVmac::new(vmac, spec.n_w, spec.n_x, spec.slice_enob)
        .unwrap_or_else(|e| panic!("invalid partition for {vmac}: {e}"));
    // One output chunk (n_tot = n_mult) isolates a single conversion's
    // variance; invert LSB²/12 with LSB = N_mult·2^(1−ENOB) for the ENOB
    // a monolithic converter would need to match it.
    let var_conv = pv.total_error_variance(vmac.n_mult);
    let n = vmac.n_mult as f64;
    vmac.with_enob(1.0 - 0.5 * (12.0 * var_conv / (n * n)).log2())
}

/// A per-layer hardware error model: given a layer's output activations
/// and its `n_tot` (multiplies per output activation), produce the
/// additive error — plus the σ hint for metrics and the RNG cursors for
/// bit-identical training resume (DESIGN.md §9).
///
/// Implementations are built per layer by [`ErrorModelConfig::build`];
/// layer identity enters through the `stream_seed` at build time and the
/// `layer_index` handed to [`ErrorModel::realize_weights`].
pub trait ErrorModel: fmt::Debug + Send {
    /// Which configuration family built this model.
    fn kind(&self) -> ErrorModelKind;

    /// The lumped-equivalent σ of the injected error for a layer with
    /// `n_tot` multiplies per output activation (Eq. 2), used for metrics
    /// and error budgets. `None` when the model injects nothing (no VMAC
    /// on this hardware, or [`ErrorModelKind::Ideal`]). For per-VMAC
    /// simulation this is the Eq. 2 prediction the simulation is expected
    /// to match, not a measurement.
    fn sigma_hint(&self, n_tot: usize) -> Option<f32>;

    /// Adds this model's error to `acts` in place, advancing the RNG
    /// cursor. A model without an error budget is a no-op.
    fn inject(&mut self, acts: &mut Tensor, n_tot: usize);

    /// Like [`ErrorModel::inject`], but returns Welford statistics of the
    /// injected samples for metrics. Must draw the **identical RNG
    /// stream** as `inject` so tracing never perturbs results.
    fn inject_traced(&mut self, acts: &mut Tensor, n_tot: usize) -> WelfordState;

    /// [`ErrorModel::inject`] over a raw activation slice: identical draws
    /// in identical order, so injecting a batched tensor one per-image
    /// slice at a time (reseeding between slices) reproduces a sequence of
    /// batch-1 `inject` calls bit-exactly. The serving path uses this to
    /// give every coalesced request its own noise stream.
    fn inject_slice(&mut self, acts: &mut [f32], n_tot: usize);

    /// Applies static per-chip weight perturbations (device mismatch),
    /// returning the perturbed copy, or `None` when the model carries no
    /// mismatch overlay. Deterministic per `(chip_seed, layer_index)` —
    /// never touches the RNG cursor.
    fn realize_weights(&self, weights: &Tensor, layer_index: u64) -> Option<Tensor>;

    /// Whether [`ErrorModel::realize_weights`] would return a perturbed
    /// copy — i.e. the model carries a device-mismatch overlay. Layers use
    /// this to gate the integer GEMM fast path, which works on pre-coded
    /// weights and cannot apply an f32 perturbation; models that perturb
    /// keep the f32 kernels.
    fn perturbs_weights(&self) -> bool {
        false
    }

    /// The chunked conversion simulator for models that replace the
    /// matmul inner loop at eval time ([`ErrorModelKind::PerVmac`]);
    /// `None` for purely additive models.
    fn operand_sim(&self) -> Option<VmacSimulator> {
        None
    }

    /// Repositions the noise stream at a fresh seed (one per validation
    /// pass — see `reseed_noise` on the networks).
    fn reseed(&mut self, stream_seed: u64);

    /// Snapshots every RNG cursor this model owns (always exactly one —
    /// see the module docs) for a training checkpoint.
    fn rng_cursors(&self) -> Vec<rng::RngState>;

    /// Repositions the model at previously captured cursors.
    ///
    /// # Panics
    ///
    /// Panics if `cursors` does not hold exactly the number of streams
    /// this model owns.
    fn restore(&mut self, cursors: &[rng::RngState]);
}

/// Shares the single-injector RNG plumbing every implementation repeats.
macro_rules! impl_single_cursor {
    () => {
        fn reseed(&mut self, stream_seed: u64) {
            self.injector.reseed(stream_seed);
        }

        fn rng_cursors(&self) -> Vec<rng::RngState> {
            vec![self.injector.rng_state()]
        }

        fn restore(&mut self, cursors: &[rng::RngState]) {
            assert_eq!(
                cursors.len(),
                1,
                "error model owns one RNG stream, got {} cursors",
                cursors.len()
            );
            self.injector.restore_rng_state(&cursors[0]);
        }
    };
}

/// Injects additive Gaussian error at `sigma_hint` — the shared forward
/// path of every lumped-style model.
fn inject_gaussian(
    injector: &mut GaussianInjector,
    sigma: Option<f32>,
    acts: &mut Tensor,
) -> WelfordState {
    match sigma {
        Some(s) => injector.inject_sigma_traced(acts, s),
        None => WelfordState::new(),
    }
}

/// No injected error; still carries the optional mismatch overlay and an
/// (unused) RNG stream so checkpoints keep one cursor per layer.
#[derive(Debug)]
pub struct IdealModel {
    mismatch: Option<MismatchModel>,
    injector: GaussianInjector,
}

impl ErrorModel for IdealModel {
    fn kind(&self) -> ErrorModelKind {
        ErrorModelKind::Ideal
    }

    fn sigma_hint(&self, _n_tot: usize) -> Option<f32> {
        None
    }

    fn inject(&mut self, _acts: &mut Tensor, _n_tot: usize) {}

    fn inject_traced(&mut self, _acts: &mut Tensor, _n_tot: usize) -> WelfordState {
        WelfordState::new()
    }

    fn inject_slice(&mut self, _acts: &mut [f32], _n_tot: usize) {}

    fn realize_weights(&self, weights: &Tensor, layer_index: u64) -> Option<Tensor> {
        self.mismatch.map(|m| m.apply(weights, layer_index))
    }

    fn perturbs_weights(&self) -> bool {
        self.mismatch.is_some()
    }

    impl_single_cursor!();
}

/// The paper's main method: one additive Gaussian per output activation
/// at the Eq. 2 σ. Bit-identical — same σ arithmetic, same RNG stream —
/// to the pre-trait `GaussianInjector` wiring.
#[derive(Debug)]
pub struct LumpedGaussian {
    vmac: Option<Vmac>,
    mismatch: Option<MismatchModel>,
    injector: GaussianInjector,
}

impl ErrorModel for LumpedGaussian {
    fn kind(&self) -> ErrorModelKind {
        ErrorModelKind::Lumped
    }

    fn sigma_hint(&self, n_tot: usize) -> Option<f32> {
        self.vmac.map(|v| layer_error_sigma(&v, n_tot))
    }

    fn inject(&mut self, acts: &mut Tensor, n_tot: usize) {
        if let Some(sigma) = self.sigma_hint(n_tot) {
            self.injector.inject_sigma(acts, sigma);
        }
    }

    fn inject_traced(&mut self, acts: &mut Tensor, n_tot: usize) -> WelfordState {
        let sigma = self.sigma_hint(n_tot);
        inject_gaussian(&mut self.injector, sigma, acts)
    }

    fn inject_slice(&mut self, acts: &mut [f32], n_tot: usize) {
        if let Some(sigma) = self.sigma_hint(n_tot) {
            self.injector.inject_sigma_slice(acts, sigma);
        }
    }

    fn realize_weights(&self, weights: &Tensor, layer_index: u64) -> Option<Tensor> {
        self.mismatch.map(|m| m.apply(weights, layer_index))
    }

    fn perturbs_weights(&self) -> bool {
        self.mismatch.is_some()
    }

    impl_single_cursor!();
}

/// Multiplier + ADC budgets (paper §4) folded to a single Gaussian at the
/// combined σ of [`CompositeError`].
#[derive(Debug)]
pub struct CompositeModel {
    composite: Option<CompositeError>,
    mismatch: Option<MismatchModel>,
    injector: GaussianInjector,
}

impl ErrorModel for CompositeModel {
    fn kind(&self) -> ErrorModelKind {
        ErrorModelKind::Composite
    }

    fn sigma_hint(&self, n_tot: usize) -> Option<f32> {
        self.composite
            .as_ref()
            .map(|c| checked_sigma_f32(c.total_error_sigma(n_tot), "composite"))
    }

    fn inject(&mut self, acts: &mut Tensor, n_tot: usize) {
        if let Some(sigma) = self.sigma_hint(n_tot) {
            self.injector.inject_sigma(acts, sigma);
        }
    }

    fn inject_traced(&mut self, acts: &mut Tensor, n_tot: usize) -> WelfordState {
        let sigma = self.sigma_hint(n_tot);
        inject_gaussian(&mut self.injector, sigma, acts)
    }

    fn inject_slice(&mut self, acts: &mut [f32], n_tot: usize) {
        if let Some(sigma) = self.sigma_hint(n_tot) {
            self.injector.inject_sigma_slice(acts, sigma);
        }
    }

    fn realize_weights(&self, weights: &Tensor, layer_index: u64) -> Option<Tensor> {
        self.mismatch.map(|m| m.apply(weights, layer_index))
    }

    fn perturbs_weights(&self) -> bool {
        self.mismatch.is_some()
    }

    impl_single_cursor!();
}

/// Chunked per-conversion simulation at eval time (paper §4). Training
/// passes fall back to the lumped Gaussian — the chunked converter is not
/// differentiable, and the paper trains against the lumped model anyway.
/// An operand partition, when configured, is folded into the conversion
/// ENOB at build time (see [`PartitionSpec`]).
#[derive(Debug)]
pub struct PerVmacSim {
    vmac: Option<Vmac>,
    behavior: AdcBehavior,
    mismatch: Option<MismatchModel>,
    injector: GaussianInjector,
}

impl ErrorModel for PerVmacSim {
    fn kind(&self) -> ErrorModelKind {
        ErrorModelKind::PerVmac
    }

    fn sigma_hint(&self, n_tot: usize) -> Option<f32> {
        self.vmac.map(|v| layer_error_sigma(&v, n_tot))
    }

    fn inject(&mut self, acts: &mut Tensor, n_tot: usize) {
        if let Some(sigma) = self.sigma_hint(n_tot) {
            self.injector.inject_sigma(acts, sigma);
        }
    }

    fn inject_traced(&mut self, acts: &mut Tensor, n_tot: usize) -> WelfordState {
        let sigma = self.sigma_hint(n_tot);
        inject_gaussian(&mut self.injector, sigma, acts)
    }

    fn inject_slice(&mut self, acts: &mut [f32], n_tot: usize) {
        if let Some(sigma) = self.sigma_hint(n_tot) {
            self.injector.inject_sigma_slice(acts, sigma);
        }
    }

    fn realize_weights(&self, weights: &Tensor, layer_index: u64) -> Option<Tensor> {
        self.mismatch.map(|m| m.apply(weights, layer_index))
    }

    fn perturbs_weights(&self) -> bool {
        self.mismatch.is_some()
    }

    fn operand_sim(&self) -> Option<VmacSimulator> {
        self.vmac.map(|v| VmacSimulator::new(v, self.behavior))
    }

    impl_single_cursor!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_display_and_parse() {
        for kind in [
            ErrorModelKind::Ideal,
            ErrorModelKind::Lumped,
            ErrorModelKind::Composite,
            ErrorModelKind::PerVmac,
        ] {
            assert_eq!(kind.to_string().parse::<ErrorModelKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<ErrorModelKind>().is_err());
    }

    #[test]
    fn config_serde_round_trips() {
        for cfg in [
            ErrorModelConfig::Ideal,
            ErrorModelConfig::Lumped,
            ErrorModelConfig::Composite {
                multiplier_sigma: 1e-3,
            },
            ErrorModelConfig::PerVmac {
                behavior: AdcBehavior::DeltaSigma {
                    final_extra_bits: 2.0,
                },
                partition: Some(PartitionSpec {
                    n_w: 2,
                    n_x: 2,
                    slice_enob: 10.0,
                }),
            },
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: ErrorModelConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn lumped_matches_raw_injector_bitwise() {
        // The tentpole's bit-identity contract: LumpedGaussian with the
        // same stream seed produces byte-identical activations to the
        // pre-trait GaussianInjector path.
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let n_tot = 576;
        let seed = 0xC0FFEE;
        let mut legacy = GaussianInjector::new(seed);
        let mut a = Tensor::zeros(&[2, 4, 6, 6]);
        legacy.inject_sigma(&mut a, layer_error_sigma(&vmac, n_tot));

        let mut model = ErrorModelConfig::Lumped.build(Some(vmac), None, seed);
        let mut b = Tensor::zeros(&[2, 4, 6, 6]);
        model.inject(&mut b, n_tot);
        assert_eq!(a, b);

        // Traced injection draws the identical stream.
        let mut traced = ErrorModelConfig::Lumped.build(Some(vmac), None, seed);
        let mut c = Tensor::zeros(&[2, 4, 6, 6]);
        let stats = traced.inject_traced(&mut c, n_tot);
        assert_eq!(a, c);
        assert_eq!(stats.count, a.len() as u64);
    }

    #[test]
    fn ideal_injects_nothing_but_keeps_one_cursor() {
        let mut model = ErrorModelConfig::Ideal.build(Some(Vmac::default()), None, 7);
        let mut t = Tensor::ones(&[3, 3]);
        model.inject(&mut t, 64);
        assert_eq!(t, Tensor::ones(&[3, 3]));
        assert!(model.sigma_hint(64).is_none());
        assert!(model.inject_traced(&mut t, 64).is_empty());
        assert_eq!(model.rng_cursors().len(), 1);
    }

    #[test]
    fn composite_sigma_matches_core_model() {
        let vmac = Vmac::new(8, 8, 8, 10.0);
        let sigma_m = 2e-3;
        let model = ErrorModelConfig::Composite {
            multiplier_sigma: sigma_m,
        }
        .build(Some(vmac), None, 1);
        let expect = CompositeError::new(vmac, sigma_m).total_error_sigma(512) as f32;
        assert_eq!(model.sigma_hint(512), Some(expect));
        assert!(model.operand_sim().is_none());
    }

    #[test]
    fn per_vmac_exposes_simulator_and_lumped_hint() {
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let model = ErrorModelConfig::per_vmac().build(Some(vmac), None, 1);
        let sim = model.operand_sim().expect("per-VMAC exposes a simulator");
        assert_eq!(*sim.vmac(), vmac);
        assert_eq!(sim.behavior(), AdcBehavior::Quantizing);
        assert_eq!(model.sigma_hint(512), Some(layer_error_sigma(&vmac, 512)));
    }

    #[test]
    fn degenerate_partition_is_identity() {
        // A 1×1 partition at the base ENOB is exactly the unpartitioned
        // converter, so the folded equivalent ENOB must round-trip.
        let vmac = Vmac::new(9, 9, 8, 12.0);
        let eq = partition_equivalent(
            vmac,
            PartitionSpec {
                n_w: 1,
                n_x: 1,
                slice_enob: 12.0,
            },
        );
        assert!((eq.enob - 12.0).abs() < 1e-9, "enob {}", eq.enob);
    }

    #[test]
    fn partition_fold_tracks_slice_resolution() {
        // Slicing 9-bit operands 2×2 at the same 10-bit slice resolution
        // costs a hair of ENOB (four conversions instead of one, the top
        // slices dominating), while raising the slice resolution buys it
        // back — the partition's whole point is that slice conversions
        // are cheap enough to over-provision.
        let vmac = Vmac::new(9, 9, 8, 10.0);
        let same = partition_equivalent(
            vmac,
            PartitionSpec {
                n_w: 2,
                n_x: 2,
                slice_enob: 10.0,
            },
        );
        assert!(
            same.enob < 10.0 && same.enob > 9.8,
            "equivalent enob {}",
            same.enob
        );
        let finer = partition_equivalent(
            vmac,
            PartitionSpec {
                n_w: 2,
                n_x: 2,
                slice_enob: 12.0,
            },
        );
        assert!(
            finer.enob > same.enob + 1.5,
            "equivalent enob {}",
            finer.enob
        );
    }

    #[test]
    #[should_panic(expected = "invalid partition")]
    fn bad_partition_rejected_at_build() {
        // 8-bit weights have 7 magnitude bits — not divisible by 2.
        ErrorModelConfig::PerVmac {
            behavior: AdcBehavior::Quantizing,
            partition: Some(PartitionSpec {
                n_w: 2,
                n_x: 1,
                slice_enob: 8.0,
            }),
        }
        .build(Some(Vmac::new(8, 8, 8, 10.0)), None, 1);
    }

    #[test]
    fn mismatch_overlay_applies_through_any_model() {
        let mismatch = MismatchModel::new(0.05, 42);
        let w = Tensor::ones(&[4, 4]);
        let direct = mismatch.apply(&w, 3);
        for cfg in [ErrorModelConfig::Ideal, ErrorModelConfig::Lumped] {
            let model = cfg.build(None, Some(mismatch), 1);
            let via = model.realize_weights(&w, 3).expect("mismatch configured");
            assert_eq!(via, direct);
        }
        let bare = ErrorModelConfig::Lumped.build(None, None, 1);
        assert!(bare.realize_weights(&w, 3).is_none());
    }

    #[test]
    fn per_slice_injection_matches_batch1_injects() {
        // The serving contract: reseeding per image and injecting each
        // per-image slice reproduces a sequence of offline batch-1
        // injections bit-exactly.
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let n_tot = 576;
        let seeds = [11u64, 22, 33];
        let per_image = 4 * 6 * 6;

        let mut offline = Vec::new();
        for &s in &seeds {
            let mut model = ErrorModelConfig::Lumped.build(Some(vmac), None, 0);
            model.reseed(s);
            let mut t = Tensor::zeros(&[1, 4, 6, 6]);
            model.inject(&mut t, n_tot);
            offline.extend_from_slice(t.data());
        }

        let mut batched = Tensor::zeros(&[3, 4, 6, 6]);
        let mut model = ErrorModelConfig::Lumped.build(Some(vmac), None, 0);
        for (i, chunk) in batched.data_mut().chunks_mut(per_image).enumerate() {
            model.reseed(seeds[i]);
            model.inject_slice(chunk, n_tot);
        }
        assert_eq!(batched.data(), &offline[..]);
    }

    #[test]
    fn reseed_and_cursor_restore_reproduce_stream() {
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let mut model = ErrorModelConfig::Lumped.build(Some(vmac), None, 5);
        let cursors = model.rng_cursors();
        let mut a = Tensor::zeros(&[8, 8]);
        model.inject(&mut a, 64);
        // Restoring the captured cursor replays the identical noise.
        model.restore(&cursors);
        let mut b = Tensor::zeros(&[8, 8]);
        model.inject(&mut b, 64);
        assert_eq!(a, b);
        // Reseeding to the original seed does too.
        model.reseed(5);
        let mut c = Tensor::zeros(&[8, 8]);
        model.inject(&mut c, 64);
        assert_eq!(a, c);
    }
}
