//! Separate multiplier and ADC error modeling (paper §4: "Modeling the
//! error of the multipliers and ADC separately would allow even more
//! fine-grained analysis of the VMAC").
//!
//! The main model lumps every AMS error source into `ENOB_VMAC`. This
//! module splits the budget into
//!
//! * a **per-multiplier** additive error (thermal noise + nonlinearity of
//!   each D-to-A multiplier, referred to its output, in product units),
//!   which accumulates over the `N_mult` products summed in analog, and
//! * the **ADC** error, the usual `LSB²/12` of the conversion,
//!
//! and provides the round trip to an *effective* lumped `ENOB_VMAC`, so a
//! composite budget can be dropped into everything downstream (accuracy
//! curves, Fig. 8 grids) unchanged.

use serde::{Deserialize, Serialize};

use crate::vmac::Vmac;

/// A VMAC error budget split into multiplier and ADC contributions.
///
/// # Example
///
/// ```
/// use ams_core::composite::CompositeError;
/// use ams_core::vmac::Vmac;
///
/// // A 10-bit ADC with multipliers contributing 1e-3 RMS each:
/// let adc = Vmac::new(8, 8, 8, 10.0);
/// let model = CompositeError::new(adc, 1e-3);
/// // The effective lumped resolution is a little below the ADC's.
/// assert!(model.effective_enob() < 10.0);
/// assert!(model.effective_enob() > 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompositeError {
    adc: Vmac,
    multiplier_sigma: f64,
}

impl CompositeError {
    /// Creates a composite budget: `adc` describes the conversion
    /// (its `enob` is now the *ADC-only* resolution) and
    /// `multiplier_sigma` is the RMS additive error of one D-to-A
    /// multiplier in product units (products live in `[-1, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier_sigma` is negative or non-finite.
    pub fn new(adc: Vmac, multiplier_sigma: f64) -> Self {
        assert!(
            multiplier_sigma.is_finite() && multiplier_sigma >= 0.0,
            "CompositeError: multiplier sigma must be non-negative, got {multiplier_sigma}"
        );
        CompositeError {
            adc,
            multiplier_sigma,
        }
    }

    /// The ADC-only configuration.
    pub fn adc(&self) -> &Vmac {
        &self.adc
    }

    /// Per-multiplier RMS error.
    pub fn multiplier_sigma(&self) -> f64 {
        self.multiplier_sigma
    }

    /// Error variance of one VMAC conversion: `N_mult` independent
    /// multiplier errors summed in analog, plus the ADC's `LSB²/12`.
    pub fn conversion_variance(&self) -> f64 {
        self.adc.n_mult as f64 * self.multiplier_sigma * self.multiplier_sigma
            + self.adc.error_variance()
    }

    /// Total error variance per output activation needing `n_tot`
    /// multiplies (the composite analogue of paper Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn total_error_variance(&self, n_tot: usize) -> f64 {
        assert!(n_tot > 0, "total_error_variance: n_tot must be positive");
        (n_tot as f64 / self.adc.n_mult as f64) * self.conversion_variance()
    }

    /// √ of [`CompositeError::total_error_variance`].
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn total_error_sigma(&self, n_tot: usize) -> f64 {
        self.total_error_variance(n_tot).sqrt()
    }

    /// The lumped `ENOB_VMAC` whose `LSB²/12` equals this composite
    /// budget — the bridge back to the paper's single-parameter model
    /// (and everything built on it).
    ///
    /// From `Var = (N_mult·2^−(E−1))²/12`:
    /// `E = 1 − ½·log2(12·Var / N_mult²)`.
    pub fn effective_enob(&self) -> f64 {
        let n_mult = self.adc.n_mult as f64;
        1.0 - 0.5 * (12.0 * self.conversion_variance() / (n_mult * n_mult)).log2()
    }

    /// The lumped [`Vmac`] equivalent of this composite budget.
    pub fn to_lumped(&self) -> Vmac {
        self.adc.with_enob(self.effective_enob())
    }

    /// The largest per-multiplier RMS error that keeps the composite
    /// budget within `target_enob` for this ADC — how clean the
    /// multipliers must be before the ADC dominates (`None` if the ADC
    /// alone already misses the target).
    pub fn multiplier_budget_for(adc: Vmac, target_enob: f64) -> Option<f64> {
        let target_var = adc.with_enob(target_enob).error_variance();
        let adc_var = adc.error_variance();
        if adc_var > target_var {
            return None;
        }
        Some(((target_var - adc_var) / adc.n_mult as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_multipliers_reduce_to_lumped_model() {
        let adc = Vmac::new(8, 8, 8, 11.0);
        let model = CompositeError::new(adc, 0.0);
        assert_eq!(model.conversion_variance(), adc.error_variance());
        assert!((model.effective_enob() - 11.0).abs() < 1e-9);
        assert_eq!(model.to_lumped().n_mult, 8);
    }

    #[test]
    fn multiplier_noise_lowers_effective_enob() {
        let adc = Vmac::new(8, 8, 8, 11.0);
        let clean = CompositeError::new(adc, 1e-4).effective_enob();
        let dirty = CompositeError::new(adc, 1e-2).effective_enob();
        assert!(dirty < clean);
        assert!(clean <= 11.0 + 1e-9);
    }

    #[test]
    fn round_trip_through_effective_enob() {
        let adc = Vmac::new(8, 8, 16, 9.5);
        let model = CompositeError::new(adc, 3e-3);
        let lumped = model.to_lumped();
        for n_tot in [64usize, 1024, 4608] {
            let a = model.total_error_variance(n_tot);
            let b = lumped.total_error_variance(n_tot);
            assert!((a / b - 1.0).abs() < 1e-9, "n_tot {n_tot}: {a} vs {b}");
        }
    }

    #[test]
    fn multiplier_budget_inverts_effective_enob() {
        let adc = Vmac::new(8, 8, 8, 12.0);
        let budget = CompositeError::multiplier_budget_for(adc, 11.0).expect("feasible");
        let check = CompositeError::new(adc, budget).effective_enob();
        assert!((check - 11.0).abs() < 1e-6, "{check}");
        // Impossible target: ADC alone too coarse.
        assert!(CompositeError::multiplier_budget_for(adc, 13.0).is_none());
    }

    #[test]
    fn variance_additivity() {
        let adc = Vmac::new(8, 8, 8, 10.0);
        let m = 2e-3;
        let model = CompositeError::new(adc, m);
        let expected = 8.0 * m * m + adc.error_variance();
        assert!((model.conversion_variance() - expected).abs() < 1e-15);
    }
}
