//! Static device-mismatch error (paper §4: "Including non-additive and
//! data-dependent errors (due to, for example, capacitor or resistor
//! mismatch) would also be valuable").
//!
//! Unlike the additive, data-independent noise of the main model,
//! mismatch is a **fixed, per-device multiplicative** perturbation: every
//! stored weight (conductance / capacitor ratio) is realized as
//! `w·(1 + δ)` with `δ ~ N(0, σ_mm²)` drawn once per chip. The error it
//! induces is fully data-dependent (it scales with the signal), cannot be
//! averaged away over time, and — crucially — is *visible to retraining*
//! only if the training hardware is the same chip.

use ams_tensor::{rng, Tensor};
use serde::{Deserialize, Serialize};

/// A static multiplicative mismatch model: relative device error with the
/// given sigma, drawn deterministically from a chip seed.
///
/// # Example
///
/// ```
/// use ams_core::mismatch::MismatchModel;
/// use ams_tensor::Tensor;
///
/// let model = MismatchModel::new(0.02, 7); // 2% devices, chip #7
/// let w = Tensor::ones(&[4]);
/// let realized = model.apply(&w, 0);
/// // Same chip, same layer: the draw is reproducible.
/// assert_eq!(realized, model.apply(&w, 0));
/// // A different chip realizes different devices.
/// assert_ne!(realized, MismatchModel::new(0.02, 8).apply(&w, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MismatchModel {
    sigma: f64,
    chip_seed: u64,
}

impl MismatchModel {
    /// Creates a mismatch model with relative device sigma `sigma`
    /// (e.g. 0.01 = 1 % devices) for the chip identified by `chip_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f64, chip_seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "MismatchModel: sigma must be non-negative"
        );
        MismatchModel { sigma, chip_seed }
    }

    /// Relative device sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Realizes a weight tensor on this chip: `w_i · (1 + δ_i)` with a
    /// per-layer deterministic draw (the same layer on the same chip
    /// always realizes the same devices).
    pub fn apply(&self, weights: &Tensor, layer_index: u64) -> Tensor {
        if self.sigma == 0.0 {
            return weights.clone();
        }
        let mut r = rng::seeded(self.layer_seed(layer_index));
        let sigma = self.sigma as f32;
        let mut realized = weights.clone();
        for w in realized.data_mut() {
            *w *= 1.0 + sigma * rng::standard_normal(&mut r);
        }
        realized
    }

    /// The per-output-activation error variance mismatch induces on a dot
    /// product of `n_tot` quantized products, assuming products with RMS
    /// `product_rms` (≤ 1 in DoReFa units): each term contributes
    /// `(δ_i·w_i·x_i)²`, so `Var ≈ n_tot · σ_mm² · product_rms²`.
    ///
    /// This is the bridge to the paper's framework: an *equivalent* ENOB
    /// can be assigned to a mismatch level via
    /// [`crate::composite::CompositeError`]-style inversion.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0` or `product_rms` is negative.
    pub fn dot_error_variance(&self, n_tot: usize, product_rms: f64) -> f64 {
        assert!(n_tot > 0, "dot_error_variance: n_tot must be positive");
        assert!(
            product_rms >= 0.0,
            "dot_error_variance: negative product rms"
        );
        n_tot as f64 * self.sigma * self.sigma * product_rms * product_rms
    }

    fn layer_seed(&self, layer_index: u64) -> u64 {
        // SplitMix-style mix of chip seed and layer index.
        let mut z = self.chip_seed ^ layer_index.wrapping_mul(0xD134_2543_DE82_EF95);
        z = (z ^ (z >> 31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^ (z >> 29)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let w = Tensor::from_vec(&[3], vec![0.5, -0.25, 1.0]).unwrap();
        assert_eq!(MismatchModel::new(0.0, 1).apply(&w, 0), w);
    }

    #[test]
    fn realized_spread_matches_sigma() {
        let model = MismatchModel::new(0.05, 3);
        let w = Tensor::ones(&[20_000]);
        let realized = model.apply(&w, 0);
        let mean = realized.mean();
        let var = realized
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / realized.len() as f32;
        assert!((mean - 1.0).abs() < 2e-3, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 2e-3, "std {}", var.sqrt());
    }

    #[test]
    fn different_layers_realize_different_devices() {
        let model = MismatchModel::new(0.05, 3);
        let w = Tensor::ones(&[16]);
        assert_ne!(model.apply(&w, 0), model.apply(&w, 1));
    }

    #[test]
    fn error_variance_scales_linearly_in_ntot() {
        let model = MismatchModel::new(0.01, 0);
        let a = model.dot_error_variance(100, 0.3);
        let b = model.dot_error_variance(200, 0.3);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_error_is_data_dependent() {
        // Same devices, different data ⇒ different error; zero data ⇒
        // zero error (contrast with the additive Gaussian model).
        let model = MismatchModel::new(0.05, 9);
        let w = Tensor::from_vec(&[4], vec![0.5, -0.5, 0.25, 1.0]).unwrap();
        let realized = model.apply(&w, 0);
        let err = realized.sub(&w);
        let dot_err = |x: &[f32]| -> f32 { err.data().iter().zip(x).map(|(e, xi)| e * xi).sum() };
        assert_eq!(dot_err(&[0.0; 4]), 0.0);
        assert_ne!(
            dot_err(&[1.0, 0.0, 0.0, 0.0]),
            dot_err(&[0.0, 1.0, 0.0, 0.0])
        );
    }
}
