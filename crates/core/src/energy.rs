//! The ADC-dominated energy model (paper Eq. 3–4) and the ADC survey
//! (paper Fig. 7).
//!
//! The paper assumes the VMAC energy is dominated by its ADC and that
//! `ENOB_VMAC = ENOB_ADC`, making the model a *lower bound* on energy and
//! an *upper bound* on accuracy. The ADC energy-per-conversion bound is a
//! fit to the lower hull of Murmann's ADC survey: flat at 0.3 pJ below
//! 10.5 effective bits (architecture/technology-limited region) and
//! following a 187 dB Schreier figure-of-merit line above (thermal-noise
//! -limited region, ×4 energy per extra bit).

use serde::{Deserialize, Serialize};

/// The Schreier figure of merit of the paper's survey hull, in dB.
pub const SCHREIER_FOM_DB: f64 = 187.0;

/// ENOB at which the flat 0.3 pJ region meets the Schreier line.
pub const ENOB_BREAKPOINT: f64 = 10.5;

/// Energy floor of the flat region, in pJ per conversion.
pub const FLAT_ENERGY_PJ: f64 = 0.3;

/// SNDR in dB implied by an effective number of bits:
/// `SNDR = 6.02·ENOB + 1.76`.
pub fn sndr_db(enob: f64) -> f64 {
    6.02 * enob + 1.76
}

/// Energy per conversion (pJ) of an ADC sitting exactly on a Schreier FOM
/// line: `FOM_S = SNDR + 10·log10(f_snyq / (2·P))`, solved for `P / f_snyq`.
///
/// With `fom_db = 187` this reduces exactly to the paper's Eq. 3 exponent
/// `10^(0.1·(6.02·ENOB − 68.25))` — a property checked in the tests.
pub fn schreier_energy_pj(enob: f64, fom_db: f64) -> f64 {
    // P/f_snyq [J] = ½ · 10^((SNDR − FOM)/10); ×1e12 for pJ.
    0.5 * 10f64.powf((sndr_db(enob) - fom_db) / 10.0) * 1e12
}

/// The paper's lower bound on ADC energy per conversion (Eq. 3), in pJ:
///
/// ```text
/// E_ADC(ENOB) ≥ 0.3 pJ                                ENOB ≤ 10.5
///               10^(0.1·(6.02·ENOB − 68.25)) pJ       ENOB > 10.5
/// ```
///
/// # Panics
///
/// Panics if `enob` is not positive and finite.
///
/// # Example
///
/// ```
/// use ams_core::energy::adc_energy_pj;
///
/// assert_eq!(adc_energy_pj(8.0), 0.3);
/// // One extra bit in the thermal-limited region ⇒ ~4x the energy.
/// let r = adc_energy_pj(13.0) / adc_energy_pj(12.0);
/// assert!((r - 4.0).abs() < 0.01);
/// ```
pub fn adc_energy_pj(enob: f64) -> f64 {
    assert!(
        enob.is_finite() && enob > 0.0,
        "adc_energy_pj: enob must be positive, got {enob}"
    );
    if enob <= ENOB_BREAKPOINT {
        FLAT_ENERGY_PJ
    } else {
        10f64.powf(0.1 * (6.02 * enob - 68.25))
    }
}

/// Energy per MAC operation (paper Eq. 4), in pJ: the ADC conversion cost
/// amortized over the `N_mult` products it digitizes,
/// `E_MAC = E_ADC(ENOB) / N_mult`.
///
/// # Panics
///
/// Panics if `n_mult == 0` or `enob` is invalid.
pub fn mac_energy_pj(enob: f64, n_mult: usize) -> f64 {
    assert!(n_mult > 0, "mac_energy_pj: n_mult must be positive");
    adc_energy_pj(enob) / n_mult as f64
}

/// [`mac_energy_pj`] in femtojoules (the unit of the paper's headline
/// "~300 fJ/MAC" numbers).
///
/// # Panics
///
/// Panics if `n_mult == 0` or `enob` is invalid.
pub fn mac_energy_fj(enob: f64, n_mult: usize) -> f64 {
    mac_energy_pj(enob, n_mult) * 1e3
}

/// The Schreier FOM (dB) achieved by an ADC at a given resolution and
/// energy per conversion — the inverse of [`schreier_energy_pj`], used to
/// place survey points relative to the hull.
///
/// # Panics
///
/// Panics if `energy_pj` is not positive.
pub fn schreier_fom_db(enob: f64, energy_pj: f64) -> f64 {
    assert!(energy_pj > 0.0, "schreier_fom_db: energy must be positive");
    sndr_db(enob) + 10.0 * (0.5e12 / energy_pj).log10()
}

/// Publication venue of a (synthetic) survey datapoint, mirroring the
/// series in the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Venue {
    /// International Solid-State Circuits Conference.
    Isscc,
    /// Symposium on VLSI Circuits.
    Vlsi,
}

impl std::fmt::Display for Venue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Venue::Isscc => write!(f, "ISSCC"),
            Venue::Vlsi => write!(f, "VLSI"),
        }
    }
}

/// One ADC design in the (synthetic) survey: resolution at the high-
/// frequency input, energy per Nyquist sample, and provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcSurveyPoint {
    /// Publication year.
    pub year: u16,
    /// Publication venue.
    pub venue: Venue,
    /// Effective number of bits at the high-frequency input.
    pub enob: f64,
    /// `P / f_snyq` in pJ.
    pub energy_pj: f64,
}

impl AdcSurveyPoint {
    /// The Schreier FOM (dB) of this design.
    pub fn fom_db(&self) -> f64 {
        schreier_fom_db(self.enob, self.energy_pj)
    }
}

/// Synthesizes a plausible ADC survey (substitute for Murmann's dataset,
/// which is not redistributable here; see DESIGN.md).
///
/// Every generated point lies **on or above** the paper's Eq. 3 hull — the
/// property Fig. 7 exists to establish — with a realistic log-uniform-ish
/// spread that thins out toward the hull (state-of-the-art designs are
/// rare) and a resolution distribution centred on the 8–14 bit range where
/// most published Nyquist converters live.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn synthesize_survey(n: usize, seed: u64) -> Vec<AdcSurveyPoint> {
    assert!(n > 0, "synthesize_survey: need at least one point");
    use rand::Rng;
    let mut rng = ams_tensor::rng::seeded(seed);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        // Triangular-ish ENOB distribution over [4, 19] peaking near 10.
        let a: f64 = rng.gen();
        let b: f64 = rng.gen();
        let enob = 4.0 + 15.0 * (0.5 * (a + b));
        // Log-energy offset above the hull: squaring a uniform sample
        // biases mass toward the hull (decades: 0.05 .. ~2.8).
        let r: f64 = rng.gen();
        let decades = 0.05 + 2.75 * r * r;
        let energy_pj = adc_energy_pj(enob) * 10f64.powf(decades);
        let year = 1997 + (rng.gen::<f64>() * 22.0) as u16;
        let venue = if rng.gen::<f64>() < 0.6 {
            Venue::Isscc
        } else {
            Venue::Vlsi
        };
        points.push(AdcSurveyPoint {
            year,
            venue,
            enob,
            energy_pj,
        });
    }
    points
}

/// Returns the lower hull of a survey: for each of `bins` equal-width ENOB
/// bins, the minimum observed energy (pJ), as `(bin_center_enob, min_pj)`.
/// Bins with no points are omitted.
///
/// # Panics
///
/// Panics if `points` is empty or `bins == 0`.
pub fn survey_lower_hull(points: &[AdcSurveyPoint], bins: usize) -> Vec<(f64, f64)> {
    assert!(!points.is_empty(), "survey_lower_hull: empty survey");
    assert!(bins > 0, "survey_lower_hull: need at least one bin");
    let lo = points.iter().map(|p| p.enob).fold(f64::INFINITY, f64::min);
    let hi = points
        .iter()
        .map(|p| p.enob)
        .fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
    let mut mins = vec![f64::INFINITY; bins];
    for p in points {
        let idx = (((p.enob - lo) / width) as usize).min(bins - 1);
        mins[idx] = mins[idx].min(p.energy_pj);
    }
    mins.into_iter()
        .enumerate()
        .filter(|(_, m)| m.is_finite())
        .map(|(i, m)| (lo + (i as f64 + 0.5) * width, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_matches_schreier_187_line_above_breakpoint() {
        for enob in [11.0, 12.0, 13.5, 16.0, 19.0] {
            let eq3 = adc_energy_pj(enob);
            let line = schreier_energy_pj(enob, SCHREIER_FOM_DB);
            // The paper's 68.25 constant bakes in FOM = 187 dB exactly.
            assert!(
                (eq3 / line - 1.0).abs() < 0.01,
                "enob {enob}: {eq3} vs {line}"
            );
        }
    }

    #[test]
    fn breakpoint_is_continuous() {
        let below = adc_energy_pj(ENOB_BREAKPOINT);
        let above = adc_energy_pj(ENOB_BREAKPOINT + 1e-9);
        assert!((below - FLAT_ENERGY_PJ).abs() < 1e-12);
        // 10^(0.1(6.02·10.5 − 68.25)) = 10^(-0.504) ≈ 0.313 pJ — the model
        // has a ~4% step at the breakpoint, as in the paper.
        assert!((above - 0.313).abs() < 0.01, "{above}");
    }

    #[test]
    fn paper_headline_energies() {
        // Fig. 8's red level curves at N_mult = 8.
        assert!(
            (mac_energy_fj(11.0, 8) - 78.0).abs() < 4.0,
            "{}",
            mac_energy_fj(11.0, 8)
        );
        assert!((mac_energy_fj(11.5, 8) - 157.0).abs() < 8.0);
        assert!((mac_energy_fj(12.0, 8) - 313.0).abs() < 15.0);
        assert!((mac_energy_fj(12.5, 8) - 626.0).abs() < 30.0);
        assert!((mac_energy_fj(13.0, 8) - 1250.0).abs() < 60.0);
    }

    #[test]
    fn nmult_amortizes_energy() {
        assert!((mac_energy_pj(12.0, 16) * 2.0 - mac_energy_pj(12.0, 8)).abs() < 1e-12);
    }

    #[test]
    fn fom_inverse_round_trip() {
        for enob in [6.0, 10.0, 14.0] {
            let e = schreier_energy_pj(enob, 180.0);
            assert!((schreier_fom_db(enob, e) - 180.0).abs() < 1e-9);
        }
    }

    #[test]
    fn survey_respects_hull() {
        let pts = synthesize_survey(500, 99);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert!(
                p.energy_pj >= adc_energy_pj(p.enob) * 0.999,
                "point below hull: {p:?}"
            );
            assert!(p.fom_db() <= SCHREIER_FOM_DB + 0.1 || p.enob <= ENOB_BREAKPOINT);
            assert!((1997..=2018).contains(&p.year));
        }
    }

    #[test]
    fn survey_hull_tracks_model_shape() {
        let pts = synthesize_survey(4000, 7);
        let hull = survey_lower_hull(&pts, 15);
        assert!(!hull.is_empty());
        // Hull should rise steeply at high ENOB: compare the highest and a
        // mid bin.
        let mid = hull.iter().find(|(e, _)| *e > 9.0 && *e < 12.0).copied();
        let high = hull.last().copied().unwrap();
        if let Some((_, mid_e)) = mid {
            assert!(
                high.1 > mid_e,
                "thermal region must cost more: {high:?} vs {mid_e}"
            );
        }
    }

    #[test]
    fn survey_is_deterministic() {
        assert_eq!(synthesize_survey(50, 5), synthesize_survey(50, 5));
    }

    #[test]
    #[should_panic(expected = "enob must be positive")]
    fn rejects_bad_enob() {
        adc_energy_pj(-1.0);
    }
}
