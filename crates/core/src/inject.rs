//! Forward-pass Gaussian error injection (paper Fig. 3).
//!
//! The paper lumps the errors of all the VMACs contributing to one output
//! activation into a single additive, approximately Gaussian error injected
//! at the output of the digital summation — i.e. at the convolution output,
//! before batch normalization. Injection happens in the **forward pass
//! only**; the backward pass is untouched (the injector is not a layer and
//! has no gradient).

use ams_tensor::obs::WelfordState;
use ams_tensor::{rng, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

use crate::vmac::Vmac;

/// A positive f64 model σ that flushed to zero or subnormal when narrowed
/// to `f32` — injecting it would add silently-zero (or denormal) noise and
/// invalidate the experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaUnderflow {
    /// The exact model σ before narrowing.
    pub sigma: f64,
    /// What the σ narrowed to (zero or subnormal).
    pub narrowed: f32,
}

impl std::fmt::Display for SigmaUnderflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "error σ = {:.3e} underflows f32 (narrows to {:e}); injected noise \
             would be zero or denormal — the ENOB is too high for this n_tot",
            self.sigma, self.narrowed
        )
    }
}

impl std::error::Error for SigmaUnderflow {}

/// Narrows a model σ to `f32` for activation tensors, warning **loudly**
/// on stderr when a positive f64 σ flushes to zero or subnormal (at very
/// high ENOB × small `n_tot` the Eq. 2 σ can drop below f32's smallest
/// normal, and silently injecting zero noise would fake a perfect
/// accelerator).
pub(crate) fn checked_sigma_f32(sigma: f64, what: &str) -> f32 {
    let narrowed = sigma as f32;
    if sigma > 0.0 && (narrowed == 0.0 || narrowed.is_subnormal()) {
        eprintln!("warning: {what}: {}", SigmaUnderflow { sigma, narrowed });
    }
    narrowed
}

/// Standard deviation of the lumped error for a layer needing `n_tot`
/// multiplies per output activation (paper Eq. 2, as a σ).
///
/// Convenience free function mirroring [`Vmac::total_error_sigma`] but
/// returning `f32` for direct use on activation tensors. If the f64 σ is
/// positive but flushes to zero/subnormal in f32, a loud warning is
/// printed to stderr (use [`layer_error_sigma_checked`] to handle that
/// case programmatically).
///
/// # Panics
///
/// Panics if `n_tot == 0`.
pub fn layer_error_sigma(vmac: &Vmac, n_tot: usize) -> f32 {
    checked_sigma_f32(vmac.total_error_sigma(n_tot), "layer_error_sigma")
}

/// Like [`layer_error_sigma`], but returns an error instead of warning
/// when the σ underflows f32.
///
/// # Errors
///
/// Returns [`SigmaUnderflow`] when the positive f64 σ narrows to zero or
/// a subnormal f32.
///
/// # Panics
///
/// Panics if `n_tot == 0`.
pub fn layer_error_sigma_checked(vmac: &Vmac, n_tot: usize) -> Result<f32, SigmaUnderflow> {
    let sigma = vmac.total_error_sigma(n_tot);
    let narrowed = sigma as f32;
    if sigma > 0.0 && (narrowed == 0.0 || narrowed.is_subnormal()) {
        return Err(SigmaUnderflow { sigma, narrowed });
    }
    Ok(narrowed)
}

/// A seeded source of additive Gaussian error.
///
/// One injector is shared across all layers of a network so that a single
/// seed reproduces an entire noisy evaluation.
///
/// # Example
///
/// ```
/// use ams_core::inject::GaussianInjector;
/// use ams_core::vmac::Vmac;
/// use ams_tensor::Tensor;
///
/// let mut inj = GaussianInjector::new(7);
/// let vmac = Vmac::new(8, 8, 8, 10.0);
/// let mut acts = Tensor::zeros(&[1, 4, 8, 8]);
/// inj.inject(&mut acts, &vmac, 576);
/// assert!(acts.max_abs() > 0.0); // noise landed
/// ```
#[derive(Debug)]
pub struct GaussianInjector {
    rng: StdRng,
}

impl GaussianInjector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Self {
        GaussianInjector {
            rng: rng::seeded(seed),
        }
    }

    /// Adds `N(0, σ²)` error to every element, with σ from the VMAC error
    /// model for a layer with `n_tot` multiplies per output activation.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn inject(&mut self, activations: &mut Tensor, vmac: &Vmac, n_tot: usize) {
        self.inject_sigma(activations, layer_error_sigma(vmac, n_tot));
    }

    /// Adds `N(0, σ²)` error with an explicit σ (used by tests and by
    /// callers that precompute per-layer σ once).
    ///
    /// A non-positive σ is a no-op, so callers can disable injection by
    /// zeroing the σ rather than branching.
    pub fn inject_sigma(&mut self, activations: &mut Tensor, sigma: f32) {
        self.inject_sigma_slice(activations.data_mut(), sigma);
    }

    /// [`GaussianInjector::inject_sigma`] over a raw slice — the same
    /// draws in the same order, so injecting a tensor's per-image slices
    /// one at a time (reseeding in between) reproduces what a sequence of
    /// batch-1 `inject_sigma` calls would produce. This is what makes the
    /// serving path's coalesced batches bit-identical to offline batch-1
    /// evaluation.
    pub fn inject_sigma_slice(&mut self, activations: &mut [f32], sigma: f32) {
        if sigma <= 0.0 {
            return;
        }
        for v in activations {
            *v += sigma * rng::standard_normal(&mut self.rng);
        }
    }

    /// Like [`GaussianInjector::inject_sigma`], but additionally
    /// accumulates the injected error samples into a [`WelfordState`]
    /// summary for metrics reporting.
    ///
    /// Draws the **identical RNG stream** as `inject_sigma` — same calls,
    /// same order — so switching tracing on or off never perturbs the
    /// noisy activations themselves, only whether their statistics are
    /// observed. A non-positive σ is a no-op returning an empty state.
    pub fn inject_sigma_traced(&mut self, activations: &mut Tensor, sigma: f32) -> WelfordState {
        let mut stats = WelfordState::new();
        if sigma <= 0.0 {
            return stats;
        }
        for v in activations.data_mut() {
            let noise = sigma * rng::standard_normal(&mut self.rng);
            *v += noise;
            stats.push(f64::from(noise));
        }
        stats
    }

    /// Draws a single `N(0, 1)` sample (exposed for the per-VMAC simulator
    /// which shares this RNG).
    pub fn standard_normal(&mut self) -> f32 {
        rng::standard_normal(&mut self.rng)
    }

    /// Reseeds the injector (each of the paper's five validation passes
    /// uses fresh noise; reseeding makes each pass independently
    /// reproducible).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = rng::seeded(seed);
    }

    /// Snapshots the injector's stream cursor for a training checkpoint:
    /// restoring it resumes the noise stream bit-exactly where it left
    /// off (DESIGN.md §9).
    pub fn rng_state(&self) -> rng::RngState {
        rng::RngState::capture(&self.rng)
    }

    /// Repositions the injector at a previously captured stream cursor.
    pub fn restore_rng_state(&mut self, state: &rng::RngState) {
        self.rng = state.restore();
    }

    /// Draws a uniform sample in `[0, 1)` (shared-RNG convenience).
    pub fn uniform(&mut self) -> f32 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_noise_has_requested_sigma() {
        let mut inj = GaussianInjector::new(1);
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let n_tot = 576;
        let sigma = layer_error_sigma(&vmac, n_tot);
        let mut t = Tensor::zeros(&[64, 16, 8, 8]);
        inj.inject(&mut t, &vmac, n_tot);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02 * sigma.max(1.0), "mean {mean}");
        assert!(
            (var.sqrt() - sigma).abs() < 0.02 * sigma,
            "sigma {} vs expected {sigma}",
            var.sqrt()
        );
    }

    #[test]
    fn zero_sigma_is_noop() {
        let mut inj = GaussianInjector::new(2);
        let mut t = Tensor::ones(&[4, 4]);
        inj.inject_sigma(&mut t, 0.0);
        assert_eq!(t, Tensor::ones(&[4, 4]));
    }

    #[test]
    fn traced_injection_matches_untraced_stream() {
        let mut plain = GaussianInjector::new(11);
        let mut traced = GaussianInjector::new(11);
        let mut a = Tensor::zeros(&[4, 8, 8]);
        let mut b = Tensor::zeros(&[4, 8, 8]);
        plain.inject_sigma(&mut a, 0.5);
        let stats = traced.inject_sigma_traced(&mut b, 0.5);
        assert_eq!(a, b, "tracing must not perturb the noise stream");
        assert_eq!(stats.count, a.len() as u64);
        assert!(stats.mean.abs() < 0.1);
        assert!((stats.sample_std() - 0.5).abs() < 0.05);
        // Zero sigma: no-op, empty summary.
        let empty = traced.inject_sigma_traced(&mut b, 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn same_seed_same_noise() {
        let vmac = Vmac::new(8, 8, 8, 10.0);
        let mut a = Tensor::zeros(&[2, 2, 2, 2]);
        let mut b = Tensor::zeros(&[2, 2, 2, 2]);
        GaussianInjector::new(42).inject(&mut a, &vmac, 64);
        GaussianInjector::new(42).inject(&mut b, &vmac, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn reseed_restores_stream() {
        let mut inj = GaussianInjector::new(3);
        let first = inj.standard_normal();
        inj.standard_normal();
        inj.reseed(3);
        assert_eq!(inj.standard_normal(), first);
    }

    #[test]
    fn sigma_underflow_is_an_error_not_silence() {
        // At extreme ENOB × tiny n_tot the f64 σ is positive but below
        // f32's smallest normal — the checked variant must refuse rather
        // than hand back a silently-useless σ.
        let vmac = Vmac::new(8, 8, 8, 140.0);
        let err = layer_error_sigma_checked(&vmac, 8).unwrap_err();
        assert!(err.sigma > 0.0);
        assert!(err.narrowed == 0.0 || err.narrowed.is_subnormal());
        assert!(err.to_string().contains("underflows f32"), "{err}");
        // The unchecked path narrows identically (plus a stderr warning),
        // so existing callers see unchanged values.
        assert_eq!(layer_error_sigma(&vmac, 8), err.narrowed);
    }

    #[test]
    fn normal_sigma_passes_checked_path() {
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let sigma = layer_error_sigma_checked(&vmac, 576).unwrap();
        assert_eq!(sigma, layer_error_sigma(&vmac, 576));
        assert!(sigma > 0.0);
    }

    #[test]
    fn averaging_equivalence() {
        // Paper §2: averaging-based hardware divides the analog sum by
        // N_mult and rescales digitally; signal and noise scale equally,
        // so the *relative* injected error is identical. Model check:
        // σ(averaged then rescaled) == σ(addition-based).
        let vmac = Vmac::new(8, 8, 16, 10.0);
        let sigma_add = vmac.total_error_sigma(1024);
        // Averaging: full-scale shrinks by N_mult ⇒ LSB and σ shrink by
        // N_mult; digital rescale multiplies back by N_mult.
        let sigma_avg_rescaled =
            (vmac.total_error_sigma(1024) / vmac.n_mult as f64) * vmac.n_mult as f64;
        assert!((sigma_add - sigma_avg_rescaled).abs() < 1e-15);
    }
}
