//! Fine-grained per-VMAC simulation (paper §4, "split up the convolution
//! into VMAC-sized units and inject error at the output of each VMAC
//! separately").
//!
//! Where [`crate::inject`] adds one lumped Gaussian per output activation
//! (the paper's main method), this module actually chops a dot product into
//! `⌈N_tot/N_mult⌉` analog partial sums and pushes each through a modeled
//! ADC. It exists to *validate* the lumped model (the ablation benches
//! compare both) and to implement two of the paper's proposed error-
//! reduction methods exactly:
//!
//! * **ΔΣ error recycling** — the quantization error incurred in one
//!   conversion is subtracted from the next partial sum (a first-order
//!   delta-sigma modulator); only the final conversion's error survives.
//! * **Reference scaling** — the ADC full-scale is shrunk below
//!   `±N_mult`, trading clipping of rare large partial sums for a finer
//!   LSB on the common small ones.

use serde::{Deserialize, Serialize};

use crate::vmac::Vmac;

/// How each analog partial sum is converted to digital.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdcBehavior {
    /// Lossless conversion (the error-free reference).
    Ideal,
    /// Plain mid-rise uniform quantization at the VMAC's ENOB with
    /// full-scale `±N_mult`.
    Quantizing,
    /// First-order ΔΣ error feedback across successive conversions of the
    /// same output's partial sums; the final conversion runs at
    /// `ENOB + final_extra_bits` (the paper notes the last conversion must
    /// be higher-resolution).
    DeltaSigma {
        /// Extra resolution of the final conversion, in bits.
        final_extra_bits: f64,
    },
    /// Plain quantization with the reference (full-scale) shrunk to
    /// `alpha · N_mult`, `0 < alpha ≤ 1`: finer LSB, but partial sums
    /// beyond the reduced range clip.
    RefScaled {
        /// Full-scale shrink factor.
        alpha: f64,
    },
}

/// A per-VMAC dot-product simulator.
///
/// # Example
///
/// ```
/// use ams_core::vmac::Vmac;
/// use ams_core::vmac_sim::{AdcBehavior, VmacSimulator};
///
/// let vmac = Vmac::new(8, 8, 4, 8.0);
/// let sim = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
/// let w = [0.5f32; 8];
/// let x = [0.25f32; 8];
/// let ideal: f64 = 8.0 * 0.125;
/// let got = sim.dot(&w, &x);
/// assert!((got - ideal).abs() <= vmac.lsb()); // within one LSB per chunk
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmacSimulator {
    vmac: Vmac,
    behavior: AdcBehavior,
}

impl VmacSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if a [`AdcBehavior::RefScaled`] `alpha` is outside `(0, 1]`
    /// or ΔΣ `final_extra_bits` is negative.
    pub fn new(vmac: Vmac, behavior: AdcBehavior) -> Self {
        match behavior {
            AdcBehavior::RefScaled { alpha } => {
                assert!(
                    alpha > 0.0 && alpha <= 1.0,
                    "RefScaled: alpha must be in (0, 1], got {alpha}"
                );
            }
            AdcBehavior::DeltaSigma { final_extra_bits } => {
                assert!(
                    final_extra_bits >= 0.0,
                    "DeltaSigma: extra bits must be non-negative"
                );
            }
            _ => {}
        }
        VmacSimulator { vmac, behavior }
    }

    /// The simulated VMAC configuration.
    pub fn vmac(&self) -> &Vmac {
        &self.vmac
    }

    /// The configured conversion behaviour.
    pub fn behavior(&self) -> AdcBehavior {
        self.behavior
    }

    /// One uniform conversion: quantizes `s` with the given resolution and
    /// full-scale, clamping to the representable range.
    ///
    /// The quantizer is **mid-tread** (zero is a code): neural-network
    /// partial sums concentrate near zero (ReLU sparsity and sign
    /// cancellation), and a mid-rise characteristic would turn every
    /// near-zero sum into a systematic ±LSB/2 offset that accumulates
    /// across a deep network — an artifact of the converter's transfer
    /// curve, not of the error budget ENOB models.
    pub fn convert(s: f64, enob: f64, full_scale: f64) -> f64 {
        let step = 2.0 * full_scale / 2f64.powf(enob);
        let max_code = full_scale - step / 2.0;
        ((s / step).round() * step).clamp(-max_code, max_code)
    }

    /// Converts one analog partial sum `s` — the `chunk_index`-th of
    /// `n_chunks` contributing to the same output activation — through
    /// the configured behaviour. `feedback` is the ΔΣ error memory the
    /// caller must carry (zero-initialized) across the chunks of one
    /// output; the other behaviours ignore it.
    ///
    /// This is the per-conversion kernel [`VmacSimulator::dot`] and the
    /// network layers' per-VMAC forward paths share, so a matmul inner
    /// loop and the reference dot product quantize identically.
    pub fn convert_partial(
        &self,
        s: f64,
        chunk_index: usize,
        n_chunks: usize,
        feedback: &mut f64,
    ) -> f64 {
        let fs = self.vmac.n_mult as f64;
        match self.behavior {
            AdcBehavior::Ideal => s,
            AdcBehavior::Quantizing => Self::convert(s, self.vmac.enob, fs),
            AdcBehavior::DeltaSigma { final_extra_bits } => {
                let u = s - *feedback;
                let enob = if chunk_index + 1 == n_chunks {
                    self.vmac.enob + final_extra_bits
                } else {
                    self.vmac.enob
                };
                let q = Self::convert(u, enob, fs);
                *feedback = q - u;
                q
            }
            AdcBehavior::RefScaled { alpha } => Self::convert(s, self.vmac.enob, alpha * fs),
        }
    }

    /// Computes the digital dot product of `w` and `x` through chunked
    /// analog partial sums and modeled conversions, summing the digital
    /// outputs (the paper's "partial sums are accumulated digitally").
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn dot(&self, w: &[f32], x: &[f32]) -> f64 {
        assert_eq!(w.len(), x.len(), "dot: operand length mismatch");
        assert!(!w.is_empty(), "dot: empty operands");
        let n_mult = self.vmac.n_mult;
        let chunks = w.len().div_ceil(n_mult);
        let mut total = 0.0f64;
        let mut feedback = 0.0f64; // ΔΣ error memory
        for (k, (wc, xc)) in w.chunks(n_mult).zip(x.chunks(n_mult)).enumerate() {
            let s: f64 = wc
                .iter()
                .zip(xc)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            total += self.convert_partial(s, k, chunks, &mut feedback);
        }
        total
    }

    /// The signed error of the simulated dot product against the ideal
    /// (f64) dot product.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn dot_error(&self, w: &[f32], x: &[f32]) -> f64 {
        let ideal: f64 = w
            .iter()
            .zip(x)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        self.dot(w, x) - ideal
    }

    /// Empirical RMS error over random operands: weights uniform in
    /// `[-1, 1]`, activations uniform in `[0, 1]` (the DoReFa ranges).
    ///
    /// Used by ablations to check the lumped Gaussian model (Eq. 2)
    /// against actual chunked quantization.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0` or `trials == 0`.
    pub fn empirical_rms_error(&self, n_tot: usize, trials: usize, seed: u64) -> f64 {
        assert!(
            n_tot > 0 && trials > 0,
            "empirical_rms_error: zero-sized experiment"
        );
        use rand::Rng;
        let mut rng = ams_tensor::rng::seeded(seed);
        let mut acc = 0.0f64;
        let mut w = vec![0.0f32; n_tot];
        let mut x = vec![0.0f32; n_tot];
        for _ in 0..trials {
            for v in &mut w {
                *v = rng.gen::<f32>() * 2.0 - 1.0;
            }
            for v in &mut x {
                *v = rng.gen::<f32>();
            }
            let e = self.dot_error(&w, &x);
            acc += e * e;
        }
        (acc / trials as f64).sqrt()
    }

    /// Fraction of analog partial sums that clip for a
    /// [`AdcBehavior::RefScaled`] simulator over random operands (always 0
    /// for other behaviours' full-scale).
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0` or `trials == 0`.
    pub fn clip_fraction(&self, n_tot: usize, trials: usize, seed: u64) -> f64 {
        assert!(
            n_tot > 0 && trials > 0,
            "clip_fraction: zero-sized experiment"
        );
        use rand::Rng;
        let alpha = match self.behavior {
            AdcBehavior::RefScaled { alpha } => alpha,
            _ => 1.0,
        };
        let fs = alpha * self.vmac.n_mult as f64;
        let mut rng = ams_tensor::rng::seeded(seed);
        let n_mult = self.vmac.n_mult;
        let mut clipped = 0usize;
        let mut total = 0usize;
        for _ in 0..trials {
            let w: Vec<f32> = (0..n_tot).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            let x: Vec<f32> = (0..n_tot).map(|_| rng.gen::<f32>()).collect();
            for (wc, xc) in w.chunks(n_mult).zip(x.chunks(n_mult)) {
                let s: f64 = wc
                    .iter()
                    .zip(xc)
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                total += 1;
                if s.abs() > fs {
                    clipped += 1;
                }
            }
        }
        clipped as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_matches_exact_dot() {
        let sim = VmacSimulator::new(Vmac::new(8, 8, 4, 10.0), AdcBehavior::Ideal);
        let w = [0.1f32, -0.2, 0.3, 0.4, 0.5];
        let x = [1.0f32, 0.5, 0.25, 0.0, 0.8];
        let ideal: f64 = w
            .iter()
            .zip(&x)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum();
        assert!((sim.dot(&w, &x) - ideal).abs() < 1e-12);
    }

    #[test]
    fn convert_error_bounded_by_half_step() {
        let fs = 8.0;
        let enob = 6.0;
        let step = 2.0 * fs / 64.0;
        for i in -100..=100 {
            let s = i as f64 * 0.07;
            if s.abs() < fs - step {
                let e = (VmacSimulator::convert(s, enob, fs) - s).abs();
                assert!(e <= step / 2.0 + 1e-12, "s={s}: error {e}");
            }
        }
    }

    #[test]
    fn convert_clamps_overrange() {
        let q = VmacSimulator::convert(100.0, 4.0, 8.0);
        assert!(q < 8.0 && q > 7.0);
        let q = VmacSimulator::convert(-100.0, 4.0, 8.0);
        assert!(q > -8.0 && q < -7.0);
    }

    #[test]
    fn quantizing_rms_matches_lumped_model() {
        // The heart of the paper's modeling assumption: chunked uniform
        // quantization error ≈ the Eq. 2 Gaussian σ.
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let sim = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
        let n_tot = 512;
        let rms = sim.empirical_rms_error(n_tot, 400, 11);
        let predicted = vmac.total_error_sigma(n_tot);
        let ratio = rms / predicted;
        assert!(
            (0.85..1.15).contains(&ratio),
            "rms {rms} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn delta_sigma_beats_plain_quantization() {
        let vmac = Vmac::new(8, 8, 8, 9.0);
        let plain = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
        let ds = VmacSimulator::new(
            vmac,
            AdcBehavior::DeltaSigma {
                final_extra_bits: 2.0,
            },
        );
        let n_tot = 512; // 64 conversions per output
        let rms_plain = plain.empirical_rms_error(n_tot, 300, 13);
        let rms_ds = ds.empirical_rms_error(n_tot, 300, 13);
        // ΔΣ leaves only the final conversion's error: expect a large win.
        assert!(
            rms_ds < rms_plain / 4.0,
            "delta-sigma {rms_ds} not ≪ plain {rms_plain}"
        );
    }

    #[test]
    fn delta_sigma_error_is_final_conversion_error() {
        // With exact-arithmetic feedback, total error telescopes to the
        // last conversion's error, which is ≤ half its (finer) step.
        let vmac = Vmac::new(8, 8, 4, 8.0);
        let sim = VmacSimulator::new(
            vmac,
            AdcBehavior::DeltaSigma {
                final_extra_bits: 4.0,
            },
        );
        let fs = 4.0;
        let final_step = 2.0 * fs / 2f64.powf(12.0);
        use rand::Rng;
        let mut rng = ams_tensor::rng::seeded(17);
        for _ in 0..50 {
            let w: Vec<f32> = (0..64).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            let x: Vec<f32> = (0..64).map(|_| rng.gen::<f32>()).collect();
            let e = sim.dot_error(&w, &x).abs();
            assert!(
                e <= final_step / 2.0 + 1e-9,
                "error {e} vs final half-step {}",
                final_step / 2.0
            );
        }
    }

    #[test]
    fn ref_scaling_reduces_error_until_clipping() {
        let vmac = Vmac::new(8, 8, 16, 8.0);
        let n_tot = 256;
        let full = VmacSimulator::new(vmac, AdcBehavior::RefScaled { alpha: 1.0 });
        let half = VmacSimulator::new(vmac, AdcBehavior::RefScaled { alpha: 0.5 });
        // Random ±products mostly cancel: partial sums concentrate near 0,
        // so alpha = 0.5 rarely clips and its finer LSB wins.
        let rms_full = full.empirical_rms_error(n_tot, 300, 29);
        let rms_half = half.empirical_rms_error(n_tot, 300, 29);
        assert!(rms_half < rms_full, "{rms_half} !< {rms_full}");
        // But an aggressive alpha clips and loses.
        let tiny = VmacSimulator::new(vmac, AdcBehavior::RefScaled { alpha: 0.02 });
        let rms_tiny = tiny.empirical_rms_error(n_tot, 300, 29);
        assert!(rms_tiny > rms_half, "{rms_tiny} !> {rms_half}");
        // Clip fractions order the same way.
        assert!(tiny.clip_fraction(n_tot, 50, 31) > half.clip_fraction(n_tot, 50, 31));
    }

    #[test]
    fn convert_partial_matches_whole_dot() {
        // The per-conversion kernel, driven chunk by chunk the way a
        // matmul inner loop drives it, must reproduce dot() exactly for
        // every behaviour (including the stateful ΔΣ feedback).
        use rand::Rng;
        let vmac = Vmac::new(8, 8, 4, 7.0);
        let behaviors = [
            AdcBehavior::Ideal,
            AdcBehavior::Quantizing,
            AdcBehavior::DeltaSigma {
                final_extra_bits: 2.0,
            },
            AdcBehavior::RefScaled { alpha: 0.5 },
        ];
        let mut rng = ams_tensor::rng::seeded(23);
        for behavior in behaviors {
            let sim = VmacSimulator::new(vmac, behavior);
            let w: Vec<f32> = (0..22).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
            let x: Vec<f32> = (0..22).map(|_| rng.gen::<f32>()).collect();
            let chunks = w.len().div_ceil(vmac.n_mult);
            let mut feedback = 0.0f64;
            let mut total = 0.0f64;
            for (k, (wc, xc)) in w.chunks(vmac.n_mult).zip(x.chunks(vmac.n_mult)).enumerate() {
                let s: f64 = wc
                    .iter()
                    .zip(xc)
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                total += sim.convert_partial(s, k, chunks, &mut feedback);
            }
            assert_eq!(total, sim.dot(&w, &x), "{behavior:?}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn bad_alpha_rejected() {
        VmacSimulator::new(Vmac::default(), AdcBehavior::RefScaled { alpha: 1.5 });
    }
}
