//! Multiplication partitioning (paper §4, "long multiplication").
//!
//! Splitting a `B_W × B_X` multiplication into `N_W · N_X` multiplications
//! of narrower operands lets every partial product be digitized by a
//! *lower-resolution* ADC, because each partial product spans fewer bits
//! than the whole product. The appropriately shifted partial results are
//! added in the digital domain. The paper argues this reduces injected
//! error, and reduces energy as long as a low-resolution conversion costs
//! less than `1/(N_W·N_X)` of the high-resolution one.
//!
//! # Model
//!
//! Let `b_ws = (B_W − 1)/N_W` and `b_xs = (B_X − 1)/N_X` be the magnitude
//! bits per operand slice (widths must divide evenly). Weight slice `i`
//! (0 = most significant) carries significance `2^(−i·b_ws)` relative to a
//! unit-full-scale operand, and similarly for activation slices. The slice
//! `(i, j)` partial dot product is computed on normalized (unit-range)
//! slice operands by a VMAC whose ADC has `slice_enob` bits; its conversion
//! error variance in *full product* units is scaled by
//! `4^(−(i·b_ws + j·b_xs))`. Slice errors are independent, so per output
//! activation:
//!
//! ```text
//! Var_total = (N_tot/N_mult) · Var_slice · (Σᵢ 4^(−i·b_ws)) · (Σⱼ 4^(−j·b_xs))
//! ```
//!
//! and the energy per MAC is `(N_W·N_X / N_mult) · E_ADC(slice_enob)`.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use crate::energy::adc_energy_pj;
use crate::vmac::Vmac;

/// Error constructing a [`PartitionedVmac`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Weight magnitude bits do not split evenly into `n_w` slices.
    WeightSplit {
        /// Magnitude bits available (`B_W − 1`).
        magnitude_bits: u32,
        /// Requested slice count.
        n_w: u32,
    },
    /// Activation magnitude bits do not split evenly into `n_x` slices.
    ActivationSplit {
        /// Magnitude bits available (`B_X − 1`).
        magnitude_bits: u32,
        /// Requested slice count.
        n_x: u32,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::WeightSplit {
                magnitude_bits,
                n_w,
            } => {
                write!(
                    f,
                    "cannot split {magnitude_bits} weight magnitude bits into {n_w} equal slices"
                )
            }
            PartitionError::ActivationSplit {
                magnitude_bits,
                n_x,
            } => {
                write!(
                    f,
                    "cannot split {magnitude_bits} activation magnitude bits into {n_x} equal slices"
                )
            }
        }
    }
}

impl Error for PartitionError {}

/// A partitioned AMS multiply: the base VMAC geometry plus the
/// `(N_W, N_X)` operand split and the per-slice ADC resolution.
///
/// # Example
///
/// ```
/// use ams_core::partition::PartitionedVmac;
/// use ams_core::vmac::Vmac;
///
/// // The degenerate 1x1 "partition" is exactly the unpartitioned cell —
/// // the anchor every real split is compared against.
/// let base = Vmac::new(8, 8, 8, 12.0);
/// let part = PartitionedVmac::new(base, 1, 1, 12.0)?;
/// assert!((part.total_error_variance(4608) - base.total_error_variance(4608)).abs() < 1e-15);
///
/// // A real split: 9-bit operands (8 magnitude bits) in 2x2 slices with
/// // cheaper 10-bit conversions.
/// let split = PartitionedVmac::new(Vmac::new(9, 9, 8, 14.0), 2, 2, 10.0)?;
/// assert!(split.energy_per_mac_fj() < 1000.0);
/// # Ok::<(), ams_core::partition::PartitionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionedVmac {
    base: Vmac,
    n_w: u32,
    n_x: u32,
    slice_enob: f64,
}

impl PartitionedVmac {
    /// Creates a partitioned multiply configuration.
    ///
    /// `n_w = n_x = 1` with `slice_enob = base.enob` degenerates exactly to
    /// the unpartitioned model.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] if the magnitude bits of either operand
    /// (`B − 1`) are not divisible by the slice count.
    ///
    /// # Panics
    ///
    /// Panics if `slice_enob` is not positive/finite or a slice count is 0.
    pub fn new(base: Vmac, n_w: u32, n_x: u32, slice_enob: f64) -> Result<Self, PartitionError> {
        assert!(
            n_w > 0 && n_x > 0,
            "PartitionedVmac: slice counts must be positive"
        );
        assert!(
            slice_enob.is_finite() && slice_enob > 0.0,
            "PartitionedVmac: slice_enob must be positive"
        );
        let wmag = base.bw - 1;
        let xmag = base.bx - 1;
        if !wmag.is_multiple_of(n_w) {
            return Err(PartitionError::WeightSplit {
                magnitude_bits: wmag,
                n_w,
            });
        }
        if !xmag.is_multiple_of(n_x) {
            return Err(PartitionError::ActivationSplit {
                magnitude_bits: xmag,
                n_x,
            });
        }
        Ok(PartitionedVmac {
            base,
            n_w,
            n_x,
            slice_enob,
        })
    }

    /// The underlying VMAC geometry.
    pub fn base(&self) -> &Vmac {
        &self.base
    }

    /// Weight slice count `N_W`.
    pub fn n_w(&self) -> u32 {
        self.n_w
    }

    /// Activation slice count `N_X`.
    pub fn n_x(&self) -> u32 {
        self.n_x
    }

    /// Per-slice ADC resolution.
    pub fn slice_enob(&self) -> f64 {
        self.slice_enob
    }

    /// Magnitude bits per weight slice.
    pub fn weight_slice_bits(&self) -> u32 {
        (self.base.bw - 1) / self.n_w
    }

    /// Magnitude bits per activation slice.
    pub fn activation_slice_bits(&self) -> u32 {
        (self.base.bx - 1) / self.n_x
    }

    /// Significance-weighted variance sum `Σᵢ 4^(−i·b)` over `n` slices of
    /// `b` bits each.
    fn significance_sum(n: u32, bits_per_slice: u32) -> f64 {
        (0..n)
            .map(|i| 4f64.powi(-((i * bits_per_slice) as i32)))
            .sum()
    }

    /// Per-conversion error variance of one slice ADC, referred to the
    /// *most significant* slice's units (full product units).
    fn slice_variance(&self) -> f64 {
        let v = self.base.with_enob(self.slice_enob);
        v.error_variance()
    }

    /// Total injected error variance per output activation needing `n_tot`
    /// multiplies, in full-product units (module-level formula).
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn total_error_variance(&self, n_tot: usize) -> f64 {
        assert!(n_tot > 0, "total_error_variance: n_tot must be positive");
        let conversions = n_tot as f64 / self.base.n_mult as f64;
        let sw = Self::significance_sum(self.n_w, self.weight_slice_bits());
        let sx = Self::significance_sum(self.n_x, self.activation_slice_bits());
        conversions * self.slice_variance() * sw * sx
    }

    /// √ of [`PartitionedVmac::total_error_variance`].
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn total_error_sigma(&self, n_tot: usize) -> f64 {
        self.total_error_variance(n_tot).sqrt()
    }

    /// The unpartitioned ENOB that injects the same total error — lets a
    /// partitioned design be looked up on a measured [`crate::AccuracyCurve`].
    ///
    /// From `Var = (N_tot/N_mult)·(N_mult·2^−(E−1))²/12`:
    /// `E = 1 − ½·log2(12·Var·N_mult / (N_tot·N_mult²))`.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn equivalent_enob(&self, n_tot: usize) -> f64 {
        let var = self.total_error_variance(n_tot);
        let n_mult = self.base.n_mult as f64;
        let per_conv = var * n_mult / n_tot as f64; // Var(E_VMAC) equivalent
                                                    // per_conv = (n_mult · 2^-(E-1))² / 12
        1.0 - 0.5 * (12.0 * per_conv / (n_mult * n_mult)).log2()
    }

    /// Energy per MAC in pJ: `N_W·N_X` conversions at `slice_enob` per
    /// `N_mult` MACs.
    pub fn energy_per_mac_pj(&self) -> f64 {
        (self.n_w * self.n_x) as f64 * adc_energy_pj(self.slice_enob) / self.base.n_mult as f64
    }

    /// Energy per MAC in fJ.
    pub fn energy_per_mac_fj(&self) -> f64 {
        self.energy_per_mac_pj() * 1e3
    }

    /// The paper's benefit condition: partitioning saves energy iff
    /// `E_ADC(slice_enob) < E_ADC(reference_enob) / (N_W·N_X)`.
    pub fn saves_energy_vs(&self, reference_enob: f64) -> bool {
        adc_energy_pj(self.slice_enob)
            < adc_energy_pj(reference_enob) / (self.n_w * self.n_x) as f64
    }

    /// Energy per MAC (pJ) when lower-significance slices use graded,
    /// coarser conversions: slice `(i, j)` runs at
    /// `slice_enob − delta_bits·(i + j)`, clamped at 1 bit (paper §4:
    /// "a lower-precision conversion could be performed for the partial
    /// product(s) of low significance, further saving energy").
    ///
    /// # Panics
    ///
    /// Panics if `delta_bits` is negative.
    pub fn graded_energy_per_mac_pj(&self, delta_bits: f64) -> f64 {
        assert!(
            delta_bits >= 0.0,
            "graded_energy_per_mac_pj: delta must be non-negative"
        );
        let mut total = 0.0;
        for i in 0..self.n_w {
            for j in 0..self.n_x {
                let enob = (self.slice_enob - delta_bits * (i + j) as f64).max(1.0);
                total += adc_energy_pj(enob);
            }
        }
        total / self.base.n_mult as f64
    }

    /// Total error variance with the same graded resolutions as
    /// [`PartitionedVmac::graded_energy_per_mac_pj`].
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0` or `delta_bits` is negative.
    pub fn graded_error_variance(&self, n_tot: usize, delta_bits: f64) -> f64 {
        assert!(n_tot > 0, "graded_error_variance: n_tot must be positive");
        assert!(
            delta_bits >= 0.0,
            "graded_error_variance: delta must be non-negative"
        );
        let conversions = n_tot as f64 / self.base.n_mult as f64;
        let (bws, bxs) = (self.weight_slice_bits(), self.activation_slice_bits());
        let mut total = 0.0;
        for i in 0..self.n_w {
            for j in 0..self.n_x {
                let enob = (self.slice_enob - delta_bits * (i + j) as f64).max(1.0);
                let var = self.base.with_enob(enob).error_variance();
                let significance = 4f64.powi(-((i * bws + j * bxs) as i32));
                total += var * significance;
            }
        }
        conversions * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_partition_matches_unpartitioned() {
        let base = Vmac::new(8, 8, 8, 11.0);
        let p = PartitionedVmac::new(base, 1, 1, 11.0).unwrap();
        let n_tot = 1152;
        assert!((p.total_error_variance(n_tot) - base.total_error_variance(n_tot)).abs() < 1e-18);
        assert!((p.equivalent_enob(n_tot) - 11.0).abs() < 1e-9);
        assert!((p.energy_per_mac_pj() - crate::energy::mac_energy_pj(11.0, 8)).abs() < 1e-12);
    }

    #[test]
    fn uneven_split_rejected() {
        let base = Vmac::new(8, 8, 8, 11.0); // 7 magnitude bits
        assert!(matches!(
            PartitionedVmac::new(base, 2, 1, 8.0),
            Err(PartitionError::WeightSplit {
                magnitude_bits: 7,
                n_w: 2
            })
        ));
        // 9-bit operands (8 magnitude bits) split evenly in 2 or 4.
        let base9 = Vmac::new(9, 9, 8, 11.0);
        assert!(PartitionedVmac::new(base9, 2, 2, 8.0).is_ok());
        assert!(PartitionedVmac::new(base9, 4, 4, 8.0).is_ok());
    }

    #[test]
    fn partitioning_reduces_error_at_same_slice_enob() {
        // Splitting while keeping the per-conversion resolution constant
        // leaves the dominant slice error unchanged and adds only smaller,
        // down-weighted terms — but each slice spans fewer product bits,
        // so compare at the resolution the slice actually needs:
        // a 2x2 split of 9b operands covers (4+4) magnitude bits per
        // slice product vs (8+8) for the whole: 8 fewer bits needed.
        let base = Vmac::new(9, 9, 8, 12.0);
        let whole = base.total_error_variance(1024);
        // Slices use a 8-bit-cheaper ADC (12 − 8 = 4b would be extreme;
        // use 4 fewer bits and still win on error):
        let p = PartitionedVmac::new(base, 2, 2, 12.0 - 4.0).unwrap();
        // Down-shift: slice (i,j) significance 4^-(4(i+j)) shrinks the
        // contributions of all but the MSB slice pair.
        let sw = 1.0 + 4f64.powi(-4);
        let expected = (1024.0 / 8.0) * base.with_enob(8.0).error_variance() * sw * sw;
        assert!((p.total_error_variance(1024) - expected).abs() < expected * 1e-12);
        // 4 fewer ENOB bits costs 4^4 = 256x more per-slice variance; the
        // significance sums only add ~0.8%: net error is larger here.
        assert!(p.total_error_variance(1024) > whole);
        // But matching the whole-product error needs only ~enob-0 slices;
        // equivalently, same slice_enob gives near-equal error with
        // 4x cheaper conversions possible at lower resolution.
        let same = PartitionedVmac::new(base, 2, 2, 12.0).unwrap();
        let ratio = same.total_error_variance(1024) / whole;
        assert!(ratio < 1.02, "significance sums add only ~1%: {ratio}");
    }

    #[test]
    fn energy_benefit_condition() {
        // In the thermal region, dropping 4 bits cuts energy by 4^4 = 256x,
        // far more than the 4x conversion-count increase of a 2x2 split.
        let base = Vmac::new(9, 9, 8, 16.0);
        let p = PartitionedVmac::new(base, 2, 2, 12.0).unwrap();
        assert!(p.saves_energy_vs(16.0));
        assert!(p.energy_per_mac_pj() < crate::energy::mac_energy_pj(16.0, 8));
        // In the flat region there is nothing to save: 4x conversions at
        // the same 0.3 pJ floor quadruple the cost.
        let pf = PartitionedVmac::new(Vmac::new(9, 9, 8, 9.0), 2, 2, 6.0).unwrap();
        assert!(!pf.saves_energy_vs(9.0));
    }

    #[test]
    fn graded_resolution_saves_energy_with_bounded_error_growth() {
        let base = Vmac::new(9, 9, 8, 14.0);
        let p = PartitionedVmac::new(base, 2, 2, 14.0).unwrap();
        let e_flat = p.energy_per_mac_pj();
        let e_graded = p.graded_energy_per_mac_pj(2.0);
        assert!(e_graded < e_flat);
        let v_flat = p.graded_error_variance(1024, 0.0);
        let v_graded = p.graded_error_variance(1024, 2.0);
        // Coarser low-significance conversions add error, but the
        // significance weighting caps the growth well below the 4^Δ
        // blow-up a uniform downgrade would cause.
        assert!(v_graded > v_flat);
        assert!(
            v_graded < v_flat * 4.0,
            "graded error grew too much: {v_graded} vs {v_flat}"
        );
    }

    #[test]
    fn equivalent_enob_round_trips_variance() {
        let base = Vmac::new(9, 9, 16, 13.0);
        let p = PartitionedVmac::new(base, 4, 2, 9.0).unwrap();
        let n_tot = 2048;
        let e = p.equivalent_enob(n_tot);
        let reconstructed = base.with_enob(e).total_error_variance(n_tot);
        let direct = p.total_error_variance(n_tot);
        assert!((reconstructed / direct - 1.0).abs() < 1e-9);
    }
}
