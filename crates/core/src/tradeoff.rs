//! The (ENOB, N_mult) design space and the energy–accuracy tradeoff
//! (paper Fig. 8).
//!
//! The paper measures accuracy loss only at `N_mult = 8` and maps it to
//! every other `N_mult` through the error model: two design points inject
//! the same per-layer error — and therefore cost the same accuracy — when
//! `N_mult · 4^−ENOB` matches (Eq. 2). On the energy side, thermal-noise-
//! limited ADCs quadruple in energy per extra bit while `N_mult` amortizes
//! the conversion linearly (Eq. 3–4), so *the same trade* keeps energy
//! constant too: accuracy-loss and energy level curves are parallel, and
//! each loss target maps to a unique minimum energy per MAC.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use crate::energy::{mac_energy_fj, ENOB_BREAKPOINT};
use crate::vmac::Vmac;

/// Error building an [`AccuracyCurve`].
#[derive(Debug, Clone, PartialEq)]
pub enum CurveError {
    /// Fewer than two points were supplied.
    TooFewPoints,
    /// Two points share the same ENOB.
    DuplicateEnob(f64),
    /// A point has a non-finite coordinate.
    NonFinite,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::TooFewPoints => write!(f, "accuracy curve needs at least two points"),
            CurveError::DuplicateEnob(e) => write!(f, "duplicate ENOB {e} in accuracy curve"),
            CurveError::NonFinite => write!(f, "accuracy curve contains a non-finite coordinate"),
        }
    }
}

impl Error for CurveError {}

/// A measured top-1 accuracy-loss curve at a reference `N_mult`, with
/// linear interpolation in ENOB.
///
/// This is the paper's Fig. 4 data reduced to a lookup: the `fig8`
/// machinery maps any `(ENOB, N_mult)` to an equivalent ENOB at the
/// reference fan-in and reads the loss off this curve.
///
/// # Example
///
/// ```
/// use ams_core::tradeoff::AccuracyCurve;
///
/// let curve = AccuracyCurve::new(8, vec![(9.0, 0.10), (11.0, 0.01), (13.0, 0.0)])?;
/// assert!((curve.loss_at(10.0) - 0.055).abs() < 1e-9); // interpolated
/// assert_eq!(curve.loss_at(20.0), 0.0);                // clamped right
/// # Ok::<(), ams_core::tradeoff::CurveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyCurve {
    reference_n_mult: usize,
    points: Vec<(f64, f64)>,
}

impl AccuracyCurve {
    /// Builds a curve from `(ENOB, top-1 loss)` samples measured at
    /// `reference_n_mult`; points are sorted by ENOB.
    ///
    /// # Errors
    ///
    /// Returns a [`CurveError`] if fewer than two points are given, any
    /// coordinate is non-finite, or two points share an ENOB.
    pub fn new(reference_n_mult: usize, mut points: Vec<(f64, f64)>) -> Result<Self, CurveError> {
        if points.len() < 2 {
            return Err(CurveError::TooFewPoints);
        }
        if points.iter().any(|(e, l)| !e.is_finite() || !l.is_finite()) {
            return Err(CurveError::NonFinite);
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in points.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(CurveError::DuplicateEnob(w[0].0));
            }
        }
        assert!(
            reference_n_mult > 0,
            "AccuracyCurve: reference n_mult must be positive"
        );
        Ok(AccuracyCurve {
            reference_n_mult,
            points,
        })
    }

    /// The `N_mult` the samples were measured at.
    pub fn reference_n_mult(&self) -> usize {
        self.reference_n_mult
    }

    /// The `(ENOB, loss)` samples in ascending ENOB order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Loss at an arbitrary ENOB (reference `N_mult`), linearly
    /// interpolated and clamped to the measured range's end values.
    pub fn loss_at(&self, enob: f64) -> f64 {
        let pts = &self.points;
        if enob <= pts[0].0 {
            return pts[0].1;
        }
        if enob >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let ((e0, l0), (e1, l1)) = (w[0], w[1]);
            if enob <= e1 {
                let t = (enob - e0) / (e1 - e0);
                return l0 + t * (l1 - l0);
            }
        }
        unreachable!("enob within range must fall in a window")
    }

    /// Loss at an arbitrary `(ENOB, N_mult)` design point via the
    /// equal-error mapping (paper Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if `n_mult == 0`.
    pub fn loss_at_design(&self, enob: f64, n_mult: usize) -> f64 {
        self.loss_at(equivalent_enob(enob, n_mult, self.reference_n_mult))
    }

    /// The paper's ResNet-50/ImageNet retrained accuracy-loss curve
    /// (digitized from Fig. 4's "retrained" series, `N_mult = 8`).
    ///
    /// Feeding this curve to [`TradeoffGrid::evaluate`] reproduces the
    /// paper's headline numbers — < 0.4 % loss ⇒ ~313 fJ/MAC, < 1 % ⇒
    /// ~78 fJ/MAC — from this crate's energy model and mapping alone,
    /// independent of any local training substrate.
    pub fn paper_resnet50_reference() -> Self {
        AccuracyCurve::new(
            8,
            vec![
                (9.0, 0.055),
                (9.5, 0.042),
                (10.0, 0.030),
                (10.5, 0.020),
                (11.0, 0.0095),
                (11.5, 0.006),
                (12.0, 0.0035),
                (12.5, 0.001),
                (13.0, 0.0),
            ],
        )
        .expect("static reference curve is valid")
    }
}

/// Maps a design point's ENOB to the ENOB that injects the *same*
/// per-layer error at the reference fan-in:
/// `ENOB' = ENOB − ½·log2(N_mult / N_ref)` (from Eq. 2's
/// `Var ∝ N_mult · 4^−ENOB`).
///
/// # Panics
///
/// Panics if either fan-in is zero.
pub fn equivalent_enob(enob: f64, n_mult: usize, reference_n_mult: usize) -> f64 {
    assert!(
        n_mult > 0 && reference_n_mult > 0,
        "equivalent_enob: fan-ins must be positive"
    );
    enob - 0.5 * (n_mult as f64 / reference_n_mult as f64).log2()
}

/// One evaluated cell of the Fig. 8 design-space grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Conversion resolution.
    pub enob: f64,
    /// Analog fan-in.
    pub n_mult: usize,
    /// Predicted top-1 accuracy loss (fraction, relative to the quantized
    /// baseline).
    pub loss: f64,
    /// Minimum energy per MAC in fJ (paper Eq. 3–4).
    pub mac_energy_fj: f64,
}

/// The evaluated (ENOB × N_mult) grid — the paper's Fig. 8 as data.
///
/// Cells are stored row-major: all `n_mults` for the first ENOB, then the
/// next ENOB, and so on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffGrid {
    enobs: Vec<f64>,
    n_mults: Vec<usize>,
    cells: Vec<DesignPoint>,
}

impl TradeoffGrid {
    /// Evaluates the grid from a measured accuracy curve.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn evaluate(curve: &AccuracyCurve, enobs: &[f64], n_mults: &[usize]) -> Self {
        assert!(
            !enobs.is_empty() && !n_mults.is_empty(),
            "TradeoffGrid: empty axis"
        );
        let mut cells = Vec::with_capacity(enobs.len() * n_mults.len());
        for &enob in enobs {
            for &n_mult in n_mults {
                cells.push(DesignPoint {
                    enob,
                    n_mult,
                    loss: curve.loss_at_design(enob, n_mult),
                    mac_energy_fj: mac_energy_fj(enob, n_mult),
                });
            }
        }
        TradeoffGrid {
            enobs: enobs.to_vec(),
            n_mults: n_mults.to_vec(),
            cells,
        }
    }

    /// The ENOB axis.
    pub fn enobs(&self) -> &[f64] {
        &self.enobs
    }

    /// The N_mult axis.
    pub fn n_mults(&self) -> &[usize] {
        &self.n_mults
    }

    /// All evaluated cells, row-major in (ENOB, N_mult).
    pub fn cells(&self) -> &[DesignPoint] {
        &self.cells
    }

    /// The cell at `(enob_idx, n_mult_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell(&self, enob_idx: usize, n_mult_idx: usize) -> &DesignPoint {
        assert!(enob_idx < self.enobs.len(), "enob index out of range");
        assert!(n_mult_idx < self.n_mults.len(), "n_mult index out of range");
        &self.cells[enob_idx * self.n_mults.len() + n_mult_idx]
    }

    /// The cheapest design meeting a loss target, if any cell qualifies —
    /// the paper's "< 0.4 % accuracy loss requires ≥ ~313 fJ/MAC" query.
    pub fn min_energy_for_loss(&self, max_loss: f64) -> Option<DesignPoint> {
        self.cells
            .iter()
            .filter(|c| c.loss < max_loss)
            .min_by(|a, b| {
                a.mac_energy_fj
                    .partial_cmp(&b.mac_energy_fj)
                    .expect("finite energy")
            })
            .copied()
    }

    /// Verifies the paper's parallel-level-curve claim over this grid's
    /// thermal-noise-limited region: along any equal-loss trade
    /// (`N_mult → 2·N_mult`, `ENOB → ENOB + ½`), energy stays constant.
    /// Returns the maximum relative energy deviation observed.
    pub fn level_curve_deviation(&self) -> f64 {
        let mut worst = 0.0f64;
        for c in &self.cells {
            if c.enob <= ENOB_BREAKPOINT {
                continue; // flat-energy region: the claim holds only in the thermal regime
            }
            let traded = mac_energy_fj(c.enob + 0.5, c.n_mult * 2);
            let dev = (traded / c.mac_energy_fj - 1.0).abs();
            worst = worst.max(dev);
        }
        worst
    }
}

/// Convenience: the per-layer error σ of a design point for a layer with
/// `n_tot` multiplies, going through [`Vmac`].
///
/// # Panics
///
/// Panics if any count is zero.
pub fn design_sigma(enob: f64, n_mult: usize, n_tot: usize) -> f64 {
    Vmac::new(8, 8, n_mult, enob).total_error_sigma(n_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_curve() -> AccuracyCurve {
        AccuracyCurve::new(
            8,
            vec![
                (9.0, 0.12),
                (10.0, 0.06),
                (11.0, 0.02),
                (12.0, 0.004),
                (13.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn interpolation_and_clamping() {
        let c = toy_curve();
        assert_eq!(c.loss_at(9.0), 0.12);
        assert!((c.loss_at(10.5) - 0.04).abs() < 1e-12);
        assert_eq!(c.loss_at(5.0), 0.12);
        assert_eq!(c.loss_at(99.0), 0.0);
    }

    #[test]
    fn equivalent_enob_doubles() {
        // Doubling N_mult costs half a bit.
        assert!((equivalent_enob(12.0, 16, 8) - 11.5).abs() < 1e-12);
        assert!((equivalent_enob(12.0, 4, 8) - 12.5).abs() < 1e-12);
        assert_eq!(equivalent_enob(12.0, 8, 8), 12.0);
    }

    #[test]
    fn equal_error_mapping_preserves_sigma() {
        // (ENOB, N_mult) and (equivalent ENOB, ref N_mult) inject the same σ.
        let n_tot = 4608;
        for &(enob, n_mult) in &[(12.0f64, 64usize), (10.5, 2), (13.0, 256)] {
            let direct = design_sigma(enob, n_mult, n_tot);
            let mapped = design_sigma(equivalent_enob(enob, n_mult, 8), 8, n_tot);
            assert!((direct / mapped - 1.0).abs() < 1e-9, "{enob},{n_mult}");
        }
    }

    #[test]
    fn grid_level_curves_parallel_in_thermal_region() {
        let c = toy_curve();
        let enobs: Vec<f64> = (0..8).map(|i| 10.75 + 0.25 * i as f64).collect();
        let n_mults = vec![2usize, 4, 8, 16, 32, 64];
        let grid = TradeoffGrid::evaluate(&c, &enobs, &n_mults);
        // The 6.02 dB/bit constant in Eq. 3 rounds 20·log10(2) = 6.0206…,
        // so the ×4-per-bit identity holds to ~1e-4 relative.
        assert!(
            grid.level_curve_deviation() < 1e-3,
            "{}",
            grid.level_curve_deviation()
        );
    }

    #[test]
    fn min_energy_for_loss_is_monotone() {
        let c = toy_curve();
        let enobs: Vec<f64> = (0..17).map(|i| 9.0 + 0.25 * i as f64).collect();
        let n_mults = vec![2usize, 4, 8, 16, 32, 64, 128];
        let grid = TradeoffGrid::evaluate(&c, &enobs, &n_mults);
        let e_04 = grid
            .min_energy_for_loss(0.004)
            .expect("some design meets 0.4%");
        let e_1 = grid
            .min_energy_for_loss(0.01)
            .expect("some design meets 1%");
        assert!(
            e_04.mac_energy_fj >= e_1.mac_energy_fj,
            "tighter accuracy must cost at least as much energy"
        );
    }

    #[test]
    fn grid_indexing() {
        let c = toy_curve();
        let grid = TradeoffGrid::evaluate(&c, &[10.0, 11.0], &[4, 8]);
        assert_eq!(grid.cells().len(), 4);
        let p = grid.cell(1, 0);
        assert_eq!((p.enob, p.n_mult), (11.0, 4));
    }

    #[test]
    fn curve_validation() {
        assert_eq!(
            AccuracyCurve::new(8, vec![(9.0, 0.1)]).unwrap_err(),
            CurveError::TooFewPoints
        );
        assert_eq!(
            AccuracyCurve::new(8, vec![(9.0, 0.1), (9.0, 0.2)]).unwrap_err(),
            CurveError::DuplicateEnob(9.0)
        );
        assert_eq!(
            AccuracyCurve::new(8, vec![(9.0, 0.1), (f64::NAN, 0.2)]).unwrap_err(),
            CurveError::NonFinite
        );
    }
}
