//! The AMS VMAC cell: configuration, error model (paper Eq. 1–2) and
//! precision budget (paper Fig. 2).

use serde::{Deserialize, Serialize};

/// Configuration of one AMS vector multiply-accumulate cell (paper Fig. 1).
///
/// The cell takes `n_mult` weight–activation pairs (`B_W`- and `B_X`-bit
/// sign-magnitude operands), multiplies each pair in the analog domain,
/// sums the products, and digitizes the sum with an effective resolution of
/// `enob` bits. `enob` is the single independent variable that lumps *all*
/// AMS error sources — multiplier thermal noise and nonlinearity, ADC
/// thermal noise, nonlinearity and quantization — referred to the ADC
/// input.
///
/// DoReFa quantization bounds every product to `[-1, 1]`, so the analog
/// sum lives in `[-n_mult, n_mult]` and the effective LSB is
/// `2·n_mult / 2^enob = n_mult · 2^−(enob−1)` (paper Eq. 1).
///
/// # Example
///
/// ```
/// use ams_core::vmac::Vmac;
///
/// let v = Vmac::new(8, 8, 8, 10.0);
/// // Eq. 1: Var = (N_mult · 2^-(ENOB-1))² / 12
/// let lsb = 8.0 * 2f64.powf(-9.0);
/// assert!((v.error_variance() - lsb * lsb / 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vmac {
    /// Weight operand bit-width `B_W` (sign-magnitude).
    pub bw: u32,
    /// Activation operand bit-width `B_X` (sign-magnitude).
    pub bx: u32,
    /// Products summed in the analog domain per conversion (`N_mult`).
    pub n_mult: usize,
    /// Effective number of bits of the conversion (`ENOB_VMAC`); may be
    /// fractional (the paper sweeps half-bit steps).
    pub enob: f64,
}

impl Vmac {
    /// Creates a VMAC configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bw` or `bx` is outside `1..=32`, `n_mult == 0`, or
    /// `enob` is not a positive finite number.
    pub fn new(bw: u32, bx: u32, n_mult: usize, enob: f64) -> Self {
        assert!(
            (1..=32).contains(&bw),
            "Vmac: bw must be in 1..=32, got {bw}"
        );
        assert!(
            (1..=32).contains(&bx),
            "Vmac: bx must be in 1..=32, got {bx}"
        );
        assert!(n_mult > 0, "Vmac: n_mult must be positive");
        assert!(
            enob.is_finite() && enob > 0.0,
            "Vmac: enob must be positive and finite, got {enob}"
        );
        Vmac {
            bw,
            bx,
            n_mult,
            enob,
        }
    }

    /// Returns a copy with a different `ENOB` (convenient in sweeps).
    pub fn with_enob(mut self, enob: f64) -> Self {
        assert!(
            enob.is_finite() && enob > 0.0,
            "Vmac: enob must be positive and finite, got {enob}"
        );
        self.enob = enob;
        self
    }

    /// Returns a copy with a different `N_mult`.
    pub fn with_n_mult(mut self, n_mult: usize) -> Self {
        assert!(n_mult > 0, "Vmac: n_mult must be positive");
        self.n_mult = n_mult;
        self
    }

    /// The effective LSB of the conversion in product units:
    /// `LSB = 2^(1 + log2(N_mult) − ENOB) = N_mult · 2^−(ENOB−1)`.
    pub fn lsb(&self) -> f64 {
        self.n_mult as f64 * 2f64.powf(-(self.enob - 1.0))
    }

    /// Error variance at the output of one VMAC conversion (paper Eq. 1):
    /// `Var(E_VMAC) = LSB² / 12`.
    ///
    /// By definition of ENOB this holds regardless of the error's
    /// distribution (Pelgrom, *Analog-to-Digital Conversion*).
    pub fn error_variance(&self) -> f64 {
        let lsb = self.lsb();
        lsb * lsb / 12.0
    }

    /// Total error variance after digitally accumulating the
    /// `N_tot / N_mult` VMAC outputs needed for one output activation
    /// (paper Eq. 2), assuming independent, identically distributed VMAC
    /// errors:
    /// `Var(E_tot) = (N_tot / N_mult) · Var(E_VMAC)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn total_error_variance(&self, n_tot: usize) -> f64 {
        assert!(n_tot > 0, "total_error_variance: n_tot must be positive");
        (n_tot as f64 / self.n_mult as f64) * self.error_variance()
    }

    /// Standard deviation of the total error (√ of
    /// [`Vmac::total_error_variance`]); the σ of the Gaussian the paper
    /// injects at each convolution output.
    ///
    /// Simplifies to `√(N_tot·N_mult) · 2^−(ENOB−1) / √12`.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn total_error_sigma(&self, n_tot: usize) -> f64 {
        self.total_error_variance(n_tot).sqrt()
    }

    /// Number of VMAC conversions needed per output activation, rounded up.
    ///
    /// # Panics
    ///
    /// Panics if `n_tot == 0`.
    pub fn conversions_per_output(&self, n_tot: usize) -> usize {
        assert!(n_tot > 0, "conversions_per_output: n_tot must be positive");
        n_tot.div_ceil(self.n_mult)
    }

    /// The precision budget of this cell (paper Fig. 2).
    pub fn precision_budget(&self) -> PrecisionBudget {
        PrecisionBudget::new(self.bw, self.bx, self.n_mult, self.enob)
    }
}

impl Default for Vmac {
    /// The paper's baseline configuration: `B_W = B_X = 8`, `N_mult = 8`,
    /// `ENOB = 12` (the knee of Fig. 4).
    fn default() -> Self {
        Vmac::new(8, 8, 8, 12.0)
    }
}

impl std::fmt::Display for Vmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VMAC(BW={}, BX={}, Nmult={}, ENOB={:.1})",
            self.bw, self.bx, self.n_mult, self.enob
        )
    }
}

/// The ideal-vs-recovered bit budget of an AMS dot product (paper Fig. 2).
///
/// The ideal product of sign-magnitude operands has `B_W + B_X − 2`
/// magnitude bits plus a sign; analog accumulation of `N_mult` products
/// adds `log2(N_mult)` bits; the ADC recovers only the `ENOB` most
/// significant of these, losing the rest.
///
/// # Example
///
/// ```
/// use ams_core::vmac::PrecisionBudget;
///
/// let b = PrecisionBudget::new(8, 8, 8, 12.0);
/// assert_eq!(b.ideal_bits(), 1.0 + 14.0 + 3.0);
/// assert_eq!(b.lost_bits(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionBudget {
    product_magnitude_bits: u32,
    accumulation_bits: f64,
    recovered_bits: f64,
}

impl PrecisionBudget {
    /// Computes the budget for the given operand widths, fan-in and ENOB.
    ///
    /// # Panics
    ///
    /// Panics if `bw` or `bx` is zero or `n_mult == 0`.
    pub fn new(bw: u32, bx: u32, n_mult: usize, enob: f64) -> Self {
        assert!(
            bw >= 1 && bx >= 1,
            "PrecisionBudget: operand widths must be positive"
        );
        assert!(n_mult > 0, "PrecisionBudget: n_mult must be positive");
        PrecisionBudget {
            product_magnitude_bits: bw + bx - 2,
            accumulation_bits: (n_mult as f64).log2(),
            recovered_bits: enob,
        }
    }

    /// Magnitude bits of the ideal pairwise product (`B_W + B_X − 2`).
    pub fn product_magnitude_bits(&self) -> u32 {
        self.product_magnitude_bits
    }

    /// Extra bits contributed by summing `N_mult` products
    /// (`log2(N_mult)`).
    pub fn accumulation_bits(&self) -> f64 {
        self.accumulation_bits
    }

    /// Total bits of the ideal digital dot product, including the sign:
    /// `1 + (B_W + B_X − 2) + log2(N_mult)`.
    pub fn ideal_bits(&self) -> f64 {
        1.0 + self.product_magnitude_bits as f64 + self.accumulation_bits
    }

    /// Bits the ADC recovers (the MSB of which is the sign): `ENOB`.
    pub fn recovered_bits(&self) -> f64 {
        self.recovered_bits
    }

    /// Bits of lesser significance lost to the AMS implementation
    /// (never negative; an over-provisioned ADC loses nothing).
    pub fn lost_bits(&self) -> f64 {
        (self.ideal_bits() - self.recovered_bits).max(0.0)
    }

    /// Whether the conversion is lossless (`ENOB ≥` ideal bits) — in that
    /// regime the AMS hardware is digitally exact and the injected error
    /// model overestimates true behaviour.
    pub fn is_lossless(&self) -> bool {
        self.lost_bits() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_closed_form() {
        // Var(E_VMAC) = (N_mult · 2^-(ENOB-1))² / 12 at several points.
        for &(n_mult, enob) in &[(8usize, 9.0f64), (16, 12.5), (64, 11.0), (1, 6.0)] {
            let v = Vmac::new(8, 8, n_mult, enob);
            let expected = (n_mult as f64 * 2f64.powf(-(enob - 1.0))).powi(2) / 12.0;
            assert!((v.error_variance() - expected).abs() < 1e-15 * expected.max(1.0));
        }
    }

    #[test]
    fn eq2_scales_linearly_in_ntot() {
        let v = Vmac::new(8, 8, 8, 10.0);
        let v1 = v.total_error_variance(576);
        let v2 = v.total_error_variance(1152);
        assert!((v2 / v1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_simplified_form() {
        // σ = √(N_tot·N_mult) · 2^-(ENOB-1) / √12
        let v = Vmac::new(8, 8, 8, 11.5);
        let n_tot = 4608;
        let direct = v.total_error_sigma(n_tot);
        let simplified = ((n_tot * 8) as f64).sqrt() * 2f64.powf(-10.5) / 12f64.sqrt();
        assert!((direct - simplified).abs() < 1e-12);
    }

    #[test]
    fn extra_bit_quarters_variance() {
        // "for each extra digitized bit, the variance of the total error
        //  drops by a factor of four" (paper §4).
        let v = Vmac::new(8, 8, 8, 10.0);
        let r = v.total_error_variance(1000) / v.with_enob(11.0).total_error_variance(1000);
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn nmult_linear_dependence() {
        // "higher N_mult introduces quadratically greater error per VMAC
        //  but requires linearly fewer VMACs, resulting in an overall
        //  linear dependence" (paper §4).
        let a = Vmac::new(8, 8, 8, 10.0).total_error_variance(4096);
        let b = Vmac::new(8, 8, 16, 10.0).total_error_variance(4096);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conversions_round_up() {
        let v = Vmac::new(8, 8, 8, 10.0);
        assert_eq!(v.conversions_per_output(8), 1);
        assert_eq!(v.conversions_per_output(9), 2);
        assert_eq!(v.conversions_per_output(576), 72);
    }

    #[test]
    fn fig2_budget() {
        let b = PrecisionBudget::new(6, 4, 16, 9.0);
        assert_eq!(b.product_magnitude_bits(), 8);
        assert_eq!(b.accumulation_bits(), 4.0);
        assert_eq!(b.ideal_bits(), 13.0);
        assert_eq!(b.lost_bits(), 4.0);
        assert!(!b.is_lossless());
        assert!(PrecisionBudget::new(6, 4, 16, 13.0).is_lossless());
    }

    #[test]
    fn display_is_informative() {
        let v = Vmac::new(6, 6, 32, 12.5);
        assert_eq!(v.to_string(), "VMAC(BW=6, BX=6, Nmult=32, ENOB=12.5)");
    }

    #[test]
    #[should_panic(expected = "enob must be positive")]
    fn rejects_nonpositive_enob() {
        Vmac::new(8, 8, 8, 0.0);
    }
}
