//! The AMS VMAC error and energy models of Rekhi et al., DAC 2019.
//!
//! This crate is the paper's primary contribution, implemented as a
//! library. The paper abstracts *any* analog/mixed-signal (AMS) vector
//! multiply-accumulate unit — resistive crossbar, switched capacitor, or
//! otherwise — into an **error-free dot product plus additive error**
//! referred to the input of the ADC that digitizes the analog partial sum.
//! Two parameters describe the hardware:
//!
//! * `N_mult` — how many weight–activation products are summed in the
//!   analog domain per conversion, and
//! * `ENOB_VMAC` — the effective number of bits of the conversion,
//!   absorbing multiplier noise/nonlinearity and ADC noise, nonlinearity
//!   and quantization.
//!
//! # Map of the crate
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Eq. 1 & 2 — error variance, Fig. 2 — precision budget | [`vmac`] |
//! | Fig. 3 — forward-pass-only Gaussian injection | [`inject`] |
//! | Eq. 3 & 4 — ADC / MAC energy bounds, Fig. 7 — survey | [`energy`] |
//! | Fig. 8 — (ENOB, N_mult) design space, energy–accuracy tradeoff | [`tradeoff`] |
//! | §4 — per-VMAC simulation, ΔΣ error recycling, reference scaling | [`vmac_sim`] |
//! | §4 — multiplication partitioning | [`partition`] |
//! | §4 — pluggable error-model selection (lumped / composite / per-VMAC) | [`error_model`] |
//!
//! # Example: the paper's headline numbers
//!
//! ```
//! use ams_core::vmac::Vmac;
//! use ams_core::energy::mac_energy_fj;
//!
//! // A VMAC summing 8 products, digitized at 12 effective bits:
//! let vmac = Vmac::new(8, 8, 8, 12.0);
//! // ResNet-50's most common 3x3x512 convolution needs N_tot = 4608
//! // multiplies per output activation.
//! let sigma = vmac.total_error_sigma(4608);
//! assert!(sigma > 0.0);
//! // The paper's ~313 fJ/MAC figure is this design point's energy:
//! let e = mac_energy_fj(12.0, 8);
//! assert!((e - 313.0).abs() < 15.0, "{e}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod composite;
pub mod energy;
pub mod error_model;
pub mod inject;
pub mod mismatch;
pub mod partition;
pub mod tradeoff;
pub mod vmac;
pub mod vmac_sim;

pub use energy::{adc_energy_pj, mac_energy_fj, mac_energy_pj};
pub use error_model::{ErrorModel, ErrorModelConfig, ErrorModelKind, PartitionSpec};
pub use inject::GaussianInjector;
pub use tradeoff::{AccuracyCurve, DesignPoint, TradeoffGrid};
pub use vmac::{PrecisionBudget, Vmac};
