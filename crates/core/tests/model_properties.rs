//! Property-based tests of the AMS error/energy models beyond the inline
//! unit tests: partitioning degeneracy, ΔΣ bounds, survey structure and
//! the design-space algebra.

use ams_core::energy::{
    adc_energy_pj, mac_energy_pj, schreier_fom_db, synthesize_survey, SCHREIER_FOM_DB,
};
use ams_core::partition::PartitionedVmac;
use ams_core::tradeoff::{equivalent_enob, AccuracyCurve, TradeoffGrid};
use ams_core::vmac::Vmac;
use ams_core::vmac_sim::{AdcBehavior, VmacSimulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A 1x1 partition at the base ENOB is exactly the unpartitioned cell,
    /// in both error and energy.
    #[test]
    fn partition_degenerates(
        bw in 2u32..12,
        n_mult_log in 0u32..8,
        enob in 2.0f64..16.0,
        n_tot in 1usize..4096,
    ) {
        let n_mult = 1usize << n_mult_log;
        let base = Vmac::new(bw, bw, n_mult, enob);
        let p = PartitionedVmac::new(base, 1, 1, enob).expect("1x1 always splits");
        prop_assert!((p.total_error_variance(n_tot) - base.total_error_variance(n_tot)).abs()
            <= 1e-12 * base.total_error_variance(n_tot).max(1e-30));
        prop_assert!((p.energy_per_mac_pj() - mac_energy_pj(enob, n_mult)).abs() < 1e-12);
    }

    /// Partition error decreases monotonically in slice ENOB.
    #[test]
    fn partition_error_monotone_in_slice_enob(slice_enob in 2.0f64..14.0) {
        let base = Vmac::new(9, 9, 8, 14.0);
        let lo = PartitionedVmac::new(base, 2, 2, slice_enob).expect("clean split");
        let hi = PartitionedVmac::new(base, 2, 2, slice_enob + 1.0).expect("clean split");
        prop_assert!(hi.total_error_variance(512) < lo.total_error_variance(512));
    }

    /// Graded low-significance resolution never increases energy and never
    /// decreases error.
    #[test]
    fn graded_partition_tradeoff(delta in 0.0f64..4.0) {
        let base = Vmac::new(9, 9, 8, 13.0);
        let p = PartitionedVmac::new(base, 2, 2, 13.0).expect("clean split");
        prop_assert!(p.graded_energy_per_mac_pj(delta) <= p.energy_per_mac_pj() + 1e-12);
        prop_assert!(p.graded_error_variance(512, delta) >= p.total_error_variance(512) - 1e-18);
    }

    /// ΔΣ total error is bounded by the final conversion's half-step for
    /// any chunking.
    #[test]
    fn delta_sigma_bound(
        n_mult_log in 1u32..5,
        chunks in 1usize..16,
        extra in 0.0f64..4.0,
        seed in 0u64..500,
    ) {
        let n_mult = 1usize << n_mult_log;
        let vmac = Vmac::new(8, 8, n_mult, 7.0);
        let sim = VmacSimulator::new(vmac, AdcBehavior::DeltaSigma { final_extra_bits: extra });
        use rand::Rng;
        let mut r = ams_tensor::rng::seeded(seed);
        let n = n_mult * chunks;
        let w: Vec<f32> = (0..n).map(|_| r.gen::<f32>() * 2.0 - 1.0).collect();
        let x: Vec<f32> = (0..n).map(|_| r.gen::<f32>()).collect();
        let final_step = 2.0 * n_mult as f64 / 2f64.powf(7.0 + extra);
        prop_assert!(sim.dot_error(&w, &x).abs() <= final_step / 2.0 + 1e-9);
    }

    /// Every synthetic survey point is consistent: above the Eq. 3 bound
    /// and at or below the 187 dB FOM in the thermal region.
    #[test]
    fn survey_points_consistent(n in 1usize..200, seed in 0u64..100) {
        let pts = synthesize_survey(n, seed);
        prop_assert_eq!(pts.len(), n);
        for p in &pts {
            prop_assert!(p.energy_pj >= adc_energy_pj(p.enob) * 0.999);
            prop_assert!(
                schreier_fom_db(p.enob, p.energy_pj) <= SCHREIER_FOM_DB + 1e-6
                    || p.enob <= ams_core::energy::ENOB_BREAKPOINT
            );
        }
    }

    /// Grid loss is monotone: more ENOB never loses accuracy, more N_mult
    /// never gains it (for a monotone measured curve).
    #[test]
    fn grid_monotonicity(e_idx in 0usize..6, n_idx in 0usize..4) {
        let curve = AccuracyCurve::new(
            8,
            vec![(4.0, 0.5), (6.0, 0.2), (8.0, 0.05), (10.0, 0.01), (12.0, 0.0)],
        ).expect("valid");
        let enobs: Vec<f64> = (0..8).map(|i| 4.0 + i as f64).collect();
        let n_mults = vec![2usize, 8, 32, 128, 512];
        let grid = TradeoffGrid::evaluate(&curve, &enobs, &n_mults);
        prop_assert!(grid.cell(e_idx + 1, n_idx).loss <= grid.cell(e_idx, n_idx).loss + 1e-12);
        prop_assert!(grid.cell(e_idx, n_idx + 1).loss >= grid.cell(e_idx, n_idx).loss - 1e-12);
        // Energy moves the other way.
        prop_assert!(grid.cell(e_idx + 1, n_idx).mac_energy_fj >= grid.cell(e_idx, n_idx).mac_energy_fj - 1e-12);
        prop_assert!(grid.cell(e_idx, n_idx + 1).mac_energy_fj < grid.cell(e_idx, n_idx).mac_energy_fj);
    }

    /// The equivalent-ENOB map is a group action: mapping N_mult a→b→c
    /// equals mapping a→c directly.
    #[test]
    fn equivalent_enob_composes(
        enob in 4.0f64..16.0,
        a_log in 0u32..9,
        b_log in 0u32..9,
        c_log in 0u32..9,
    ) {
        let (a, b, c) = (1usize << a_log, 1usize << b_log, 1usize << c_log);
        let via_b = equivalent_enob(equivalent_enob(enob, a, b), b, c);
        let direct = equivalent_enob(enob, a, c);
        prop_assert!((via_b - direct).abs() < 1e-9);
    }
}

#[test]
fn paper_headline_numbers_from_reference_curve() {
    // Feeding the digitized ResNet-50 curve through the Fig. 8 machinery
    // must reproduce the paper's conclusions: < 0.4 % loss ⇒ ~313 fJ/MAC
    // and < 1 % ⇒ ~78 fJ/MAC.
    let curve = AccuracyCurve::paper_resnet50_reference();
    let enobs: Vec<f64> = (0..21).map(|i| 9.0 + 0.25 * i as f64).collect();
    let n_mults: Vec<usize> = (1..=9).map(|i| 1usize << i).collect();
    let grid = TradeoffGrid::evaluate(&curve, &enobs, &n_mults);
    let e04 = grid
        .min_energy_for_loss(0.004)
        .expect("0.4% reachable")
        .mac_energy_fj;
    let e1 = grid
        .min_energy_for_loss(0.01)
        .expect("1% reachable")
        .mac_energy_fj;
    assert!(
        (e04 - 313.0).abs() < 20.0,
        "<0.4% loss: {e04} fJ/MAC (paper ~313)"
    );
    assert!(
        (e1 - 78.0).abs() < 12.0,
        "<1% loss: {e1} fJ/MAC (paper ~78)"
    );
    // And the one-to-one property: tighter accuracy strictly costs more.
    assert!(e04 > e1);
}

#[test]
fn partition_rejects_then_accepts_after_width_fix() {
    // 8b operands (7 magnitude bits) cannot split in 2; 9b (8 bits) can.
    let bad = Vmac::new(8, 8, 8, 12.0);
    assert!(PartitionedVmac::new(bad, 2, 2, 10.0).is_err());
    let good = Vmac::new(9, 9, 8, 12.0);
    assert!(PartitionedVmac::new(good, 2, 2, 10.0).is_ok());
}
