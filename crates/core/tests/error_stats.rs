//! Statistical validation of the paper's error model against the chunked
//! VMAC simulator (all at fixed seeds, so every run is deterministic):
//!
//! * Eq. 1 — one conversion's empirical error variance matches
//!   `Vmac::error_variance()` (`LSB²/12`) within a chi-square-derived
//!   tolerance,
//! * Eq. 2 — the total error variance scales as `N_tot / N_mult`,
//! * the lumped-Gaussian assumption — the total error of many chunked
//!   conversions is approximately Gaussian (bounded skewness and excess
//!   kurtosis), which is what licenses injecting `N(0, σ²)` in layers.

use ams_core::inject::layer_error_sigma;
use ams_core::vmac::Vmac;
use ams_core::vmac_sim::{AdcBehavior, VmacSimulator};
use rand::Rng;

/// Draws `trials` independent dot-product errors of length `n_tot` from
/// the quantizing simulator, with DoReFa-range operands (weights in
/// `[-1, 1]`, activations in `[0, 1]`).
fn error_samples(vmac: Vmac, n_tot: usize, trials: usize, seed: u64) -> Vec<f64> {
    let sim = VmacSimulator::new(vmac, AdcBehavior::Quantizing);
    let mut rng = ams_tensor::rng::seeded(seed);
    let mut w = vec![0.0f32; n_tot];
    let mut x = vec![0.0f32; n_tot];
    (0..trials)
        .map(|_| {
            for v in &mut w {
                *v = rng.gen::<f32>() * 2.0 - 1.0;
            }
            for v in &mut x {
                *v = rng.gen::<f32>();
            }
            sim.dot_error(&w, &x)
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn central_moment(xs: &[f64], m: f64, k: i32) -> f64 {
    xs.iter().map(|&x| (x - m).powi(k)).sum::<f64>() / xs.len() as f64
}

fn sample_variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// The acceptance band for a sample-variance / model-variance ratio.
///
/// For `n` samples of a distribution that is roughly Gaussian (or lighter
/// tailed, like the near-uniform single-conversion error), `(n−1)s²/σ²`
/// is approximately chi-square with `n−1` degrees of freedom, so
/// `s²/σ² ∈ 1 ± z·sqrt(2/(n−1))` holds with overwhelming probability for
/// a generous `z`. We use `z = 5`; at `n = 4000` that is a ±11 % band,
/// and the test is deterministic (fixed seed) so it either passes forever
/// or flags a real model change.
fn variance_ratio_tolerance(n: usize) -> f64 {
    5.0 * (2.0 / (n as f64 - 1.0)).sqrt()
}

const TRIALS: usize = 4000;

#[test]
fn eq1_single_conversion_variance_matches_model() {
    // N_tot == N_mult: the whole reduction is one analog chunk, one
    // conversion — the error is exactly the Eq. 1 quantization error.
    for (enob, n_mult) in [(5.0, 8usize), (6.0, 8), (6.0, 16)] {
        let vmac = Vmac::new(8, 8, n_mult, enob);
        let samples = error_samples(vmac, n_mult, TRIALS, 0xE41);
        let model = vmac.error_variance();
        let ratio = sample_variance(&samples) / model;
        let tol = variance_ratio_tolerance(TRIALS);
        assert!(
            (ratio - 1.0).abs() < tol,
            "Eq. 1 variance ratio {ratio:.4} outside 1 ± {tol:.4} (enob {enob}, n_mult {n_mult})"
        );
        // Quantization error has no systematic offset at a mid-tread grid.
        assert!(
            mean(&samples).abs() < 5.0 * (model / TRIALS as f64).sqrt(),
            "single-conversion error mean {} is biased",
            mean(&samples)
        );
    }
}

#[test]
fn eq2_total_variance_scales_with_conversion_count() {
    let n_mult = 8usize;
    let vmac = Vmac::new(8, 8, n_mult, 6.0);
    let tol = variance_ratio_tolerance(TRIALS);
    for chunks in [2usize, 8, 32] {
        let n_tot = chunks * n_mult;
        let samples = error_samples(vmac, n_tot, TRIALS, 0xE42 + chunks as u64);
        let model = vmac.total_error_variance(n_tot);
        // The model itself is exactly (N_tot / N_mult) · Var_VMAC ...
        assert!(
            (model / (chunks as f64 * vmac.error_variance()) - 1.0).abs() < 1e-12,
            "Eq. 2 must be an exact multiple of Eq. 1"
        );
        // ... and the chunked simulator's empirical variance matches it.
        let ratio = sample_variance(&samples) / model;
        assert!(
            (ratio - 1.0).abs() < tol,
            "Eq. 2 variance ratio {ratio:.4} outside 1 ± {tol:.4} at N_tot {n_tot}"
        );
    }
}

#[test]
fn eq2_sigma_consistency_between_model_and_injector() {
    // layer_error_sigma (what the layers inject) is the f32 image of
    // total_error_sigma, which is the square root of total_error_variance.
    let vmac = Vmac::new(8, 8, 8, 5.5);
    for n_tot in [8usize, 64, 576] {
        let sigma = vmac.total_error_sigma(n_tot);
        assert!((sigma * sigma / vmac.total_error_variance(n_tot) - 1.0).abs() < 1e-12);
        assert!((f64::from(layer_error_sigma(&vmac, n_tot)) - sigma).abs() < 1e-6);
    }
}

#[test]
fn total_error_is_approximately_gaussian() {
    // 64 independent near-uniform conversion errors per sample: the CLT
    // brings skewness to ~0 and excess kurtosis to ~ −1.2/64 ≈ −0.02.
    // Sampling noise at n = 4000 has std ≈ sqrt(6/n) ≈ 0.04 for skewness
    // and ≈ sqrt(24/n) ≈ 0.08 for kurtosis, so the bounds below are ~4–5
    // sampling σ wide — loose enough to be robust, tight enough that a
    // genuinely non-Gaussian total (e.g. a single uniform, exkurt −1.2)
    // fails decisively.
    let n_mult = 8usize;
    let vmac = Vmac::new(8, 8, n_mult, 6.0);
    let samples = error_samples(vmac, 64 * n_mult, TRIALS, 0xE43);
    let m = mean(&samples);
    let var = central_moment(&samples, m, 2);
    let skew = central_moment(&samples, m, 3) / var.powf(1.5);
    let exkurt = central_moment(&samples, m, 4) / (var * var) - 3.0;
    assert!(skew.abs() < 0.2, "skewness {skew:.4} too far from 0");
    assert!(
        exkurt.abs() < 0.35,
        "excess kurtosis {exkurt:.4} too far from 0"
    );
}

#[test]
fn single_conversion_error_is_not_gaussian() {
    // Control for the test above: one conversion's error is near-uniform
    // (excess kurtosis ≈ −1.2), so the Gaussianity bound must *fail* here
    // — otherwise the bound is vacuous.
    let vmac = Vmac::new(8, 8, 8, 6.0);
    let samples = error_samples(vmac, 8, TRIALS, 0xE44);
    let m = mean(&samples);
    let var = central_moment(&samples, m, 2);
    let exkurt = central_moment(&samples, m, 4) / (var * var) - 3.0;
    assert!(
        exkurt < -0.8,
        "single-conversion excess kurtosis {exkurt:.3} should be strongly platykurtic"
    );
}
