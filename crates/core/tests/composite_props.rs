//! Property tests for the composite (multiplier + ADC) error budget.
//!
//! The contract under test: folding a composite budget into a lumped
//! `Vmac` via [`CompositeError::effective_enob`] / `to_lumped` must
//! reproduce the composite variance — the fold is an exact algebraic
//! inversion of Eq. 1, so agreement is required at ULP scale, not just
//! statistically.

use ams_core::composite::CompositeError;
use ams_core::vmac::Vmac;
use proptest::prelude::*;

proptest! {
    #[test]
    fn effective_enob_round_trips_composite_variance(
        n_mult in 1usize..=256,
        enob in 2.0f64..16.0,
        multiplier_sigma in 0.0f64..0.05,
        n_tot_chunks in 1usize..=64,
    ) {
        let adc = Vmac::new(8, 8, n_mult, enob);
        let composite = CompositeError::new(adc, multiplier_sigma);
        let lumped = composite.to_lumped();

        // Per-conversion variance round-trips through the folded ENOB.
        let conv = composite.conversion_variance();
        let conv_lumped = lumped.error_variance();
        prop_assert!(
            (conv_lumped - conv).abs() <= 64.0 * f64::EPSILON * conv,
            "conversion variance {conv} vs folded {conv_lumped}"
        );

        // And so does the Eq. 2 layer total for any chunk count.
        let n_tot = n_mult * n_tot_chunks;
        let total = composite.total_error_variance(n_tot);
        let total_lumped = lumped.total_error_variance(n_tot);
        prop_assert!(
            (total_lumped - total).abs() <= 64.0 * f64::EPSILON * total,
            "total variance {total} vs folded {total_lumped} at n_tot {n_tot}"
        );
    }

    #[test]
    fn effective_enob_never_exceeds_adc_enob(
        n_mult in 1usize..=256,
        enob in 2.0f64..16.0,
        multiplier_sigma in 0.0f64..0.05,
    ) {
        // Multiplier error can only degrade the budget; σ_m = 0 recovers
        // the ADC's own ENOB exactly.
        let adc = Vmac::new(8, 8, n_mult, enob);
        let composite = CompositeError::new(adc, multiplier_sigma);
        prop_assert!(composite.effective_enob() <= enob + 1e-12);
        let pure = CompositeError::new(adc, 0.0);
        prop_assert!((pure.effective_enob() - enob).abs() < 1e-12);
    }
}
