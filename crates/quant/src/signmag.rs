//! Sign-magnitude fixed-point encoding.
//!
//! The paper's VMAC operands are "`B_W`- and `B_X`-bit signed numbers
//! (sign-magnitude representation)" (§2). This module provides the exact
//! digital encoding so tests and the per-VMAC simulator can check that the
//! floating-point quantizers in [`crate::dorefa`] land precisely on
//! representable codes.

use serde::{Deserialize, Serialize};

/// A sign-magnitude fixed-point code: one sign bit plus `bits − 1`
/// magnitude bits representing a value in `[-1, 1]`.
///
/// The represented value is `(−1)^sign · code / (2^(bits−1) − 1)`.
///
/// # Example
///
/// ```
/// use ams_quant::SignMagnitude;
///
/// let sm = SignMagnitude::encode(-0.5, 8);
/// assert!(sm.is_negative());
/// let back = sm.decode();
/// assert!((back + 0.5).abs() < 1.0 / 127.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignMagnitude {
    negative: bool,
    code: u32,
    bits: u32,
}

impl SignMagnitude {
    /// Encodes `x ∈ [-1, 1]` (clamped) to the nearest `bits`-bit
    /// sign-magnitude code.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=24`.
    pub fn encode(x: f32, bits: u32) -> Self {
        assert!(
            (2..=24).contains(&bits),
            "SignMagnitude: bits must be in 2..=24, got {bits}"
        );
        let max_code = (1u32 << (bits - 1)) - 1;
        let clamped = x.clamp(-1.0, 1.0);
        let code = (clamped.abs() * max_code as f32).round() as u32;
        SignMagnitude {
            negative: clamped < 0.0 && code > 0,
            code,
            bits,
        }
    }

    /// Decodes back to the represented `f32` value.
    pub fn decode(&self) -> f32 {
        let max_code = (1u32 << (self.bits - 1)) - 1;
        let mag = self.code as f32 / max_code as f32;
        if self.negative {
            -mag
        } else {
            mag
        }
    }

    /// The magnitude code (`0 ..= 2^(bits−1) − 1`).
    pub fn code(&self) -> u32 {
        self.code
    }

    /// Whether the sign bit is set. Negative zero is normalized to
    /// positive zero at encode time.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Total bit-width (sign + magnitude).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Exact sign-magnitude product of two codes: a `(b1 + b2 − 1)`-bit
    /// code whose magnitude is `code1 · code2` — the "`B_W + B_X − 2`
    /// magnitude bits and one sign bit" of the paper's Fig. 2.
    pub fn multiply(&self, other: &SignMagnitude) -> SignMagnitude {
        let bits = self.bits + other.bits - 1;
        let code = self.code * other.code;
        SignMagnitude {
            negative: (self.negative ^ other.negative) && code > 0,
            code,
            bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::quantize_unit;

    #[test]
    fn round_trip_on_grid_is_exact() {
        let bits = 6;
        let max_code = (1u32 << (bits - 1)) - 1;
        for c in 0..=max_code {
            for sign in [1.0f32, -1.0] {
                let x = sign * c as f32 / max_code as f32;
                let sm = SignMagnitude::encode(x, bits);
                assert_eq!(sm.decode(), x, "code {c} sign {sign}");
            }
        }
    }

    #[test]
    fn negative_zero_normalizes() {
        let sm = SignMagnitude::encode(-0.0, 4);
        assert!(!sm.is_negative());
        assert_eq!(sm.decode(), 0.0);
    }

    #[test]
    fn agrees_with_float_quantizer() {
        // quantize_signed(x, bits) must equal encode→decode for all x.
        for i in -50..=50 {
            let x = i as f32 / 50.0;
            let bits = 5;
            let via_codes = SignMagnitude::encode(x, bits).decode();
            let via_float = x.signum() * quantize_unit(x.abs(), bits - 1);
            assert!(
                (via_codes - via_float).abs() < 1e-6,
                "x={x}: codes {via_codes} vs float {via_float}"
            );
        }
    }

    #[test]
    fn product_width_matches_fig2() {
        // B_W = 8, B_X = 8: product has 14 magnitude bits + sign.
        let a = SignMagnitude::encode(1.0, 8);
        let b = SignMagnitude::encode(-1.0, 8);
        let p = a.multiply(&b);
        assert_eq!(p.bits(), 15);
        assert_eq!(p.code(), 127 * 127);
        assert!(p.is_negative());
        // 127·127 = 16129 < 2^14 = 16384: fits in 14 magnitude bits.
        assert!(p.code() < 1 << 14);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(SignMagnitude::encode(5.0, 4).decode(), 1.0);
        assert_eq!(SignMagnitude::encode(-5.0, 4).decode(), -1.0);
    }
}
