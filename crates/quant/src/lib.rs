//! DoReFa-style quantization with straight-through estimators.
//!
//! The paper (Rekhi et al., DAC 2019, §2) builds its AMS error injection on
//! top of DoReFa quantization (Zhou et al., 2016) as implemented in
//! Distiller: convolutional weights are squashed to `[-1, 1]` and quantized
//! to `B_W` bits, activations are clipped to `[0, 1]` by a ReLU-1 and
//! quantized to `B_X` bits, and gradients flow through the rounding via a
//! straight-through estimator (STE). The `[-1, 1]` / `[0, 1]` bounds are
//! load-bearing for the error model: they pin the binary point of the ideal
//! dot product (paper Fig. 2) so the VMAC LSB can be computed in closed
//! form (paper Eq. 1).
//!
//! # Contents
//!
//! * [`quantize_unit`] — `k`-bit uniform quantization on `[0, 1]`, the
//!   primitive everything else is built from;
//! * [`WeightQuantizer`] — DoReFa weight transform (tanh or clamp
//!   [`WeightScheme`]) with its STE scale factors;
//! * [`quantize_activations`] / [`quantize_signed`] — activation and
//!   first-layer input quantization;
//! * [`SignMagnitude`] — the paper's sign-magnitude digital encoding of
//!   VMAC operands, with exact round-trips;
//! * [`QuantConfig`] — a `(B_W, B_X)` pair with the paper's configurations
//!   as constructors, carrying the [`QuantScheme`] that realizes it;
//! * [`Quantizer`] — the pluggable quantizer seam: [`DorefaQuantizer`]
//!   (the transforms above, bit-identical) and [`AdaptiveBfp`] (per-block
//!   shared exponents from observed range), built via [`build_quantizer`].
//!
//! # Example
//!
//! ```
//! use ams_quant::{QuantConfig, WeightQuantizer};
//! use ams_tensor::Tensor;
//!
//! let cfg = QuantConfig::w8a8();
//! let q = WeightQuantizer::new(cfg.bw);
//! let w = Tensor::from_vec(&[3], vec![-0.7, 0.01, 2.5]).unwrap();
//! let out = q.quantize(&w);
//! assert!(out.values.max_abs() <= 1.0); // DoReFa caps |w| at 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfp;
mod config;
mod dorefa;
mod quantizer;
mod signmag;
mod uniform;

pub use bfp::AdaptiveBfp;
pub use config::{QuantConfig, QuantScheme};
pub use dorefa::{
    quantize_activations, quantize_activations_in, quantize_signed, quantize_signed_in,
    QuantizedWeights, WeightQuantizer, WeightScheme,
};
pub use quantizer::{build_quantizer, DorefaQuantizer, QuantizedI8, Quantizer};
pub use signmag::SignMagnitude;
pub use uniform::{quantization_levels, quantize_unit};
