//! The `k`-bit uniform quantization primitive on the unit interval.

/// Number of distinct levels of a `k`-bit uniform quantizer on `[0, 1]`
/// (`2^k − 1` steps, `2^k` codes ⇒ DoReFa uses `2^k − 1` as the divisor so
/// both endpoints are representable).
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 24` (beyond 24 bits the `f32` mantissa
/// can no longer represent the grid exactly).
///
/// # Example
///
/// ```
/// assert_eq!(ams_quant::quantization_levels(2), 3.0);
/// assert_eq!(ams_quant::quantization_levels(8), 255.0);
/// ```
pub fn quantization_levels(bits: u32) -> f32 {
    assert!(
        (1..=24).contains(&bits),
        "quantization_levels: bits must be in 1..=24, got {bits}"
    );
    ((1u32 << bits) - 1) as f32
}

/// DoReFa's `quantize_k`: rounds `x ∈ [0, 1]` to the nearest of `2^k`
/// uniformly spaced codes.
///
/// Values outside `[0, 1]` are clamped first (the callers — ReLU-1
/// activations and the weight transform — already produce bounded values,
/// but clamping makes the primitive total).
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 24` (see [`quantization_levels`]).
///
/// # Example
///
/// ```
/// use ams_quant::quantize_unit;
/// // 1 bit: only 0 and 1 are representable.
/// assert_eq!(quantize_unit(0.4, 1), 0.0);
/// assert_eq!(quantize_unit(0.6, 1), 1.0);
/// // 2 bits: grid {0, 1/3, 2/3, 1}.
/// assert!((quantize_unit(0.3, 2) - 1.0 / 3.0).abs() < 1e-7);
/// ```
pub fn quantize_unit(x: f32, bits: u32) -> f32 {
    let levels = quantization_levels(bits);
    (x.clamp(0.0, 1.0) * levels).round() / levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        for bits in 1..=16 {
            assert_eq!(quantize_unit(0.0, bits), 0.0);
            assert_eq!(quantize_unit(1.0, bits), 1.0);
        }
    }

    #[test]
    fn idempotent() {
        for bits in [1u32, 2, 4, 8] {
            for i in 0..=100 {
                let x = i as f32 / 100.0;
                let q = quantize_unit(x, bits);
                assert_eq!(quantize_unit(q, bits), q, "bits={bits} x={x}");
            }
        }
    }

    #[test]
    fn error_bounded_by_half_lsb() {
        for bits in [2u32, 4, 8] {
            let lsb = 1.0 / quantization_levels(bits);
            for i in 0..=1000 {
                let x = i as f32 / 1000.0;
                assert!((quantize_unit(x, bits) - x).abs() <= lsb / 2.0 + 1e-7);
            }
        }
    }

    #[test]
    fn out_of_range_clamps() {
        assert_eq!(quantize_unit(-3.0, 4), 0.0);
        assert_eq!(quantize_unit(42.0, 4), 1.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=24")]
    fn zero_bits_rejected() {
        quantize_unit(0.5, 0);
    }
}
