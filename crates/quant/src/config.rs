//! Quantization configurations.

use serde::{Deserialize, Serialize};

/// A `(B_W, B_X)` weight/activation bit-width pair.
///
/// `bw == 32` (or `bx == 32`) means "leave that operand in full precision";
/// the constructors below cover Table 1 of the paper.
///
/// # Example
///
/// ```
/// use ams_quant::QuantConfig;
///
/// assert!(QuantConfig::fp32().is_fp32());
/// assert_eq!(QuantConfig::w6a4(), QuantConfig::new(6, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight bit-width `B_W` (sign-magnitude; 32 = full precision).
    pub bw: u32,
    /// Activation bit-width `B_X` (sign-magnitude; 32 = full precision).
    pub bx: u32,
}

impl QuantConfig {
    /// An arbitrary `(B_W, B_X)` configuration.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero or exceeds 32.
    pub fn new(bw: u32, bx: u32) -> Self {
        assert!(
            (1..=32).contains(&bw),
            "QuantConfig: bw must be in 1..=32, got {bw}"
        );
        assert!(
            (1..=32).contains(&bx),
            "QuantConfig: bx must be in 1..=32, got {bx}"
        );
        QuantConfig { bw, bx }
    }

    /// Full precision (Table 1, row 1).
    pub fn fp32() -> Self {
        QuantConfig { bw: 32, bx: 32 }
    }

    /// 8-bit weights and activations (Table 1, row 2).
    pub fn w8a8() -> Self {
        QuantConfig { bw: 8, bx: 8 }
    }

    /// 6-bit weights and activations (Table 1, row 3).
    pub fn w6a6() -> Self {
        QuantConfig { bw: 6, bx: 6 }
    }

    /// 6-bit weights, 4-bit activations (Table 1, row 4).
    pub fn w6a4() -> Self {
        QuantConfig { bw: 6, bx: 4 }
    }

    /// 4-bit weights and activations (extended Table 1; substrate
    /// calibration — see EXPERIMENTS.md).
    pub fn w4a4() -> Self {
        QuantConfig { bw: 4, bx: 4 }
    }

    /// 3-bit weights and activations (extended Table 1).
    pub fn w3a3() -> Self {
        QuantConfig { bw: 3, bx: 3 }
    }

    /// 2-bit weights and activations (extended Table 1).
    pub fn w2a2() -> Self {
        QuantConfig { bw: 2, bx: 2 }
    }

    /// Whether both operands stay in full precision.
    pub fn is_fp32(&self) -> bool {
        self.bw == 32 && self.bx == 32
    }

    /// Magnitude bits of the ideal product of a `B_W`-bit by `B_X`-bit
    /// sign-magnitude multiplication: `B_W + B_X − 2` (paper Fig. 2).
    pub fn product_magnitude_bits(&self) -> u32 {
        self.bw + self.bx - 2
    }
}

impl Default for QuantConfig {
    /// Defaults to the paper's primary configuration, 8-bit/8-bit.
    fn default() -> Self {
        Self::w8a8()
    }
}

impl std::fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fp32() {
            write!(f, "FP32")
        } else {
            write!(f, "BW={}, BX={}", self.bw, self.bx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        assert_eq!(QuantConfig::w8a8().product_magnitude_bits(), 14);
        assert_eq!(QuantConfig::w6a6().product_magnitude_bits(), 10);
        assert_eq!(QuantConfig::w6a4().product_magnitude_bits(), 8);
    }

    #[test]
    fn display() {
        assert_eq!(QuantConfig::fp32().to_string(), "FP32");
        assert_eq!(QuantConfig::w6a4().to_string(), "BW=6, BX=4");
    }

    #[test]
    #[should_panic(expected = "bw must be in 1..=32")]
    fn zero_width_rejected() {
        QuantConfig::new(0, 8);
    }
}
