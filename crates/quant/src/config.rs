//! Quantization configurations.

use serde::{Deserialize, Serialize};

/// Which quantization transform maps full-precision values onto the
/// hardware grid.
///
/// The scheme is orthogonal to the bit-widths in [`QuantConfig`]: both
/// schemes honor `bw`/`bx` and both keep weights in `[-1, 1]` and
/// activations in `[0, 1]`, so the VMAC error model (paper Eq. 1) applies
/// unchanged.
///
/// # Example
///
/// ```
/// use ams_quant::QuantScheme;
///
/// assert_eq!(QuantScheme::default().key(), "dorefa");
/// assert_eq!(QuantScheme::Bfp { block: 16 }.key(), "bfp16");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize)]
pub enum QuantScheme {
    /// DoReFa uniform quantization (tanh/clamp weight squash, ReLU-1
    /// activations) — the paper's scheme.
    #[default]
    Dorefa,
    /// Adaptive block floating-point: values share a per-block power-of-two
    /// exponent chosen from the block's observed max magnitude
    /// (PAPERS.md: arXiv 2205.06287).
    Bfp {
        /// Elements per shared-exponent block.
        block: usize,
    },
}

// Hand-written so an absent `scheme` field (configs serialized before the
// seam existed) deserializes as DoReFa via `missing()` — the vendored
// serde facade's equivalent of `#[serde(default)]`.
impl serde::Deserialize for QuantScheme {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) if s == "Dorefa" => Ok(QuantScheme::Dorefa),
            serde::Value::Map(entries) if entries.len() == 1 && entries[0].0 == "Bfp" => {
                let pm = serde::expect_map(&entries[0].1, "QuantScheme::Bfp")?;
                Ok(QuantScheme::Bfp {
                    block: serde::field(pm, "block")?,
                })
            }
            serde::Value::Str(other) => Err(serde::DeError::unknown_variant("QuantScheme", other)),
            _ => Err(serde::DeError::expected("enum QuantScheme")),
        }
    }

    fn missing() -> Option<Self> {
        Some(QuantScheme::Dorefa)
    }
}

impl QuantScheme {
    /// Short identifier used in artifact names and metric keys:
    /// `"dorefa"` or `"bfp{block}"`.
    pub fn key(&self) -> String {
        match self {
            QuantScheme::Dorefa => "dorefa".to_string(),
            QuantScheme::Bfp { block } => format!("bfp{block}"),
        }
    }
}

impl std::fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// A `(B_W, B_X)` weight/activation bit-width pair plus the
/// [`QuantScheme`] that realizes it.
///
/// `bw == 32` (or `bx == 32`) means "leave that operand in full precision";
/// the constructors below cover Table 1 of the paper and default to the
/// DoReFa scheme (configurations serialized before the scheme existed
/// deserialize as DoReFa).
///
/// # Example
///
/// ```
/// use ams_quant::QuantConfig;
///
/// assert!(QuantConfig::fp32().is_fp32());
/// assert_eq!(QuantConfig::w6a4(), QuantConfig::new(6, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight bit-width `B_W` (sign-magnitude; 32 = full precision).
    pub bw: u32,
    /// Activation bit-width `B_X` (sign-magnitude; 32 = full precision).
    pub bx: u32,
    /// Quantization scheme realizing the widths (absent in configs
    /// serialized before the seam existed; defaults to DoReFa).
    pub scheme: QuantScheme,
}

impl QuantConfig {
    /// An arbitrary `(B_W, B_X)` configuration.
    ///
    /// # Panics
    ///
    /// Panics if either width is zero or exceeds 32.
    pub fn new(bw: u32, bx: u32) -> Self {
        assert!(
            (1..=32).contains(&bw),
            "QuantConfig: bw must be in 1..=32, got {bw}"
        );
        assert!(
            (1..=32).contains(&bx),
            "QuantConfig: bx must be in 1..=32, got {bx}"
        );
        QuantConfig {
            bw,
            bx,
            scheme: QuantScheme::Dorefa,
        }
    }

    /// The same widths under a different [`QuantScheme`].
    pub fn with_scheme(mut self, scheme: QuantScheme) -> Self {
        if let QuantScheme::Bfp { block } = scheme {
            assert!(block >= 1, "QuantConfig: BFP block size must be >= 1");
        }
        self.scheme = scheme;
        self
    }

    /// Full precision (Table 1, row 1).
    pub fn fp32() -> Self {
        Self::new(32, 32)
    }

    /// 8-bit weights and activations (Table 1, row 2).
    pub fn w8a8() -> Self {
        Self::new(8, 8)
    }

    /// 6-bit weights and activations (Table 1, row 3).
    pub fn w6a6() -> Self {
        Self::new(6, 6)
    }

    /// 6-bit weights, 4-bit activations (Table 1, row 4).
    pub fn w6a4() -> Self {
        Self::new(6, 4)
    }

    /// 4-bit weights and activations (extended Table 1; substrate
    /// calibration — see EXPERIMENTS.md).
    pub fn w4a4() -> Self {
        Self::new(4, 4)
    }

    /// 3-bit weights and activations (extended Table 1).
    pub fn w3a3() -> Self {
        Self::new(3, 3)
    }

    /// 2-bit weights and activations (extended Table 1).
    pub fn w2a2() -> Self {
        Self::new(2, 2)
    }

    /// Whether both operands stay in full precision.
    pub fn is_fp32(&self) -> bool {
        self.bw == 32 && self.bx == 32
    }

    /// Magnitude bits of the ideal product of a `B_W`-bit by `B_X`-bit
    /// sign-magnitude multiplication: `B_W + B_X − 2` (paper Fig. 2).
    pub fn product_magnitude_bits(&self) -> u32 {
        self.bw + self.bx - 2
    }
}

impl Default for QuantConfig {
    /// Defaults to the paper's primary configuration, 8-bit/8-bit.
    fn default() -> Self {
        Self::w8a8()
    }
}

impl std::fmt::Display for QuantConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fp32() {
            write!(f, "FP32")?;
        } else {
            write!(f, "BW={}, BX={}", self.bw, self.bx)?;
        }
        if self.scheme != QuantScheme::Dorefa {
            write!(f, " [{}]", self.scheme.key())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        assert_eq!(QuantConfig::w8a8().product_magnitude_bits(), 14);
        assert_eq!(QuantConfig::w6a6().product_magnitude_bits(), 10);
        assert_eq!(QuantConfig::w6a4().product_magnitude_bits(), 8);
    }

    #[test]
    fn display() {
        assert_eq!(QuantConfig::fp32().to_string(), "FP32");
        assert_eq!(QuantConfig::w6a4().to_string(), "BW=6, BX=4");
        assert_eq!(
            QuantConfig::w8a8()
                .with_scheme(QuantScheme::Bfp { block: 16 })
                .to_string(),
            "BW=8, BX=8 [bfp16]"
        );
    }

    #[test]
    fn scheme_defaults_to_dorefa_in_old_serialized_configs() {
        // A config serialized before `scheme` existed must keep parsing
        // (and comparing equal to today's default construction).
        let old = r#"{"bw":6,"bx":4}"#;
        let parsed: QuantConfig = serde_json::from_str(old).expect("legacy json");
        assert_eq!(parsed, QuantConfig::w6a4());
        assert_eq!(parsed.scheme, QuantScheme::Dorefa);
    }

    #[test]
    #[should_panic(expected = "bw must be in 1..=32")]
    fn zero_width_rejected() {
        QuantConfig::new(0, 8);
    }
}
