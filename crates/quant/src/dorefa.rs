//! DoReFa weight and activation quantizers with straight-through
//! estimator (STE) scale factors.

use ams_tensor::{Density, Tensor, Workspace};
use serde::{Deserialize, Serialize};

use crate::uniform::quantize_unit;

/// How weights are mapped into `[-1, 1]` before `B_W`-bit quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WeightScheme {
    /// DoReFa's original transform:
    /// `w_q = 2·Q_k( tanh(w) / (2·max|tanh(w)|) + ½ ) − 1`.
    ///
    /// The tanh squashes outliers smoothly and the max-normalization uses
    /// the full code range every forward pass. This is what Distiller (and
    /// hence the paper) runs.
    #[default]
    Tanh,
    /// A plain clamp-to-`[-1, 1]` transform:
    /// `w_q = 2·Q_k( (clamp(w, −1, 1) + 1) / 2 ) − 1`.
    ///
    /// Simpler hardware interpretation; provided for ablations.
    Clamp,
}

/// Quantized weights plus the STE scale routing gradients back to the
/// full-precision shadow parameter.
///
/// The backward pass of a quantized layer computes gradients with respect
/// to the *quantized* weight actually used; multiplying elementwise by
/// [`QuantizedWeights::ste_scale`] converts them into gradients for the
/// stored full-precision parameter (the STE treats the rounding itself as
/// identity but keeps the smooth part of the transform).
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    /// The quantized values on the `B_W`-bit grid in `[-1, 1]`.
    pub values: Tensor,
    /// Elementwise `∂w_q/∂w` of the smooth part of the transform.
    pub ste_scale: Tensor,
    /// Zero-density of `values`, measured once here so matmul kernels
    /// never rescan the weights per call (pass it to
    /// `ams_tensor::matmul_hinted_in`). Aggressive quantization is the
    /// one realistic source of mostly-zero matmul operands.
    pub density: Density,
}

/// DoReFa weight quantizer for a fixed bit-width and scheme.
///
/// # Example
///
/// ```
/// use ams_quant::{WeightQuantizer, WeightScheme};
/// use ams_tensor::Tensor;
///
/// let q = WeightQuantizer::with_scheme(4, WeightScheme::Clamp);
/// let w = Tensor::from_vec(&[2], vec![0.5, -2.0]).unwrap();
/// let out = q.quantize(&w);
/// assert!(out.values.data()[0] > 0.0 && out.values.data()[1] == -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightQuantizer {
    bits: u32,
    scheme: WeightScheme,
}

impl WeightQuantizer {
    /// Creates a quantizer with the default (tanh) DoReFa scheme.
    ///
    /// `bits == 32` produces an identity quantizer (FP32 passthrough).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 32.
    pub fn new(bits: u32) -> Self {
        Self::with_scheme(bits, WeightScheme::Tanh)
    }

    /// Creates a quantizer with an explicit [`WeightScheme`].
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds 32.
    pub fn with_scheme(bits: u32, scheme: WeightScheme) -> Self {
        assert!(
            (1..=32).contains(&bits),
            "WeightQuantizer: bits must be in 1..=32, got {bits}"
        );
        WeightQuantizer { bits, scheme }
    }

    /// The configured bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The configured transform scheme.
    pub fn scheme(&self) -> WeightScheme {
        self.scheme
    }

    /// Whether this quantizer is an FP32 passthrough.
    pub fn is_identity(&self) -> bool {
        self.bits == 32
    }

    /// Quantizes a weight tensor, returning values, STE scales and the
    /// measured zero-density of the quantized values.
    pub fn quantize(&self, w: &Tensor) -> QuantizedWeights {
        self.quantize_in(&Workspace::new(), w)
    }

    /// [`WeightQuantizer::quantize`] drawing both output tensors from a
    /// [`Workspace`], so per-forward requantization allocates nothing in
    /// steady state (the layer recycles the previous pass's tensors).
    pub fn quantize_in(&self, ws: &Workspace, w: &Tensor) -> QuantizedWeights {
        if self.is_identity() {
            let values = ws.clone_tensor(w);
            return QuantizedWeights {
                density: Density::measure(values.data()),
                values,
                ste_scale: ws.map_tensor(w, |_| 1.0),
            };
        }
        let (values, ste_scale) = match self.scheme {
            WeightScheme::Tanh => {
                let t = ws.map_tensor(w, f32::tanh);
                let max_t = t.max_abs().max(f32::MIN_POSITIVE);
                let values = ws.map_tensor(&t, |ti| {
                    2.0 * quantize_unit(ti / (2.0 * max_t) + 0.5, self.bits) - 1.0
                });
                ws.recycle(t);
                // ∂/∂w of 2·(tanh(w)/(2T) + ½) − 1 = (1 − tanh²(w)) / T,
                // treating T = max|tanh| as a constant (Distiller does too).
                let ste_scale = ws.map_tensor(w, |wi| {
                    let th = wi.tanh();
                    (1.0 - th * th) / max_t
                });
                (values, ste_scale)
            }
            WeightScheme::Clamp => {
                let values = ws.map_tensor(w, |wi| {
                    2.0 * quantize_unit((wi.clamp(-1.0, 1.0) + 1.0) / 2.0, self.bits) - 1.0
                });
                let ste_scale =
                    ws.map_tensor(w, |wi| if (-1.0..=1.0).contains(&wi) { 1.0 } else { 0.0 });
                (values, ste_scale)
            }
        };
        QuantizedWeights {
            density: Density::measure(values.data()),
            values,
            ste_scale,
        }
    }
}

/// Quantizes activations already bounded to `[0, 1]` (post ReLU-1) to
/// `bits`-bit codes; `bits == 32` is a passthrough.
///
/// The STE gradient of this operation is identically 1 inside the bound
/// (the ReLU-1 layer owns the clipping mask), so no scale tensor is needed.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 32.
///
/// # Example
///
/// ```
/// use ams_quant::quantize_activations;
/// use ams_tensor::Tensor;
///
/// let a = Tensor::from_vec(&[2], vec![0.30, 0.72]).unwrap();
/// let q = quantize_activations(&a, 2); // grid {0, 1/3, 2/3, 1}
/// assert!((q.data()[0] - 1.0 / 3.0).abs() < 1e-6);
/// assert!((q.data()[1] - 2.0 / 3.0).abs() < 1e-6);
/// ```
pub fn quantize_activations(a: &Tensor, bits: u32) -> Tensor {
    quantize_activations_in(&Workspace::new(), a, bits)
}

/// [`quantize_activations`] drawing the output from a [`Workspace`] so
/// per-forward activation quantization allocates nothing in steady state.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 32.
pub fn quantize_activations_in(ws: &Workspace, a: &Tensor, bits: u32) -> Tensor {
    assert!(
        (1..=32).contains(&bits),
        "quantize_activations: bits must be in 1..=32, got {bits}"
    );
    if bits == 32 {
        return ws.clone_tensor(a);
    }
    ws.map_tensor(a, |x| quantize_unit(x, bits))
}

/// Sign-magnitude quantization of values in `[-1, 1]` to `bits`-bit codes
/// (1 sign bit + `bits − 1` magnitude bits), used for the network's first
/// layer whose inputs are rescaled to `[-1, 1]` (paper §2).
///
/// `bits == 32` is a passthrough. Out-of-range magnitudes clamp.
///
/// # Panics
///
/// Panics if `bits < 2` (a sign bit alone carries no magnitude) unless
/// `bits == 32`.
///
/// # Example
///
/// ```
/// use ams_quant::quantize_signed;
/// use ams_tensor::Tensor;
///
/// let x = Tensor::from_vec(&[2], vec![-0.5, 0.24]).unwrap();
/// let q = quantize_signed(&x, 3); // magnitude grid {0, 1/3, 2/3, 1}
/// assert!((q.data()[0] + 2.0 / 3.0).abs() < 1e-6); // -0.5 rounds half away from zero
/// assert!(q.max_abs() <= 1.0);
/// ```
pub fn quantize_signed(x: &Tensor, bits: u32) -> Tensor {
    quantize_signed_in(&Workspace::new(), x, bits)
}

/// [`quantize_signed`] drawing the output from a [`Workspace`] so the
/// first layer's per-forward input quantization allocates nothing in
/// steady state.
///
/// # Panics
///
/// Panics if `bits < 2` (a sign bit alone carries no magnitude) unless
/// `bits == 32`.
pub fn quantize_signed_in(ws: &Workspace, x: &Tensor, bits: u32) -> Tensor {
    if bits == 32 {
        return ws.clone_tensor(x);
    }
    assert!(
        bits >= 2,
        "quantize_signed: need at least 2 bits (sign + magnitude), got {bits}"
    );
    let mag_bits = bits - 1;
    ws.map_tensor(x, |v| v.signum() * quantize_unit(v.abs(), mag_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tanh_scheme_bounds_and_grid() {
        let q = WeightQuantizer::new(4);
        let w = Tensor::from_vec(&[5], vec![-3.0, -0.5, 0.0, 0.5, 3.0]).unwrap();
        let out = q.quantize(&w);
        assert!(out.values.max_abs() <= 1.0 + 1e-6);
        // Largest-magnitude weight maps to ±1 exactly (max-normalization).
        assert_eq!(out.values.data()[0], -1.0);
        assert_eq!(out.values.data()[4], 1.0);
        // Values lie on the 4-bit grid: (v+1)/2 * 15 is an integer.
        for &v in out.values.data() {
            let code = (v + 1.0) / 2.0 * 15.0;
            assert!((code - code.round()).abs() < 1e-4, "off-grid value {v}");
        }
    }

    #[test]
    fn tanh_ste_scale_is_positive_and_shrinks_for_outliers() {
        let q = WeightQuantizer::new(8);
        let w = Tensor::from_vec(&[3], vec![0.0, 1.0, 4.0]).unwrap();
        let out = q.quantize(&w);
        let s = out.ste_scale.data();
        assert!(s.iter().all(|&v| v > 0.0));
        assert!(
            s[0] > s[1] && s[1] > s[2],
            "tanh derivative must decay: {s:?}"
        );
    }

    #[test]
    fn clamp_scheme_kills_gradient_outside_range() {
        let q = WeightQuantizer::with_scheme(8, WeightScheme::Clamp);
        let w = Tensor::from_vec(&[3], vec![-1.5, 0.3, 1.5]).unwrap();
        let out = q.quantize(&w);
        assert_eq!(out.ste_scale.data(), &[0.0, 1.0, 0.0]);
        assert_eq!(out.values.data()[0], -1.0);
        assert_eq!(out.values.data()[2], 1.0);
    }

    #[test]
    fn fp32_is_identity() {
        let q = WeightQuantizer::new(32);
        assert!(q.is_identity());
        let w = Tensor::from_vec(&[2], vec![0.123456, -7.0]).unwrap();
        let out = q.quantize(&w);
        assert_eq!(out.values, w);
        assert_eq!(out.ste_scale, Tensor::ones(&[2]));
    }

    #[test]
    fn quantize_activations_is_idempotent() {
        let a = Tensor::from_vec(&[4], vec![0.0, 0.33, 0.77, 1.0]).unwrap();
        let q1 = quantize_activations(&a, 4);
        let q2 = quantize_activations(&q1, 4);
        assert_eq!(q1, q2);
    }

    #[test]
    fn quantize_signed_preserves_sign_and_bound() {
        let x = Tensor::from_vec(&[4], vec![-1.0, -0.01, 0.01, 1.0]).unwrap();
        let q = quantize_signed(&x, 8);
        assert_eq!(q.data()[0], -1.0);
        assert!(q.data()[1] <= 0.0);
        assert!(q.data()[2] >= 0.0);
        assert_eq!(q.data()[3], 1.0);
    }

    #[test]
    fn density_is_cached_at_quantize_time() {
        let q = WeightQuantizer::new(32);
        let sparse = Tensor::from_vec(&[4], vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(q.quantize(&sparse).density, Density::Sparse);
        let dense = Tensor::from_vec(&[4], vec![0.5, -0.5, 0.25, 1.0]).unwrap();
        assert_eq!(q.quantize(&dense).density, Density::Dense);
    }

    #[test]
    fn quantize_in_reuses_workspace_buffers() {
        let ws = Workspace::new();
        let q = WeightQuantizer::new(8);
        let w =
            Tensor::from_vec(&[64], (0..64).map(|i| (i as f32 - 32.0) / 16.0).collect()).unwrap();
        let out = q.quantize_in(&ws, &w);
        let fresh = ws.fresh_allocs();
        ws.recycle(out.values);
        ws.recycle(out.ste_scale);
        let out2 = q.quantize_in(&ws, &w);
        assert_eq!(ws.fresh_allocs(), fresh, "requantization must hit the pool");
        assert_eq!(out2.values, q.quantize(&w).values);
    }

    #[test]
    fn more_bits_means_less_error() {
        let w =
            Tensor::from_vec(&[101], (0..101).map(|i| (i as f32 - 50.0) / 40.0).collect()).unwrap();
        let err = |bits: u32| -> f32 {
            let out = WeightQuantizer::new(bits).quantize(&w);
            let tanh_ref = WeightQuantizer::new(24).quantize(&w);
            out.values
                .data()
                .iter()
                .zip(tanh_ref.values.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max)
        };
        assert!(err(2) > err(4));
        assert!(err(4) > err(8));
    }
}
