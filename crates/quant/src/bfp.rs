//! Adaptive block floating-point quantization.
//!
//! Values are grouped into fixed-size blocks that share a power-of-two
//! scale (a "block exponent") chosen adaptively from each block's observed
//! max magnitude (PAPERS.md: arXiv 2205.06287). Within a block, mantissas
//! are uniformly quantized against that scale, so dynamic range is spent
//! where the block actually needs it — cheap on analog hardware because the
//! shared exponent is a digital shift, not a per-element multiplier.
//!
//! The transform keeps the DoReFa range contracts ([`crate::QuantConfig`]):
//! weights and signed inputs are clamped to `[-1, 1]`, activations to
//! `[0, 1]`, so the VMAC LSB derivation (paper Eq. 1) applies unchanged.
//!
//! # Example
//!
//! ```
//! use ams_quant::{AdaptiveBfp, Quantizer};
//! use ams_tensor::Tensor;
//!
//! let q = AdaptiveBfp::new(8, 8, 4);
//! let w = Tensor::from_vec(&[4], vec![0.5, 0.24, -0.9, 0.1]).unwrap();
//! let out = q.quantize_weights(&w);
//! // Error is bounded by the block scale (1.0 here) over the mantissa grid.
//! for (v, o) in w.data().iter().zip(out.values.data()) {
//!     assert!((v - o).abs() <= 1.0 / 128.0);
//! }
//! ```

use ams_tensor::{Density, Tensor, Workspace};

use crate::config::QuantScheme;
use crate::dorefa::QuantizedWeights;
use crate::quantizer::Quantizer;

/// Smallest power of two `>=` `max` (the shared block scale).
///
/// Works all the way down into the denormal range: `log2`/`exp2` get within
/// one step of the answer and the fix-up loops land it exactly, without
/// assuming normal-number exponent arithmetic.
fn block_scale(max: f32) -> f32 {
    debug_assert!(max > 0.0 && max.is_finite(), "block_scale: max={max}");
    let mut s = max.log2().ceil().exp2();
    while s < max {
        s *= 2.0;
    }
    // Tighten: the scale must be the *smallest* power of two >= max.
    while s / 2.0 >= max && s / 2.0 > 0.0 {
        s /= 2.0;
    }
    s
}

/// Block floating-point with per-block adaptive shared exponents.
///
/// `bw`/`bx` follow the [`crate::QuantConfig`] convention (32 = full
/// precision pass-through). Signed grids (weights, first-layer inputs)
/// spend one bit on the sign, so their mantissa carries `bits − 1`
/// fractional bits; the unsigned activation grid carries all `bx` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBfp {
    bw: u32,
    bx: u32,
    block: usize,
}

impl AdaptiveBfp {
    /// A BFP quantizer with the given widths and block size.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero or a width is outside `2..=24` (except
    /// 32, the full-precision pass-through): one bit cannot carry a signed
    /// mantissa, and beyond 24 mantissa bits the `f32` grid itself stops
    /// being exact.
    pub fn new(bw: u32, bx: u32, block: usize) -> Self {
        assert!(block >= 1, "AdaptiveBfp: block size must be >= 1");
        for (name, bits) in [("bw", bw), ("bx", bx)] {
            assert!(
                (2..=24).contains(&bits) || bits == 32,
                "AdaptiveBfp: {name} must be in 2..=24 or 32, got {bits}"
            );
        }
        AdaptiveBfp { bw, bx, block }
    }

    /// Elements per shared-exponent block.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Quantizes `x` block-wise after clamping to `[lo, hi]`, with
    /// `mant_bits` fractional mantissa bits against each block's shared
    /// power-of-two scale.
    fn quantize_blockwise(
        &self,
        ws: &Workspace,
        x: &Tensor,
        mant_bits: u32,
        lo: f32,
        hi: f32,
    ) -> Tensor {
        let mut out = ws.take_tensor(x.dims());
        // 2^mant_bits steps per unit of scale; exact in f32 for <= 24 bits.
        let levels = (1u32 << mant_bits) as f32;
        for (ob, ib) in out
            .data_mut()
            .chunks_mut(self.block)
            .zip(x.data().chunks(self.block))
        {
            let mut max = 0.0f32;
            for &v in ib {
                max = max.max(v.clamp(lo, hi).abs());
            }
            if max <= 0.0 {
                // All-zero block (including -0.0): exact zeros, no scale.
                ob.fill(0.0);
                continue;
            }
            let scale = block_scale(max);
            for (o, &v) in ob.iter_mut().zip(ib) {
                let c = v.clamp(lo, hi);
                *o = (c / scale * levels).round() / levels * scale;
            }
        }
        out
    }
}

impl Quantizer for AdaptiveBfp {
    fn scheme(&self) -> QuantScheme {
        QuantScheme::Bfp { block: self.block }
    }

    fn weight_bits(&self) -> u32 {
        self.bw
    }

    fn activation_bits(&self) -> u32 {
        self.bx
    }

    fn quantize_weights_in(&self, ws: &Workspace, w: &Tensor) -> QuantizedWeights {
        if self.bw == 32 {
            let values = ws.clone_tensor(w);
            return QuantizedWeights {
                density: Density::measure(values.data()),
                values,
                ste_scale: ws.map_tensor(w, |_| 1.0),
            };
        }
        let values = self.quantize_blockwise(ws, w, self.bw - 1, -1.0, 1.0);
        // Straight-through estimator: the clamp mask (like DoReFa's Clamp
        // scheme) — unity inside [-1, 1], zero outside.
        let ste_scale = ws.map_tensor(w, |wi| if (-1.0..=1.0).contains(&wi) { 1.0 } else { 0.0 });
        QuantizedWeights {
            density: Density::measure(values.data()),
            values,
            ste_scale,
        }
    }

    fn quantize_activations_in(&self, ws: &Workspace, a: &Tensor) -> Tensor {
        if self.bx == 32 {
            return ws.clone_tensor(a);
        }
        self.quantize_blockwise(ws, a, self.bx, 0.0, 1.0)
    }

    fn quantize_signed_in(&self, ws: &Workspace, x: &Tensor) -> Tensor {
        if self.bx == 32 {
            return ws.clone_tensor(x);
        }
        self.quantize_blockwise(ws, x, self.bx - 1, -1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tensor(values: Vec<f32>) -> Tensor {
        Tensor::from_vec(&[values.len()], values).unwrap()
    }

    #[test]
    fn block_scale_is_smallest_power_of_two_above_max() {
        for (max, want) in [
            (1.0f32, 1.0f32),
            (0.5, 0.5),
            (0.51, 1.0),
            (0.26, 0.5),
            (1.5, 2.0),
            (f32::MIN_POSITIVE, f32::MIN_POSITIVE),
        ] {
            let got = block_scale(max);
            assert_eq!(got, want, "max={max}");
        }
    }

    #[test]
    fn fp32_widths_pass_through() {
        let q = AdaptiveBfp::new(32, 32, 4);
        let w = tensor(vec![-1.7, 0.3, 0.0, 2.5]);
        assert_eq!(q.quantize_weights(&w).values, w);
        let ws = Workspace::new();
        assert_eq!(q.quantize_activations_in(&ws, &w), w);
        assert_eq!(q.quantize_signed_in(&ws, &w), w);
    }

    #[test]
    fn weights_clamp_to_unit_range() {
        let q = AdaptiveBfp::new(4, 4, 2);
        let w = tensor(vec![-3.0, -1.0, 0.25, 7.0]);
        let out = q.quantize_weights(&w);
        assert!(out.values.max_abs() <= 1.0);
        // Out-of-range entries saturate exactly to ±1 (scale 1, mantissa 1).
        assert_eq!(out.values.data()[0], -1.0);
        assert_eq!(out.values.data()[3], 1.0);
        // STE is the clamp mask.
        assert_eq!(out.ste_scale.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn activations_clamp_to_unit_interval() {
        let q = AdaptiveBfp::new(8, 3, 4);
        let ws = Workspace::new();
        let a = tensor(vec![-0.5, 0.1, 0.5, 2.0]);
        let out = q.quantize_activations_in(&ws, &a);
        assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(out.data()[0], 0.0);
        assert_eq!(out.data()[3], 1.0);
    }

    #[test]
    fn adaptive_exponent_beats_global_grid_on_small_blocks() {
        // A tiny-magnitude block quantized at 3 signed bits: a global
        // [-1, 1] grid would round everything to 0; the adaptive block
        // exponent keeps relative precision.
        let q = AdaptiveBfp::new(3, 3, 4);
        let w = tensor(vec![0.011, -0.013, 0.009, 0.014]);
        let out = q.quantize_weights(&w);
        assert!(out.values.data().iter().any(|&v| v != 0.0));
        for (v, o) in w.data().iter().zip(out.values.data()) {
            // scale = 2^-6 = 0.015625, 4 mantissa steps -> LSB 0.00390625.
            assert!((v - o).abs() <= 0.015_625 / 4.0 / 2.0 + 1e-9, "{v} vs {o}");
        }
    }

    #[test]
    fn all_zero_tensor_is_exact_zero_under_every_transform() {
        // Degenerate range: a block with max 0.0 has no representable
        // exponent; the early-out must yield exact zeros (not NaN from
        // 0/0) on all three transforms, and the STE mask stays unity.
        let q = AdaptiveBfp::new(4, 4, 8);
        let ws = Workspace::new();
        let z = tensor(vec![0.0; 12]);
        let qw = q.quantize_weights_in(&ws, &z);
        assert!(qw.values.data().iter().all(|&v| v == 0.0));
        assert!(qw.ste_scale.data().iter().all(|&v| v == 1.0));
        assert_eq!(qw.density, Density::Sparse);
        assert!(q
            .quantize_activations_in(&ws, &z)
            .data()
            .iter()
            .all(|&v| v == 0.0));
        assert!(q
            .quantize_signed_in(&ws, &z)
            .data()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn single_value_blocks_round_on_their_own_exponent() {
        // block = 1: every element is its own block, so each value v maps
        // onto the grid of the smallest power of two >= |v| — values that
        // are themselves powers of two come back exact, everything else
        // within half its personal LSB.
        let q = AdaptiveBfp::new(4, 4, 1);
        let w = tensor(vec![-1.0, 0.5, 0.25, -0.0625, 0.3, -0.7]);
        let out = q.quantize_weights(&w);
        for &pow2 in &[0usize, 1, 2, 3] {
            assert_eq!(
                out.values.data()[pow2],
                w.data()[pow2],
                "powers of two are exact"
            );
        }
        let levels = (1u32 << 3) as f32;
        for (&v, &o) in w.data().iter().zip(out.values.data()) {
            let scale = if v == 0.0 { 0.0 } else { block_scale(v.abs()) };
            assert!((v - o).abs() <= scale / levels / 2.0 + 1e-9, "{v} vs {o}");
        }
    }

    #[test]
    fn block_larger_than_tensor_acts_as_one_block() {
        // block > len: chunking yields a single short block, which must
        // behave exactly like block == len (one shared exponent).
        let w = tensor(vec![0.4, -0.1, 0.02, 0.25, -0.33]);
        let huge = AdaptiveBfp::new(5, 5, 1024).quantize_weights(&w);
        let exact = AdaptiveBfp::new(5, 5, w.len()).quantize_weights(&w);
        assert_eq!(huge.values, exact.values);
        assert_eq!(huge.ste_scale, exact.ste_scale);
    }

    proptest! {
        /// Quantize→dequantize error is bounded by half an LSB of the
        /// block's shared exponent: |x − q(x)| ≤ scale / 2^(bits−1) / 2
        /// for in-range signed values.
        #[test]
        fn roundtrip_error_bounded_by_block_exponent(
            values in proptest::collection::vec(-1.0f32..1.0, 1..64),
            bw in 2u32..=8,
            block in 1usize..=16,
        ) {
            let q = AdaptiveBfp::new(bw, 8, block);
            let w = tensor(values.clone());
            let out = q.quantize_weights(&w);
            let levels = (1u32 << (bw - 1)) as f32;
            for (chunk, qchunk) in values.chunks(block).zip(out.values.data().chunks(block)) {
                let max = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                if max <= 0.0 {
                    for &o in qchunk {
                        prop_assert_eq!(o, 0.0);
                    }
                    continue;
                }
                let scale = block_scale(max);
                let bound = scale / levels / 2.0 * (1.0 + 1e-5) + f32::MIN_POSITIVE;
                for (&v, &o) in chunk.iter().zip(qchunk) {
                    prop_assert!((v - o).abs() <= bound,
                        "|{} - {}| > {} (scale {}, block max {})", v, o, bound, scale, max);
                }
            }
        }

        /// On a constant block the result is independent of the block
        /// size: every block sees the same max, hence the same exponent.
        #[test]
        fn constant_blocks_are_block_size_invariant(
            value in -1.0f32..1.0,
            len in 1usize..=48,
            bw in 2u32..=8,
            block_a in 1usize..=16,
            block_b in 1usize..=16,
        ) {
            let w = tensor(vec![value; len]);
            let qa = AdaptiveBfp::new(bw, 8, block_a).quantize_weights(&w);
            let qb = AdaptiveBfp::new(bw, 8, block_b).quantize_weights(&w);
            prop_assert_eq!(qa.values.data(), qb.values.data());
            // And the constant quantizes to a single shared value.
            let first = qa.values.data()[0];
            prop_assert!(qa.values.data().iter().all(|&v| v.to_bits() == first.to_bits()));
        }

        /// Negative zero and denormal inputs never produce NaN/Inf, zeros
        /// stay exactly zero, and denormal magnitudes stay finite and
        /// within one block LSB of the input.
        #[test]
        fn negative_zero_and_denormals_are_safe(
            denorm_steps in 1u32..=1000,
            bw in 2u32..=8,
            block in 1usize..=8,
        ) {
            let denorm = f32::from_bits(denorm_steps); // smallest denormals
            prop_assume!(denorm > 0.0 && denorm < f32::MIN_POSITIVE);
            let w = tensor(vec![-0.0, denorm, -denorm, 0.0]);
            let q = AdaptiveBfp::new(bw, 8, block);
            let out = q.quantize_weights(&w);
            for (&v, &o) in w.data().iter().zip(out.values.data()) {
                prop_assert!(o.is_finite(), "{} -> {}", v, o);
                if v == 0.0 {
                    prop_assert_eq!(o, 0.0);
                } else {
                    let scale = block_scale(denorm);
                    prop_assert!((v - o).abs() <= scale, "{} -> {} (scale {})", v, o, scale);
                }
            }

            // An all -0.0 tensor quantizes to exact zeros.
            let z = tensor(vec![-0.0; 5]);
            let zq = q.quantize_weights(&z);
            prop_assert!(zq.values.data().iter().all(|&v| v == 0.0));
        }
    }
}
