//! The pluggable quantizer seam.
//!
//! [`Quantizer`] abstracts the three transforms a quantized layer needs —
//! weights to the `[-1, 1]` grid, activations to the `[0, 1]` grid, and
//! signed first-layer inputs to the `[-1, 1]` grid — so layers can hold a
//! `Box<dyn Quantizer>` built from a [`QuantConfig`] instead of hardcoding
//! the DoReFa functions. Both implementations preserve the range contracts
//! the VMAC error model depends on (paper Fig. 2 / Eq. 1).
//!
//! # Example
//!
//! ```
//! use ams_quant::{build_quantizer, QuantConfig, QuantScheme, WeightScheme};
//! use ams_tensor::Tensor;
//!
//! let cfg = QuantConfig::w8a8().with_scheme(QuantScheme::Bfp { block: 16 });
//! let q = build_quantizer(cfg, WeightScheme::default());
//! let w = Tensor::from_vec(&[3], vec![-0.7, 0.01, 2.5]).unwrap();
//! assert!(q.quantize_weights(&w).values.max_abs() <= 1.0);
//! ```

use ams_tensor::{quantize_symmetric_i8, Density, Tensor, Workspace};

use crate::bfp::AdaptiveBfp;
use crate::config::{QuantConfig, QuantScheme};
use crate::dorefa::{
    quantize_activations_in, quantize_signed_in, QuantizedWeights, WeightQuantizer, WeightScheme,
};

/// Weights re-coded onto the symmetric i8 grid for the integer GEMM fast
/// path (`ams_tensor::matmul_i8_in`).
///
/// `codes · scale` reproduces the scheme's quantized f32 weights up to
/// one extra rounding onto the 127-level grid — the re-coding error the
/// statistical acceptance bound in `tests/i8_gemm.rs` accounts for. The
/// `sparse` flag carries the density hint measured at quantize time so
/// the integer kernel's zero-skipping branch needs no rescan.
#[derive(Debug, Clone)]
pub struct QuantizedI8 {
    /// Symmetric i8 codes, same element order as the source tensor.
    pub codes: Vec<i8>,
    /// Dequantization scale: `w ≈ scale · code`.
    pub scale: f32,
    /// Whether the quantized weights measured mostly-zero.
    pub sparse: bool,
}

/// A weight/activation quantization scheme as seen by the layers.
///
/// All three transforms draw their outputs from the caller's
/// [`Workspace`], matching the allocation discipline of the DoReFa
/// functions they generalize. A 32-bit width must be an exact pass-through
/// (modulo the scheme's range clamp being a no-op for in-range values).
pub trait Quantizer: std::fmt::Debug + Send + Sync {
    /// The scheme this quantizer realizes (used in artifact/metric keys).
    fn scheme(&self) -> QuantScheme;

    /// Weight bit-width `B_W`.
    fn weight_bits(&self) -> u32;

    /// Activation bit-width `B_X`.
    fn activation_bits(&self) -> u32;

    /// Quantizes weights onto the `[-1, 1]` grid, returning values,
    /// straight-through gradient scales, and a density hint.
    fn quantize_weights_in(&self, ws: &Workspace, w: &Tensor) -> QuantizedWeights;

    /// Quantizes activations (already in `[0, 1]` up to clamping) onto the
    /// unit grid.
    fn quantize_activations_in(&self, ws: &Workspace, a: &Tensor) -> Tensor;

    /// Quantizes signed inputs (already in `[-1, 1]` up to clamping) onto
    /// the sign-magnitude grid used for first-layer images.
    fn quantize_signed_in(&self, ws: &Workspace, x: &Tensor) -> Tensor;

    /// [`Quantizer::quantize_weights_in`] with a throwaway workspace.
    fn quantize_weights(&self, w: &Tensor) -> QuantizedWeights {
        self.quantize_weights_in(&Workspace::new(), w)
    }

    /// Re-codes the scheme's quantized weights onto the symmetric i8 grid
    /// for the integer GEMM fast path.
    ///
    /// The default implementation runs the scheme's own
    /// [`Quantizer::quantize_weights_in`] first and re-codes its f32
    /// values, so any scheme whose widths fit in 8 bits gets the fast
    /// path for free; the intermediate f32 tensors are recycled straight
    /// back into the workspace. Only meaningful when
    /// `weight_bits() <= 8` — callers gate on that.
    fn quantize_weights_i8_in(&self, ws: &Workspace, w: &Tensor) -> QuantizedI8 {
        let qw = self.quantize_weights_in(ws, w);
        let (codes, scale) = quantize_symmetric_i8(qw.values.data());
        let sparse = matches!(qw.density, Density::Sparse);
        ws.recycle(qw.values);
        ws.recycle(qw.ste_scale);
        QuantizedI8 {
            codes,
            scale,
            sparse,
        }
    }
}

/// The paper's DoReFa transforms behind the [`Quantizer`] seam.
///
/// Delegates verbatim to [`WeightQuantizer`], [`quantize_activations_in`]
/// and [`quantize_signed_in`], so a `DorefaQuantizer` is bit-identical to
/// the pre-seam code path.
#[derive(Debug, Clone)]
pub struct DorefaQuantizer {
    weights: WeightQuantizer,
    bx: u32,
}

impl DorefaQuantizer {
    /// A DoReFa quantizer for the given widths and weight squash scheme.
    pub fn new(quant: QuantConfig, wscheme: WeightScheme) -> Self {
        DorefaQuantizer {
            weights: WeightQuantizer::with_scheme(quant.bw, wscheme),
            bx: quant.bx,
        }
    }
}

impl Quantizer for DorefaQuantizer {
    fn scheme(&self) -> QuantScheme {
        QuantScheme::Dorefa
    }

    fn weight_bits(&self) -> u32 {
        self.weights.bits()
    }

    fn activation_bits(&self) -> u32 {
        self.bx
    }

    fn quantize_weights_in(&self, ws: &Workspace, w: &Tensor) -> QuantizedWeights {
        self.weights.quantize_in(ws, w)
    }

    fn quantize_activations_in(&self, ws: &Workspace, a: &Tensor) -> Tensor {
        quantize_activations_in(ws, a, self.bx)
    }

    fn quantize_signed_in(&self, ws: &Workspace, x: &Tensor) -> Tensor {
        quantize_signed_in(ws, x, self.bx)
    }
}

/// Builds the [`Quantizer`] selected by `quant.scheme`.
///
/// `wscheme` only affects the DoReFa weight squash; block floating-point
/// clamps instead of squashing, so it ignores it.
pub fn build_quantizer(quant: QuantConfig, wscheme: WeightScheme) -> Box<dyn Quantizer> {
    match quant.scheme {
        QuantScheme::Dorefa => Box::new(DorefaQuantizer::new(quant, wscheme)),
        QuantScheme::Bfp { block } => Box::new(AdaptiveBfp::new(quant.bw, quant.bx, block)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dorefa_quantizer_matches_free_functions() {
        let ws = Workspace::new();
        let cfg = QuantConfig::w6a4();
        let q = build_quantizer(cfg, WeightScheme::default());
        assert_eq!(q.scheme(), QuantScheme::Dorefa);
        assert_eq!(q.weight_bits(), 6);
        assert_eq!(q.activation_bits(), 4);

        let w = Tensor::from_vec(&[5], vec![-1.4, -0.3, 0.0, 0.6, 2.0]).unwrap();
        let direct = WeightQuantizer::with_scheme(6, WeightScheme::default()).quantize_in(&ws, &w);
        let seam = q.quantize_weights_in(&ws, &w);
        assert_eq!(direct.values, seam.values);
        assert_eq!(direct.ste_scale, seam.ste_scale);

        let a = Tensor::from_vec(&[4], vec![-0.1, 0.2, 0.77, 1.3]).unwrap();
        assert_eq!(
            quantize_activations_in(&ws, &a, 4),
            q.quantize_activations_in(&ws, &a)
        );
        let x = Tensor::from_vec(&[4], vec![-0.9, -0.2, 0.4, 0.9]).unwrap();
        assert_eq!(
            quantize_signed_in(&ws, &x, 4),
            q.quantize_signed_in(&ws, &x)
        );
    }

    #[test]
    fn i8_recode_tracks_the_scheme_grid() {
        let ws = Workspace::new();
        let q = build_quantizer(QuantConfig::w8a8(), WeightScheme::default());
        let w = Tensor::from_vec(&[6], vec![-1.2, -0.4, 0.0, 0.3, 0.8, 1.5]).unwrap();
        let qw = q.quantize_weights_in(&ws, &w);
        let qi = q.quantize_weights_i8_in(&ws, &w);
        assert_eq!(qi.codes.len(), 6);
        assert!(!qi.sparse);
        // codes · scale reproduces the scheme's f32 grid to within half an
        // i8 step.
        for (c, v) in qi.codes.iter().zip(qw.values.data()) {
            assert!(
                (*c as f32 * qi.scale - v).abs() <= qi.scale * 0.5 + 1e-7,
                "code {c} scale {} vs value {v}",
                qi.scale
            );
        }
    }

    #[test]
    fn i8_recode_carries_the_density_hint() {
        // The identity (32-bit) weight path preserves zeros exactly, so a
        // mostly-zero tensor must come back flagged sparse. (The DoReFa
        // tanh grid nudges zeros off zero — its 0.5 midpoint is off-grid —
        // so it is deliberately not used here.)
        let q = build_quantizer(QuantConfig::fp32(), WeightScheme::default());
        let mut vals = vec![0.0f32; 64];
        vals[0] = 1.0;
        let w = Tensor::from_vec(&[64], vals).unwrap();
        let qi = q.quantize_weights_i8_in(&Workspace::new(), &w);
        assert!(qi.sparse);
        assert_eq!(qi.codes[0], 127);
        assert!(qi.codes[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn factory_selects_bfp() {
        let cfg = QuantConfig::w8a8().with_scheme(QuantScheme::Bfp { block: 8 });
        let q = build_quantizer(cfg, WeightScheme::default());
        assert_eq!(q.scheme(), QuantScheme::Bfp { block: 8 });
    }
}
