//! Deployment surgery: batch-norm folding and per-network energy
//! accounting.
//!
//! The paper (§2) notes that batch-norm parameters need not be quantized
//! because "after retraining, weights can be folded into the convolutional
//! layer, while biases can be added digitally at little extra energy
//! cost". [`fold_bn_into_conv`] implements exactly that fold. The energy
//! report realizes §4's "lookup table" idea at network granularity:
//! every layer's MAC count priced by the paper's Eq. 3–4 model.

use ams_core::energy::mac_energy_pj;
use ams_nn::BatchNorm2d;
use ams_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Folds an evaluation-mode batch-norm into the convolution preceding it.
///
/// For per-channel scale `s_o = γ_o / √(rv_o + ε)`, the folded layer
/// computes `conv(x; w·s) + (β − s·rm)`, which equals `BN(conv(x; w))`
/// with running statistics — an identity checked by the tests.
///
/// Returns the folded `(weight, bias)`; the weight has the input's
/// `(C_out, C_in, K, K)` shape, the bias has length `C_out`.
///
/// # Panics
///
/// Panics if `weight` is not 4-D or its `C_out` differs from the
/// batch-norm's channel count.
pub fn fold_bn_into_conv(weight: &Tensor, bn: &BatchNorm2d) -> (Tensor, Vec<f32>) {
    let (c_out, _, _, _) = weight.dims4();
    assert_eq!(
        c_out,
        bn.channels(),
        "fold: conv C_out {c_out} != BN channels {}",
        bn.channels()
    );
    let per_out = weight.len() / c_out;
    let gamma = bn.gamma().data();
    let beta = bn.beta().data();
    let rm = bn.running_mean().data();
    let rv = bn.running_var().data();
    let eps = bn.eps();

    let mut folded = weight.clone();
    let fd = folded.data_mut();
    let mut bias = Vec::with_capacity(c_out);
    for o in 0..c_out {
        let scale = gamma[o] / (rv[o] + eps).sqrt();
        for v in &mut fd[o * per_out..(o + 1) * per_out] {
            *v *= scale;
        }
        bias.push(beta[o] - scale * rm[o]);
    }
    (folded, bias)
}

/// One layer's line in a network energy report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerEnergy {
    /// Layer name.
    pub name: String,
    /// MAC operations per inference (one image).
    pub macs: usize,
    /// Multiplies per output activation (`N_tot`).
    pub n_tot: usize,
    /// Energy for this layer per inference, in pJ (0 when the network has
    /// no VMAC configured).
    pub energy_pj: f64,
}

/// A per-network energy estimate under the paper's Eq. 3–4 model.
///
/// Produced by [`crate::ResNetMini::energy_report`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Per-layer breakdown in forward order.
    pub layers: Vec<LayerEnergy>,
}

impl EnergyReport {
    /// Total MACs per inference.
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total energy per inference in pJ.
    pub fn total_pj(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_pj).sum()
    }

    /// Average energy per MAC in fJ (`None` for an empty report or zero
    /// MACs).
    pub fn fj_per_mac(&self) -> Option<f64> {
        let macs = self.total_macs();
        (macs > 0).then(|| self.total_pj() * 1e3 / macs as f64)
    }
}

/// Prices `macs` MAC operations on a VMAC with the given resolution and
/// fan-in (Eq. 3–4), in pJ.
pub(crate) fn layer_energy_pj(macs: usize, enob: f64, n_mult: usize) -> f64 {
    macs as f64 * mac_energy_pj(enob, n_mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_nn::{Conv2d, Layer, Mode};
    use ams_tensor::{rng, ExecCtx};

    #[test]
    fn folded_conv_matches_conv_then_bn() {
        let mut r = rng::seeded(1);
        let mut conv = Conv2d::new("c", 3, 4, 3, 1, 1, false, &mut r);
        let mut bn = BatchNorm2d::new("bn", 4);
        // Give BN non-trivial learned state by training on random batches.
        for _ in 0..20 {
            let mut x = Tensor::zeros(&[4, 3, 6, 6]);
            rng::fill_normal(&mut x, 0.3, 0.8, &mut r);
            let y = conv.forward(&ExecCtx::serial(), &x, Mode::Train);
            bn.forward(&ExecCtx::serial(), &y, Mode::Train);
        }
        // Perturb gamma/beta away from identity.
        bn.for_each_param(&mut |p| {
            let sign = if p.name().ends_with("gamma") {
                1.0
            } else {
                -0.5
            };
            for (i, v) in p.value.data_mut().iter_mut().enumerate() {
                *v += 0.1 * (i as f32 + 1.0) * sign;
            }
        });

        let mut x = Tensor::zeros(&[2, 3, 6, 6]);
        rng::fill_normal(&mut x, 0.0, 1.0, &mut r);
        let reference = bn.forward(
            &ExecCtx::serial(),
            &conv.forward(&ExecCtx::serial(), &x, Mode::Eval),
            Mode::Eval,
        );

        let (folded_w, folded_b) = fold_bn_into_conv(&conv.weight().value, &bn);
        let wmat = folded_w.reshaped(&[4, 27]);
        let (folded_y, _) = ams_nn::functional::conv2d_forward(
            &ExecCtx::serial(),
            &x,
            &wmat,
            ams_tensor::Density::Sample,
            Some(&folded_b),
            3,
            3,
            1,
            1,
            false,
        );

        for (a, b) in reference.data().iter().zip(folded_y.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn energy_report_aggregation() {
        let report = EnergyReport {
            layers: vec![
                LayerEnergy {
                    name: "a".into(),
                    macs: 1000,
                    n_tot: 27,
                    energy_pj: 2.0,
                },
                LayerEnergy {
                    name: "b".into(),
                    macs: 3000,
                    n_tot: 72,
                    energy_pj: 6.0,
                },
            ],
        };
        assert_eq!(report.total_macs(), 4000);
        assert!((report.total_pj() - 8.0).abs() < 1e-12);
        assert!((report.fj_per_mac().expect("macs > 0") - 2.0).abs() < 1e-12);
        assert!(EnergyReport::default().fj_per_mac().is_none());
    }

    #[test]
    fn layer_energy_uses_eq3_eq4() {
        // 1000 MACs at ENOB 12 / N_mult 8 ≈ 1000 · 313 fJ.
        let pj = layer_energy_pj(1000, 12.0, 8);
        assert!((pj - 313.0).abs() < 15.0, "{pj}");
    }
}
