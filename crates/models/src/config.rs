//! The hardware description applied to a network.

use ams_core::error_model::{ErrorModel, ErrorModelConfig, ErrorModelKind};
use ams_core::mismatch::MismatchModel;
use ams_core::vmac::Vmac;
use ams_quant::{QuantConfig, QuantScheme, WeightScheme};
use ams_tensor::noise_stream_seed;
use serde::{Deserialize, Serialize};

use crate::spec::ModelKind;

/// How a quantized layer interprets its input activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InputKind {
    /// Inputs are already in `[0, 1]` (the output of a preceding ReLU-1);
    /// quantized unsigned to `B_X` bits.
    #[default]
    Unit,
    /// Inputs are raw network inputs in `[0, 1]`; the layer rescales them
    /// to `[-1, 1]` and quantizes sign-magnitude to `B_X` bits — the
    /// paper's first-layer treatment ("we rescale them by the maximum
    /// input activation value so that they lie in the range [-1, 1] before
    /// quantizing", §2).
    SignedRescaled,
}

/// The full hardware story applied to every quantized layer of a network.
///
/// Three presets cover the paper's regimes:
///
/// * [`HardwareConfig::fp32`] — no quantization, no error (baseline);
/// * [`HardwareConfig::quantized`] — DoReFa quantization only (Table 1);
/// * [`HardwareConfig::ams`] — quantization plus VMAC error injection
///   (Figs. 4–6, Table 2).
///
/// # Example
///
/// ```
/// use ams_core::vmac::Vmac;
/// use ams_models::HardwareConfig;
/// use ams_quant::QuantConfig;
///
/// let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 10.0));
/// assert!(hw.vmac.is_some());
/// assert!(hw.inject_eval && hw.inject_train);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Weight/activation bit-widths.
    pub quant: QuantConfig,
    /// Weight transform scheme.
    pub scheme: WeightScheme,
    /// The AMS cell; `None` models ideal digital hardware.
    pub vmac: Option<Vmac>,
    /// Inject AMS error during training forward passes.
    pub inject_train: bool,
    /// Inject AMS error during evaluation forward passes.
    pub inject_eval: bool,
    /// Inject into the *last* layer during training. The paper found this
    /// destroys learning and leaves it off (§2); it stays available for
    /// the ablation that reproduces that finding.
    pub inject_last_layer_train: bool,
    /// Which error model realizes the VMAC error budget (lumped Gaussian,
    /// composite multiplier + ADC, per-VMAC chunked simulation, or ideal —
    /// see [`ErrorModelConfig`]).
    pub error_model: ErrorModelConfig,
    /// Optional static device mismatch applied to the realized weights
    /// (paper §4's "non-additive and data-dependent errors").
    pub mismatch: Option<MismatchModel>,
    /// Master seed for the per-layer error streams.
    pub noise_seed: u64,
    /// Which topology this hardware is mounted on. Stamped by the model
    /// constructors; scopes per-layer metric keys so quantizer × model ×
    /// error-model scenarios don't collide (absent in configs serialized
    /// before the model seam existed; defaults to ResNetMini).
    pub model_tag: ModelKind,
}

impl HardwareConfig {
    /// Full-precision digital hardware: the FP32 baseline.
    pub fn fp32() -> Self {
        HardwareConfig {
            quant: QuantConfig::fp32(),
            scheme: WeightScheme::Tanh,
            vmac: None,
            inject_train: false,
            inject_eval: false,
            inject_last_layer_train: false,
            error_model: ErrorModelConfig::Lumped,
            mismatch: None,
            noise_seed: 0,
            model_tag: ModelKind::ResNetMini,
        }
    }

    /// Ideal digital hardware at reduced precision (Table 1 rows).
    pub fn quantized(quant: QuantConfig) -> Self {
        HardwareConfig {
            quant,
            ..Self::fp32()
        }
    }

    /// AMS hardware: quantization plus error injection in both training
    /// and evaluation (the paper's retraining configuration).
    pub fn ams(quant: QuantConfig, vmac: Vmac) -> Self {
        HardwareConfig {
            quant,
            vmac: Some(vmac),
            inject_train: true,
            inject_eval: true,
            ..Self::fp32()
        }
    }

    /// AMS hardware with error injected at evaluation time only (the
    /// "AMS error in eval only" series of Figs. 4–5).
    pub fn ams_eval_only(quant: QuantConfig, vmac: Vmac) -> Self {
        HardwareConfig {
            inject_train: false,
            ..Self::ams(quant, vmac)
        }
    }

    /// Returns a copy with a different noise seed (each of the five
    /// validation passes uses a fresh seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.noise_seed = seed;
        self
    }

    /// Returns a copy using per-VMAC chunked quantization at evaluation
    /// (paper §4's fine-grained mode; training still uses the lumped
    /// Gaussian, exactly as the paper suggests to avoid the slowdown).
    pub fn with_per_vmac_eval(self) -> Self {
        self.with_error_model(ErrorModelConfig::per_vmac())
    }

    /// Returns a copy selecting a different error model.
    pub fn with_error_model(mut self, error_model: ErrorModelConfig) -> Self {
        self.error_model = error_model;
        self
    }

    /// Builds the live per-layer error model for the layer at
    /// `layer_index`, seeding its noise stream from this config's master
    /// seed exactly as the pre-trait injector wiring did.
    pub fn build_error_model(&self, layer_index: u64) -> Box<dyn ErrorModel> {
        self.error_model.build(
            self.vmac,
            self.mismatch,
            noise_stream_seed(self.noise_seed, layer_index),
        )
    }

    /// Returns a copy with static device mismatch applied to the realized
    /// weights.
    pub fn with_mismatch(mut self, mismatch: MismatchModel) -> Self {
        self.mismatch = Some(mismatch);
        self
    }

    /// Returns a copy tagged with the topology it is mounted on (stamped
    /// by the model constructors; scopes per-layer metric keys).
    pub fn with_model_tag(mut self, model: ModelKind) -> Self {
        self.model_tag = model;
        self
    }

    /// The gauge key under which a layer reports its injected-noise
    /// statistics.
    ///
    /// The default scenario (ResNetMini topology, DoReFa quantization)
    /// keeps the legacy `noise.<layer>.<kind>.enob<e>` key so committed
    /// dashboards and CI assertions stay valid; any other scenario scopes
    /// the key as `noise.<layer>.<model>.<quant>.<kind>.enob<e>`.
    pub fn noise_gauge_key(&self, layer: &str, kind: ErrorModelKind, enob: f64) -> String {
        if self.model_tag == ModelKind::ResNetMini && self.quant.scheme == QuantScheme::Dorefa {
            format!("noise.{layer}.{kind}.enob{enob:.1}")
        } else {
            format!(
                "noise.{layer}.{}.{}.{kind}.enob{enob:.1}",
                self.model_tag.key(),
                self.quant.scheme.key()
            )
        }
    }

    /// Whether a layer built from this config injects error in the given
    /// situation.
    pub fn injects(&self, train: bool, is_last_layer: bool) -> bool {
        if self.vmac.is_none() {
            return false;
        }
        if train {
            self.inject_train && (!is_last_layer || self.inject_last_layer_train)
        } else {
            self.inject_eval
        }
    }
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self::fp32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(HardwareConfig::fp32().quant.is_fp32());
        let q = HardwareConfig::quantized(QuantConfig::w6a6());
        assert_eq!(q.quant, QuantConfig::w6a6());
        assert!(q.vmac.is_none());
    }

    #[test]
    fn injection_rules_follow_the_paper() {
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::default());
        // Every layer at eval, including the last.
        assert!(hw.injects(false, true));
        assert!(hw.injects(false, false));
        // During training, every layer except the last.
        assert!(hw.injects(true, false));
        assert!(!hw.injects(true, true));
        // Eval-only variant never injects in training.
        let eo = HardwareConfig::ams_eval_only(QuantConfig::w8a8(), Vmac::default());
        assert!(!eo.injects(true, false));
        assert!(eo.injects(false, false));
        // Digital hardware never injects.
        assert!(!HardwareConfig::quantized(QuantConfig::w8a8()).injects(false, false));
    }

    #[test]
    fn error_model_selection_flows_into_built_models() {
        use ams_core::error_model::ErrorModelKind;
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::default());
        assert_eq!(hw.error_model, ErrorModelConfig::Lumped);
        assert_eq!(hw.build_error_model(0).kind(), ErrorModelKind::Lumped);

        let pv = hw.with_per_vmac_eval();
        assert_eq!(pv.error_model, ErrorModelConfig::per_vmac());
        let model = pv.build_error_model(3);
        assert_eq!(model.kind(), ErrorModelKind::PerVmac);
        assert!(model.operand_sim().is_some());

        let ideal = hw.with_error_model(ErrorModelConfig::Ideal);
        assert!(ideal.build_error_model(0).sigma_hint(64).is_none());
    }
}
