//! The hardware description applied to a network.

use ams_core::mismatch::MismatchModel;
use ams_core::vmac::Vmac;
use ams_quant::{QuantConfig, WeightScheme};
use serde::{Deserialize, Serialize};

/// How AMS error is realized at evaluation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ErrorMode {
    /// One Gaussian per output activation with Eq. 2's σ — the paper's
    /// main method (fast; assumes independent per-VMAC errors).
    #[default]
    Lumped,
    /// Chunk every reduction into `N_mult`-sized analog partial sums and
    /// quantize each on the ADC grid (paper §4's proposed refinement:
    /// "split up the convolution into VMAC-sized units and inject error
    /// at the output of each VMAC separately... this modeling can be
    /// performed for evaluation only"). Training still uses the lumped
    /// model, exactly as the paper suggests to avoid the slowdown.
    PerVmac,
}

/// How a quantized layer interprets its input activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum InputKind {
    /// Inputs are already in `[0, 1]` (the output of a preceding ReLU-1);
    /// quantized unsigned to `B_X` bits.
    #[default]
    Unit,
    /// Inputs are raw network inputs in `[0, 1]`; the layer rescales them
    /// to `[-1, 1]` and quantizes sign-magnitude to `B_X` bits — the
    /// paper's first-layer treatment ("we rescale them by the maximum
    /// input activation value so that they lie in the range [-1, 1] before
    /// quantizing", §2).
    SignedRescaled,
}

/// The full hardware story applied to every quantized layer of a network.
///
/// Three presets cover the paper's regimes:
///
/// * [`HardwareConfig::fp32`] — no quantization, no error (baseline);
/// * [`HardwareConfig::quantized`] — DoReFa quantization only (Table 1);
/// * [`HardwareConfig::ams`] — quantization plus VMAC error injection
///   (Figs. 4–6, Table 2).
///
/// # Example
///
/// ```
/// use ams_core::vmac::Vmac;
/// use ams_models::HardwareConfig;
/// use ams_quant::QuantConfig;
///
/// let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 10.0));
/// assert!(hw.vmac.is_some());
/// assert!(hw.inject_eval && hw.inject_train);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Weight/activation bit-widths.
    pub quant: QuantConfig,
    /// Weight transform scheme.
    pub scheme: WeightScheme,
    /// The AMS cell; `None` models ideal digital hardware.
    pub vmac: Option<Vmac>,
    /// Inject AMS error during training forward passes.
    pub inject_train: bool,
    /// Inject AMS error during evaluation forward passes.
    pub inject_eval: bool,
    /// Inject into the *last* layer during training. The paper found this
    /// destroys learning and leaves it off (§2); it stays available for
    /// the ablation that reproduces that finding.
    pub inject_last_layer_train: bool,
    /// How evaluation-time error is realized (lumped Gaussian vs
    /// per-VMAC chunked quantization, paper §4).
    pub error_mode: ErrorMode,
    /// Optional static device mismatch applied to the realized weights
    /// (paper §4's "non-additive and data-dependent errors").
    pub mismatch: Option<MismatchModel>,
    /// Master seed for the per-layer error streams.
    pub noise_seed: u64,
}

impl HardwareConfig {
    /// Full-precision digital hardware: the FP32 baseline.
    pub fn fp32() -> Self {
        HardwareConfig {
            quant: QuantConfig::fp32(),
            scheme: WeightScheme::Tanh,
            vmac: None,
            inject_train: false,
            inject_eval: false,
            inject_last_layer_train: false,
            error_mode: ErrorMode::Lumped,
            mismatch: None,
            noise_seed: 0,
        }
    }

    /// Ideal digital hardware at reduced precision (Table 1 rows).
    pub fn quantized(quant: QuantConfig) -> Self {
        HardwareConfig {
            quant,
            ..Self::fp32()
        }
    }

    /// AMS hardware: quantization plus error injection in both training
    /// and evaluation (the paper's retraining configuration).
    pub fn ams(quant: QuantConfig, vmac: Vmac) -> Self {
        HardwareConfig {
            quant,
            vmac: Some(vmac),
            inject_train: true,
            inject_eval: true,
            ..Self::fp32()
        }
    }

    /// AMS hardware with error injected at evaluation time only (the
    /// "AMS error in eval only" series of Figs. 4–5).
    pub fn ams_eval_only(quant: QuantConfig, vmac: Vmac) -> Self {
        HardwareConfig {
            inject_train: false,
            ..Self::ams(quant, vmac)
        }
    }

    /// Returns a copy with a different noise seed (each of the five
    /// validation passes uses a fresh seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.noise_seed = seed;
        self
    }

    /// Returns a copy using per-VMAC chunked quantization at evaluation
    /// (paper §4's fine-grained mode).
    pub fn with_per_vmac_eval(mut self) -> Self {
        self.error_mode = ErrorMode::PerVmac;
        self
    }

    /// Returns a copy with static device mismatch applied to the realized
    /// weights.
    pub fn with_mismatch(mut self, mismatch: MismatchModel) -> Self {
        self.mismatch = Some(mismatch);
        self
    }

    /// Whether a layer built from this config injects error in the given
    /// situation.
    pub fn injects(&self, train: bool, is_last_layer: bool) -> bool {
        if self.vmac.is_none() {
            return false;
        }
        if train {
            self.inject_train && (!is_last_layer || self.inject_last_layer_train)
        } else {
            self.inject_eval
        }
    }
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self::fp32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(HardwareConfig::fp32().quant.is_fp32());
        let q = HardwareConfig::quantized(QuantConfig::w6a6());
        assert_eq!(q.quant, QuantConfig::w6a6());
        assert!(q.vmac.is_none());
    }

    #[test]
    fn injection_rules_follow_the_paper() {
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::default());
        // Every layer at eval, including the last.
        assert!(hw.injects(false, true));
        assert!(hw.injects(false, false));
        // During training, every layer except the last.
        assert!(hw.injects(true, false));
        assert!(!hw.injects(true, true));
        // Eval-only variant never injects in training.
        let eo = HardwareConfig::ams_eval_only(QuantConfig::w8a8(), Vmac::default());
        assert!(!eo.injects(true, false));
        assert!(eo.injects(false, false));
        // Digital hardware never injects.
        assert!(!HardwareConfig::quantized(QuantConfig::w8a8()).injects(false, false));
    }
}
