//! The ResNet-mini network (ResNet-50 stand-in; see DESIGN.md).

use ams_nn::{BatchNorm2d, ClippedRelu, GlobalAvgPool, Layer, Mode, Param};
use ams_tensor::{rng, ExecCtx, Tensor};
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::block::BasicBlock;
use crate::config::{HardwareConfig, InputKind};
use crate::freeze::FreezePolicy;
use crate::frozen::SharedModelWeights;
use crate::qconv::QConv2d;
use crate::qlinear::QLinear;
use crate::spec::{AmsModel, ModelKind};
use crate::surgery::{EnergyReport, LayerEnergy};

/// Architecture of a [`ResNetMini`].
///
/// Stem convolution (stride 1) into three stages of [`BasicBlock`]s; the
/// first block of stages 2 and 3 downsamples by 2. A global average pool
/// and a quantized fully-connected classifier form the head.
///
/// # Example
///
/// ```
/// use ams_models::ResNetMiniConfig;
///
/// let arch = ResNetMiniConfig::quick();
/// assert_eq!(arch.conv_layer_count(), 1 + 3 * 2 * arch.blocks_per_stage + 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetMiniConfig {
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Output classes.
    pub classes: usize,
    /// Stem output channels.
    pub stem_channels: usize,
    /// Channel widths of the three stages.
    pub stage_widths: [usize; 3],
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Seed for weight initialization (two nets built with equal configs
    /// start with identical weights).
    pub init_seed: u64,
}

impl ResNetMiniConfig {
    /// The default experiment-scale architecture (≈11 conv layers), sized
    /// for 16×16 SynthImageNet.
    pub fn quick() -> Self {
        ResNetMiniConfig {
            in_channels: 3,
            classes: 16,
            stem_channels: 8,
            stage_widths: [8, 16, 32],
            blocks_per_stage: 1,
            init_seed: 42,
        }
    }

    /// A deeper/wider architecture for `--scale full` runs.
    pub fn full() -> Self {
        ResNetMiniConfig {
            in_channels: 3,
            classes: 20,
            stem_channels: 16,
            stage_widths: [16, 32, 64],
            blocks_per_stage: 2,
            init_seed: 42,
        }
    }

    /// A minimal architecture for unit tests.
    pub fn tiny() -> Self {
        ResNetMiniConfig {
            in_channels: 3,
            classes: 4,
            stem_channels: 4,
            stage_widths: [4, 8, 8],
            blocks_per_stage: 1,
            init_seed: 42,
        }
    }

    /// Number of (quantized) convolutional layers, counting projection
    /// shortcuts in stages 2 and 3 and the stem.
    pub fn conv_layer_count(&self) -> usize {
        // Stem + per-block 2 convs + one projection in the first block of
        // each stage whose shape changes (stages 2 and 3 always; stage 1
        // only if stem_channels != stage_widths[0]).
        let mut count = 1 + 3 * 2 * self.blocks_per_stage;
        if self.stem_channels != self.stage_widths[0] {
            count += 1;
        }
        count += 2; // stage 2 and 3 first-block projections (stride 2)
        count
    }
}

impl Default for ResNetMiniConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// The ResNet-50 stand-in: a small residual network whose every
/// convolution and classifier is a quantized/AMS layer.
///
/// Built twice from the same [`ResNetMiniConfig`] — once with
/// [`HardwareConfig::fp32`], once with an AMS config — the two networks
/// share parameter names, so an FP32 checkpoint loads directly into the
/// AMS twin (the paper's "retraining after modifying the network" flow).
#[derive(Debug)]
pub struct ResNetMini {
    name: String,
    stem: QConv2d,
    bn0: BatchNorm2d,
    act0: ClippedRelu,
    stages: Vec<Vec<BasicBlock>>,
    gap: GlobalAvgPool,
    fc: QLinear,
    fc_in: usize,
    config: ResNetMiniConfig,
    hw: HardwareConfig,
}

/// Noise-stream index of the classifier (kept clear of the conv indices).
const FC_NOISE_INDEX: u64 = 1000;

impl ResNetMini {
    /// Builds the network for the given architecture and hardware.
    pub fn new(arch: &ResNetMiniConfig, hw: &HardwareConfig) -> Self {
        let hw = &hw.with_model_tag(ModelKind::ResNetMini);
        let mut init = rng::seeded(arch.init_seed);
        let stem = QConv2d::new(
            "stem",
            arch.in_channels,
            arch.stem_channels,
            3,
            1,
            1,
            hw,
            InputKind::SignedRescaled,
            0,
            &mut init,
        );
        let bn0 = BatchNorm2d::new("bn0", arch.stem_channels);
        let mut stages = Vec::with_capacity(3);
        let mut c_in = arch.stem_channels;
        let mut noise_base = 1u64;
        for (si, &width) in arch.stage_widths.iter().enumerate() {
            let mut blocks = Vec::with_capacity(arch.blocks_per_stage);
            for bi in 0..arch.blocks_per_stage {
                let stride = if si > 0 && bi == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(
                    format!("s{}.b{bi}", si + 1),
                    c_in,
                    width,
                    stride,
                    hw,
                    noise_base,
                    &mut init,
                ));
                noise_base += BasicBlock::NOISE_SLOTS;
                c_in = width;
            }
            stages.push(blocks);
        }
        let fc_in = arch.stage_widths[2];
        let fc = QLinear::new(
            "fc",
            fc_in,
            arch.classes,
            hw,
            true,
            FC_NOISE_INDEX,
            &mut init,
        );
        ResNetMini {
            name: "resnet_mini".to_string(),
            stem,
            bn0,
            act0: ClippedRelu::new("act0"),
            stages,
            gap: GlobalAvgPool::new("gap"),
            fc,
            fc_in,
            config: *arch,
            hw: *hw,
        }
    }

    /// The architecture this network was built from.
    pub fn config(&self) -> &ResNetMiniConfig {
        &self.config
    }

    /// Visits every quantized convolution in forward order.
    pub fn for_each_qconv(&mut self, f: &mut dyn FnMut(&mut QConv2d)) {
        f(&mut self.stem);
        for stage in &mut self.stages {
            for block in stage {
                block.for_each_qconv(f);
            }
        }
    }

    /// Visits every batch-norm layer.
    pub fn for_each_bn(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.bn0);
        for stage in &mut self.stages {
            for block in stage {
                block.for_each_bn(f);
            }
        }
    }

    /// Reseeds every layer's AMS noise stream — called before each of the
    /// paper's five independent validation passes.
    pub fn reseed_noise(&mut self, pass_seed: u64) {
        let mut idx = 0u64;
        self.for_each_qconv(&mut |c| {
            c.reseed_noise(pass_seed, idx);
            idx += 1;
        });
        self.fc.reseed_noise(pass_seed, FC_NOISE_INDEX);
    }

    /// Snapshots every layer's AMS noise-stream cursor, in forward order
    /// (convolutions, then the classifier). Together with the model
    /// weights, the optimizer state and the data-shuffle cursor this is
    /// what makes a killed-and-resumed retraining run bit-identical to an
    /// uninterrupted one (DESIGN.md §9).
    pub fn noise_states(&mut self) -> Vec<ams_tensor::rng::RngState> {
        let mut out = Vec::new();
        self.for_each_qconv(&mut |c| out.push(c.noise_state()));
        out.push(self.fc.noise_state());
        out
    }

    /// Repositions every layer's noise stream at the captured cursors
    /// (the inverse of [`ResNetMini::noise_states`]).
    ///
    /// # Panics
    ///
    /// Panics if `states` was captured from a different architecture
    /// (wrong layer count) — resuming would silently desynchronize the
    /// noise streams otherwise.
    pub fn restore_noise_states(&mut self, states: &[ams_tensor::rng::RngState]) {
        assert_eq!(
            states.len(),
            self.config.conv_layer_count() + 1,
            "noise-state checkpoint has {} streams, this architecture needs {}",
            states.len(),
            self.config.conv_layer_count() + 1,
        );
        let mut it = states.iter();
        self.for_each_qconv(&mut |c| {
            c.restore_noise_state(it.next().expect("length checked above"));
        });
        self.fc
            .restore_noise_state(it.next().expect("length checked above"));
    }

    /// Quantizes every layer's shadow weights once for serving replicas
    /// (see [`AmsModel::freeze_shared_weights`]).
    pub fn freeze_shared_weights(&mut self, ctx: &ExecCtx) -> SharedModelWeights {
        let mut convs = Vec::new();
        self.for_each_qconv(&mut |c| convs.push(c.freeze_eval_weights(ctx)));
        let fc = self.fc.freeze_eval_weights(ctx);
        SharedModelWeights { convs, fc }
    }

    /// Installs a twin network's frozen weights on this replica
    /// (see [`AmsModel::adopt_shared_weights`]).
    ///
    /// # Panics
    ///
    /// Panics if `shared` came from a different architecture.
    pub fn adopt_shared_weights(&mut self, shared: &SharedModelWeights) {
        assert_eq!(
            shared.convs.len(),
            self.config.conv_layer_count(),
            "shared weights have {} conv layers, this architecture needs {}",
            shared.convs.len(),
            self.config.conv_layer_count(),
        );
        let mut it = shared.convs.iter();
        self.for_each_qconv(&mut |c| {
            c.adopt_frozen_weights(Arc::clone(it.next().expect("length checked above")));
        });
        self.fc.adopt_frozen_weights(Arc::clone(&shared.fc));
    }

    /// Sets (or clears) per-request noise seeds on every layer, using the
    /// same per-layer noise indices as [`ResNetMini::reseed_noise`]
    /// (see [`AmsModel::set_request_noise_seeds`]).
    pub fn set_request_noise_seeds(&mut self, seeds: Option<Arc<Vec<u64>>>) {
        let mut idx = 0u64;
        self.for_each_qconv(&mut |c| {
            c.set_request_noise_seeds(seeds.clone(), idx);
            idx += 1;
        });
        self.fc.set_request_noise_seeds(seeds, FC_NOISE_INDEX);
    }

    /// Enables or disables output-mean probes on every convolution
    /// (paper Fig. 6). Enabling resets the accumulators.
    pub fn set_probes(&mut self, enabled: bool) {
        self.for_each_qconv(&mut |c| c.set_probe(enabled));
    }

    /// Collects `(layer_name, mean)` for every probed convolution that has
    /// observed data, in forward order.
    pub fn probe_means(&mut self) -> Vec<(String, f32)> {
        let mut out = Vec::new();
        self.for_each_qconv(&mut |c| {
            if let Some(m) = c.probe_mean() {
                out.push((c.name().to_string(), m));
            }
        });
        out
    }

    /// Applies a Table 2 freezing policy to all parameters.
    pub fn apply_freeze(&mut self, policy: FreezePolicy) {
        policy.apply(self);
    }

    /// The hardware configuration the network was built with.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// Prices one inference at the given square input size under the
    /// paper's Eq. 3–4 energy model (the §4 "lookup table" at network
    /// granularity). Runs a dummy forward pass to size every layer.
    ///
    /// When no VMAC is configured, per-layer energies are zero but MAC
    /// counts are still reported.
    ///
    /// # Panics
    ///
    /// Panics if `image_size` is too small for the network's strides.
    pub fn energy_report(&mut self, ctx: &ExecCtx, image_size: usize) -> EnergyReport {
        let dummy = Tensor::zeros(&[1, self.config.in_channels, image_size, image_size]);
        let _ = self.forward(ctx, &dummy, Mode::Eval);
        let vmac = self.hw.vmac;
        let mut layers = Vec::new();
        self.for_each_qconv(&mut |c| {
            let macs = c.macs_per_image().expect("forward just ran");
            let energy_pj = vmac
                .map(|v| crate::surgery::layer_energy_pj(macs, v.enob, v.n_mult))
                .unwrap_or(0.0);
            layers.push(LayerEnergy {
                name: c.name().to_string(),
                macs,
                n_tot: c.n_tot(),
                energy_pj,
            });
        });
        let fc_macs = self.fc.macs_per_image();
        layers.push(LayerEnergy {
            name: self.fc.name().to_string(),
            macs: fc_macs,
            n_tot: self.fc.n_tot(),
            energy_pj: vmac
                .map(|v| crate::surgery::layer_energy_pj(fc_macs, v.enob, v.n_mult))
                .unwrap_or(0.0),
        });
        EnergyReport { layers }
    }

    /// Per-layer `(name, N_tot, σ)` of the injected AMS error under the
    /// network's hardware config (empty σ values when no VMAC).
    pub fn error_budget(&mut self) -> Vec<(String, usize, Option<f32>)> {
        let mut out = Vec::new();
        self.for_each_qconv(&mut |c| {
            out.push((c.name().to_string(), c.n_tot(), c.error_sigma()));
        });
        out.push((
            self.fc.name().to_string(),
            self.fc.n_tot(),
            self.fc.error_sigma(),
        ));
        out
    }
}

impl Layer for ResNetMini {
    fn forward(&mut self, ctx: &ExecCtx, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = self.stem.forward(ctx, input, mode);
        x = self.bn0.forward(ctx, &x, mode);
        x = self.act0.forward(ctx, &x, mode);
        for stage in &mut self.stages {
            for block in stage {
                x = block.forward(ctx, &x, mode);
            }
        }
        let pooled = self.gap.forward(ctx, &x, mode);
        debug_assert_eq!(pooled.dims()[1], self.fc_in);
        self.fc.forward(ctx, &pooled, mode)
    }

    fn backward(&mut self, ctx: &ExecCtx, grad_output: &Tensor) -> Tensor {
        let mut g = self.fc.backward(ctx, grad_output);
        g = self.gap.backward(ctx, &g);
        for stage in self.stages.iter_mut().rev() {
            for block in stage.iter_mut().rev() {
                g = block.backward(ctx, &g);
            }
        }
        g = self.act0.backward(ctx, &g);
        g = self.bn0.backward(ctx, &g);
        self.stem.backward(ctx, &g)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.for_each_param(f);
        self.bn0.for_each_param(f);
        for stage in &mut self.stages {
            for block in stage {
                block.for_each_param(f);
            }
        }
        self.fc.for_each_param(f);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&str, &mut Tensor)) {
        self.stem.for_each_state(f);
        self.bn0.for_each_state(f);
        for stage in &mut self.stages {
            for block in stage {
                block.for_each_state(f);
            }
        }
        self.fc.for_each_state(f);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// Inherent methods take precedence in resolution, so each trait method
// dispatches to the concrete implementation above.
impl AmsModel for ResNetMini {
    fn kind(&self) -> ModelKind {
        ModelKind::ResNetMini
    }

    fn hardware(&self) -> &HardwareConfig {
        self.hardware()
    }

    fn reseed_noise(&mut self, pass_seed: u64) {
        self.reseed_noise(pass_seed);
    }

    fn noise_states(&mut self) -> Vec<rng::RngState> {
        self.noise_states()
    }

    fn restore_noise_states(&mut self, states: &[rng::RngState]) {
        self.restore_noise_states(states);
    }

    fn set_probes(&mut self, enabled: bool) {
        self.set_probes(enabled);
    }

    fn probe_means(&mut self) -> Vec<(String, f32)> {
        self.probe_means()
    }

    fn apply_freeze(&mut self, policy: FreezePolicy) {
        self.apply_freeze(policy);
    }

    fn energy_report(&mut self, ctx: &ExecCtx, image_size: usize) -> EnergyReport {
        self.energy_report(ctx, image_size)
    }

    fn error_budget(&mut self) -> Vec<(String, usize, Option<f32>)> {
        self.error_budget()
    }

    fn freeze_shared_weights(&mut self, ctx: &ExecCtx) -> SharedModelWeights {
        self.freeze_shared_weights(ctx)
    }

    fn adopt_shared_weights(&mut self, shared: &SharedModelWeights) {
        self.adopt_shared_weights(shared);
    }

    fn set_request_noise_seeds(&mut self, seeds: Option<Arc<Vec<u64>>>) {
        self.set_request_noise_seeds(seeds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_core::vmac::Vmac;
    use ams_nn::Checkpoint;
    use ams_quant::QuantConfig;

    #[test]
    fn forward_shapes() {
        let arch = ResNetMiniConfig::tiny();
        let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
        let y = net.forward(
            &ExecCtx::serial(),
            &Tensor::zeros(&[2, 3, 8, 8]),
            Mode::Eval,
        );
        assert_eq!(y.dims(), &[2, 4]);
    }

    #[test]
    fn same_seed_same_network() {
        let arch = ResNetMiniConfig::tiny();
        let mut a = ResNetMini::new(&arch, &HardwareConfig::fp32());
        let mut b = ResNetMini::new(&arch, &HardwareConfig::fp32());
        let x = Tensor::full(&[1, 3, 8, 8], 0.3);
        assert_eq!(
            a.forward(&ExecCtx::serial(), &x, Mode::Eval),
            b.forward(&ExecCtx::serial(), &x, Mode::Eval)
        );
    }

    #[test]
    fn checkpoint_transfers_between_hardware_configs() {
        let arch = ResNetMiniConfig {
            init_seed: 1,
            ..ResNetMiniConfig::tiny()
        };
        let mut fp = ResNetMini::new(&arch, &HardwareConfig::fp32());
        let ckpt = Checkpoint::from_layer(&mut fp);
        let arch2 = ResNetMiniConfig {
            init_seed: 2,
            ..arch
        };
        let hw = HardwareConfig::quantized(QuantConfig::w8a8());
        let mut q = ResNetMini::new(&arch2, &hw);
        ckpt.load_into(&mut q).expect("names and shapes must match");
        // The quantized net now holds the FP32 weights as shadows. (Avoid
        // a constant-0.5 input: the signed rescale maps it to exactly 0.)
        let mut r = rng::seeded(31);
        let mut x = Tensor::zeros(&[1, 3, 8, 8]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y_fp = fp.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let y_q = q.forward(&ExecCtx::serial(), &x, Mode::Eval);
        // Not identical (quantization), but strongly correlated.
        let corr: f32 = y_fp.data().iter().zip(y_q.data()).map(|(a, b)| a * b).sum();
        assert!(corr != 0.0);
    }

    #[test]
    fn backward_reaches_every_parameter() {
        let arch = ResNetMiniConfig::tiny();
        let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
        let mut r = rng::seeded(9);
        let mut x = Tensor::zeros(&[4, 3, 8, 8]);
        rng::fill_uniform(&mut x, 0.0, 1.0, &mut r);
        let y = net.forward(&ExecCtx::serial(), &x, Mode::Train);
        let (_, grad) = ams_nn::softmax_cross_entropy(&y, &[0, 1, 2, 3]);
        net.backward(&ExecCtx::serial(), &grad);
        let mut zero_grads = Vec::new();
        net.for_each_param(&mut |p| {
            if p.grad.max_abs() == 0.0 {
                zero_grads.push(p.name().to_string());
            }
        });
        // Batch-norm betas always receive gradient; convs may have dead
        // ReLU corners in a tiny net but the bulk must be nonzero.
        assert!(
            zero_grads.len() < 3,
            "too many parameters without gradient: {zero_grads:?}"
        );
    }

    #[test]
    fn eval_with_ams_error_is_stochastic_until_reseeded() {
        let arch = ResNetMiniConfig::tiny();
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 8.0));
        let mut net = ResNetMini::new(&arch, &hw);
        let x = Tensor::full(&[1, 3, 8, 8], 0.4);
        let y1 = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let y2 = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_ne!(y1, y2, "fresh noise every pass");
        net.reseed_noise(777);
        let a = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        net.reseed_noise(777);
        let b = net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        assert_eq!(a, b, "reseeding reproduces a pass exactly");
    }

    #[test]
    fn probes_cover_all_convs() {
        let arch = ResNetMiniConfig::tiny();
        let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
        net.set_probes(true);
        let x = Tensor::full(&[1, 3, 8, 8], 0.6);
        net.forward(&ExecCtx::serial(), &x, Mode::Eval);
        let means = net.probe_means();
        assert_eq!(means.len(), arch.conv_layer_count());
        assert!(means.iter().any(|(n, _)| n == "stem"));
    }

    #[test]
    fn freeze_policies_mark_expected_groups() {
        let arch = ResNetMiniConfig::tiny();
        let mut net = ResNetMini::new(&arch, &HardwareConfig::fp32());
        net.apply_freeze(FreezePolicy::Bn);
        let mut frozen = 0;
        let mut total = 0;
        net.for_each_param(&mut |p| {
            total += 1;
            if p.frozen {
                frozen += 1;
                assert!(p.name().ends_with(".gamma") || p.name().ends_with(".beta"));
            }
        });
        assert!(frozen > 0 && frozen < total);
    }

    #[test]
    fn error_budget_lists_every_injected_layer() {
        let arch = ResNetMiniConfig::tiny();
        let hw = HardwareConfig::ams(QuantConfig::w8a8(), Vmac::new(8, 8, 8, 10.0));
        let mut net = ResNetMini::new(&arch, &hw);
        let budget = net.error_budget();
        assert_eq!(budget.len(), arch.conv_layer_count() + 1); // convs + fc
        for (name, n_tot, sigma) in &budget {
            assert!(*n_tot > 0, "{name}");
            assert!(sigma.unwrap() > 0.0, "{name}");
        }
    }
}
